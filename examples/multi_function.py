#!/usr/bin/env python3
"""Synthesizing several functions at once (Section 2.1, Remark).

Two flavours:

1. *separable* constraints — each constraint mentions one function, so the
   problem decomposes into independent cooperative-synthesis runs;
2. *coupled* constraints — the functions appear together in one constraint
   (here: f and g must partition x+y into max and min), so a joint
   fixed-height CEGIS encodes all unknowns in a single SMT query per
   iteration.

Run:  python examples/multi_function.py
"""

from repro.lang import add, and_, eq, ge, int_var, le, sub
from repro.lang.sorts import INT
from repro.sygus.grammar import clia_grammar
from repro.sygus.multi import MultiSygusProblem
from repro.sygus.problem import SynthFun
from repro.synth.config import SynthConfig
from repro.synth.multi import MultiFunctionSynthesizer

x, y = int_var("x"), int_var("y")


def separable() -> None:
    print("== separable: next and previous ==")
    f = SynthFun("next", (x,), INT, clia_grammar((x,)))
    g = SynthFun("prev", (x,), INT, clia_grammar((x,)))
    spec = and_(
        eq(f.apply((x,)), add(x, 1)),
        eq(g.apply((x,)), sub(x, 1)),
    )
    problem = MultiSygusProblem((f, g), spec, (x,), name="next-prev")
    solution, _ = MultiFunctionSynthesizer(SynthConfig(timeout=60)).synthesize(
        problem
    )
    assert solution is not None
    for rendered in solution.define_funs():
        print(rendered)


def coupled() -> None:
    print("\n== coupled: max and min partition the sum ==")
    f = SynthFun("bigger", (x, y), INT, clia_grammar((x, y)))
    g = SynthFun("smaller", (x, y), INT, clia_grammar((x, y)))
    fx, gx = f.apply((x, y)), g.apply((x, y))
    spec = and_(
        ge(fx, x),
        ge(fx, y),
        le(gx, x),
        le(gx, y),
        eq(add(fx, gx), add(x, y)),  # couples f and g
    )
    problem = MultiSygusProblem((f, g), spec, (x, y), name="max-min-pair")
    solution, stats = MultiFunctionSynthesizer(
        SynthConfig(timeout=120)
    ).synthesize(problem)
    assert solution is not None
    for rendered in solution.define_funs():
        print(rendered)
    ok, _ = problem.verify(solution.bodies)
    print("jointly verified:", ok)


if __name__ == "__main__":
    separable()
    coupled()
