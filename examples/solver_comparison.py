#!/usr/bin/env python3
"""A miniature Section 7: run the whole solver portfolio on a few
benchmarks and print a Figure-10-style table.

The portfolio: the cooperative synthesizer (DryadSynth), the three
comparator reimplementations (CEGQI/CVC4-style, EUSolver-style, LoopInvGen-
style), and the two ablations (plain height enumeration, plain deduction).

Run:  python examples/solver_comparison.py
"""

from repro.bench.report import fig10_solved_by_track, render_solved_by_track
from repro.bench.runner import run_suite
from repro.bench.suite import find_benchmark

BENCHMARKS = [
    "max2",
    "max3",
    "abs",
    "linear-comb",
    "count-up-8",
    "count-down-8",
    "qm-relu",
    "double-2",
]

SOLVERS = (
    "dryadsynth",
    "cegqi",
    "eusolver",
    "loopinvgen",
    "height-enum",
    "deduction",
)


def main() -> None:
    benchmarks = [find_benchmark(name) for name in BENCHMARKS]
    print(f"running {len(SOLVERS)} solvers on {len(benchmarks)} benchmarks "
          f"(10s timeout each)...\n")
    results = run_suite(
        benchmarks, solvers=SOLVERS, timeout=10, use_cache=False
    )
    for result in results:
        status = "solved" if result.solved else "------"
        size = f"size={result.solution_size}" if result.solved else ""
        print(
            f"  {result.solver:12s} {result.benchmark:14s} {status} "
            f"{result.time_seconds:6.2f}s {size}"
        )
    print()
    print(render_solved_by_track(fig10_solved_by_track(results),
                                 "Solved benchmarks by track (cf. Figure 10)"))


if __name__ == "__main__":
    main()
