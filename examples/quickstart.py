#!/usr/bin/env python3
"""Quickstart: solve a SyGuS problem with the cooperative synthesizer.

Two routes into the library:

1. parse a SyGuS-IF problem text (the competition interchange format);
2. build the problem programmatically with the term DSL.

Run:  python examples/quickstart.py
"""

from repro import parse_sygus_text, solve_sygus
from repro.lang import and_, eq, ge, int_var, or_
from repro.lang.sorts import INT
from repro.sygus.grammar import clia_grammar
from repro.sygus.problem import SygusProblem, SynthFun

MAX2_SL = """
(set-logic LIA)
(synth-fun max2 ((x Int) (y Int)) Int)
(declare-var x Int)
(declare-var y Int)
(constraint (>= (max2 x y) x))
(constraint (>= (max2 x y) y))
(constraint (or (= (max2 x y) x) (= (max2 x y) y)))
(check-synth)
"""


def from_sygus_text() -> None:
    print("== from SyGuS-IF text ==")
    problem = parse_sygus_text(MAX2_SL, name="max2")
    outcome = solve_sygus(problem, timeout=60)
    assert outcome.solution is not None
    print("solution:", outcome.solution.define_fun())
    print(f"engine:   {outcome.solution.engine}")
    print(f"time:     {outcome.solution.time_seconds:.3f}s")
    print(f"size:     {outcome.solution.size}, height {outcome.solution.height}")


def programmatically() -> None:
    print("\n== built programmatically (max of three) ==")
    x, y, z = int_var("x"), int_var("y"), int_var("z")
    fun = SynthFun("max3", (x, y, z), INT, clia_grammar((x, y, z)))
    call = fun.apply((x, y, z))
    spec = and_(
        ge(call, x),
        ge(call, y),
        ge(call, z),
        or_(eq(call, x), eq(call, y), eq(call, z)),
    )
    problem = SygusProblem(fun, spec, (x, y, z), track="CLIA", name="max3")
    outcome = solve_sygus(problem, timeout=60)
    assert outcome.solution is not None
    print("solution:", outcome.solution.define_fun())
    # This one is solved purely by the deductive rules of Section 6 —
    # compare Figure 9's rewriting sequence.
    print("solved by deduction:", outcome.stats.deduction_solved)
    # Double-check the synthesized body against the specification.
    ok, _ = problem.verify(outcome.solution.body)
    print("verified:", ok)


if __name__ == "__main__":
    from_sygus_text()
    programmatically()
