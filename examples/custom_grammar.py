#!/usr/bin/env python3
"""Arbitrary user grammars (the paper's General track).

Three scenarios:

1. ``G_qm`` (Example 2.7): the paper's running example grammar, whose only
   conditional operator is ``qm(a, b) = ite(a < 0, b, a)``.  We synthesize
   max2, which needs the non-obvious trick ``x + qm(y - x, 0)``.
2. The Match rule (Figure 7): a grammar whose only operator is
   ``double(a) = a + a`` with reference spec ``f(x) = x+x+x+x`` — solved
   deductively by folding the reference into ``double(double(x))``.
3. The paper's full running example, max3 in ``G_qm`` (Example 2.12) —
   solved by subterm division; expensive on the pure-Python substrate, so it
   only runs when invoked with ``--max3``.

Run:  python examples/custom_grammar.py [--max3]
"""

import sys

from repro import solve_sygus
from repro.lang import add, and_, apply_fn, eq, ge, int_const, int_var, ite
from repro.lang.sorts import INT
from repro.sygus.grammar import Grammar, InterpretedFunction, nonterminal, qm_grammar
from repro.sygus.problem import SygusProblem, SynthFun


def qm_max2() -> None:
    print("== max2 in the qm grammar ==")
    x, y = int_var("x"), int_var("y")
    fun = SynthFun("max2", (x, y), INT, qm_grammar((x, y)))
    spec = eq(fun.apply((x, y)), ite(ge(x, y), x, y))
    problem = SygusProblem(fun, spec, (x, y), track="General", name="qm-max2")
    outcome = solve_sygus(problem, timeout=120)
    assert outcome.solution is not None
    print("solution:", outcome.solution.define_fun())
    print("in grammar:", problem.synth_fun.grammar.generates(outcome.solution.body))
    print(f"time: {outcome.solution.time_seconds:.2f}s")


def match_rule_double() -> None:
    print("\n== the Match rule: fold x+x+x+x into double(double(x)) ==")
    x = int_var("x")
    x1 = int_var("x1")
    double = InterpretedFunction("double", (x1,), add(x1, x1))
    s = nonterminal("S", INT)
    grammar = Grammar(
        nonterminals={"S": INT},
        start="S",
        productions={
            "S": [x, int_const(0), int_const(1), apply_fn("double", (s,), INT)]
        },
        interpreted={"double": double},
        params=(x,),
    )
    fun = SynthFun("quadruple", (x,), INT, grammar)
    spec = eq(fun.apply((x,)), add(x, x, x, x))
    problem = SygusProblem(fun, spec, (x,), track="General", name="double-2")
    outcome = solve_sygus(problem, timeout=30)
    assert outcome.solution is not None
    print("solution:", outcome.solution.define_fun())
    print("solved by deduction (Match):", outcome.stats.deduction_solved)


def qm_max3() -> None:
    print("\n== Example 2.12: max3 in the qm grammar (slow) ==")
    x, y, z = int_var("x"), int_var("y"), int_var("z")
    fun = SynthFun("max3", (x, y, z), INT, qm_grammar((x, y, z)))
    spec = eq(
        fun.apply((x, y, z)),
        ite(and_(ge(x, y), ge(x, z)), x, ite(ge(y, z), y, z)),
    )
    problem = SygusProblem(fun, spec, (x, y, z), track="General", name="qm-max3")
    outcome = solve_sygus(problem, timeout=1200)
    if outcome.solution is None:
        print("not solved within the budget (the pure-Python SMT substrate "
              "is orders of magnitude slower than Z3 on this one)")
        return
    print("solution:", outcome.solution.define_fun())
    ok, _ = problem.verify(outcome.solution.body)
    print("verified:", ok)


if __name__ == "__main__":
    qm_max2()
    match_rule_double()
    if "--max3" in sys.argv:
        qm_max3()
