#!/usr/bin/env python3
"""Loop invariant synthesis (the paper's INV track, Definition 2.13).

Encodes Example 2.14 — ``int x = 0; while (x < 100) x = x + 1;
assert x == 100;`` — plus a two-variable loop, and solves them with the
cooperative synthesizer.  The single-counter loop is dispatched instantly by
the *loop summarisation* rules (Section 6): the transition is acyclic
translational, so ``fast-trans`` gives the reachable states in closed form.

Run:  python examples/invariant_synthesis.py
"""

from repro import solve_sygus
from repro.lang import add, and_, eq, implies, int_var, ite, lt, not_, sub
from repro.sygus.problem import InvariantProblem


def example_2_14() -> None:
    print("== Example 2.14: count to 100 ==")
    x = int_var("x")
    invariant_problem = InvariantProblem.from_updates(
        variables=(x,),
        pre=eq(x, 0),
        updates=(ite(lt(x, 100), add(x, 1), x),),
        post=implies(not_(lt(x, 100)), eq(x, 100)),
        name="count-to-100",
    )
    problem = invariant_problem.to_sygus()
    outcome = solve_sygus(problem, timeout=60)
    assert outcome.solution is not None
    print("invariant:", outcome.solution.define_fun())
    print("via loop summary (pure deduction):", outcome.stats.deduction_solved)
    print(f"time: {outcome.solution.time_seconds:.3f}s")


def crossing_counters() -> None:
    print("\n== two counters crossing ==")
    # x = 0, y = 16; while (x < 16) { x += 1; y -= 1; }  assert y == 0;
    x, y = int_var("x"), int_var("y")
    invariant_problem = InvariantProblem.from_updates(
        variables=(x, y),
        pre=and_(eq(x, 0), eq(y, 16)),
        updates=(
            ite(lt(x, 16), add(x, 1), x),
            ite(lt(x, 16), sub(y, 1), y),
        ),
        post=implies(not_(lt(x, 16)), eq(y, 0)),
        name="crossing",
    )
    problem = invariant_problem.to_sygus()
    outcome = solve_sygus(problem, timeout=120)
    assert outcome.solution is not None
    print("invariant:", outcome.solution.define_fun())
    ok, _ = problem.verify(outcome.solution.body)
    print("verified (pre, inductive, post):", ok)


def compare_with_loopinvgen() -> None:
    print("\n== the LoopInvGen baseline on the same problem ==")
    from repro.baselines import LoopInvGenSolver
    from repro.synth.config import SynthConfig

    x = int_var("x")
    problem = InvariantProblem.from_updates(
        (x,),
        eq(x, 0),
        (ite(lt(x, 100), add(x, 1), x),),
        implies(not_(lt(x, 100)), eq(x, 100)),
    ).to_sygus()
    outcome = LoopInvGenSolver(SynthConfig(timeout=60)).synthesize(problem)
    if outcome.solution is not None:
        print("loopinvgen invariant:", outcome.solution.define_fun())
    else:
        print("loopinvgen failed within the budget")


if __name__ == "__main__":
    example_2_14()
    crossing_counters()
    compare_with_loopinvgen()
