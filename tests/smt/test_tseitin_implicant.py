"""Tests for normalisation (ite lifting, equality splitting), CNF encoding,
and implicant extraction."""

from repro.lang import (
    Kind,
    add,
    and_,
    bool_var,
    eq,
    evaluate,
    ge,
    int_var,
    ite,
    lt,
    not_,
    or_,
    sub,
)
from repro.lang.traversal import subexpressions
from repro.smt.implicant import extract_implicant
from repro.smt.tseitin import CnfEncoder, lift_ite, split_int_eq

x, y = int_var("x"), int_var("y")
p = bool_var("p")


def _no_int_ite_under_comparison(term):
    for sub_term in subexpressions(term):
        if sub_term.kind in (Kind.GE, Kind.GT, Kind.LE, Kind.LT, Kind.EQ):
            for node in subexpressions(sub_term):
                if node is sub_term:
                    continue
                if node.kind is Kind.ITE and node.sort.name == "Int":
                    return False
    return True


class TestLiftIte:
    def test_comparison_over_ite(self):
        term = ge(ite(p, x, y), 0)
        lifted = lift_ite(term)
        assert lifted is ite(p, ge(x, 0), ge(y, 0))

    def test_ite_inside_arithmetic(self):
        term = ge(add(ite(p, x, y), 1), 0)
        lifted = lift_ite(term)
        assert _no_int_ite_under_comparison(lifted)

    def test_nested_ites(self):
        q = bool_var("q")
        term = eq(ite(p, ite(q, x, y), sub(x, y)), 0)
        lifted = lift_ite(term)
        assert _no_int_ite_under_comparison(lifted)

    def test_semantics_preserved(self):
        term = ge(add(ite(ge(x, 0), x, y), ite(ge(y, 0), y, x)), 1)
        lifted = lift_ite(term)
        for a in range(-3, 4):
            for b in range(-3, 4):
                env = {"x": a, "y": b}
                assert evaluate(term, env) == evaluate(lifted, env)


class TestSplitIntEq:
    def test_splits_equality(self):
        split = split_int_eq(eq(x, y))
        assert split is and_(ge(x, y), ge(y, x))

    def test_bool_equality_untouched(self):
        q = bool_var("q")
        term = eq(p, q)
        assert split_int_eq(term) is term


class TestCnfEncoder:
    def test_complementary_atoms_share_variable(self):
        encoder = CnfEncoder()
        encoder.assert_formula(or_(ge(x, y), lt(x, y)))
        assert len(encoder.atom_vars) == 1

    def test_trivial_comparisons_fold(self):
        encoder = CnfEncoder()
        encoder.assert_formula(ge(add(x, 1), x))
        assert len(encoder.atom_vars) == 0
        assert encoder.sat.solve() is not None

    def test_structure_sharing(self):
        encoder = CnfEncoder()
        shared = ge(x, 0)
        encoder.assert_formula(and_(or_(shared, p), or_(shared, not_(p))))
        assert len(encoder.atom_vars) == 1


class TestImplicant:
    def test_or_yields_single_disjunct(self):
        encoder = CnfEncoder()
        encoder.assert_formula(or_(ge(x, 0), ge(y, 0), ge(add(x, y), 10)))
        model = encoder.sat.solve()
        needed = extract_implicant(encoder, model)
        assert 1 <= len(needed) <= 3

    def test_and_needs_all_conjuncts(self):
        encoder = CnfEncoder()
        encoder.assert_formula(and_(ge(x, 0), ge(y, 1)))
        model = encoder.sat.solve()
        needed = extract_implicant(encoder, model)
        assert len(needed) == 2
        assert all(value is True for value in needed.values())

    def test_implicant_forces_formula(self):
        # Whatever atoms are picked, setting exactly those to the recorded
        # polarities must satisfy the formula regardless of other atoms.
        formula = or_(and_(ge(x, 0), ge(y, 0)), and_(lt(x, 0), lt(y, 0)))
        encoder = CnfEncoder()
        encoder.assert_formula(formula)
        model = encoder.sat.solve()
        needed = extract_implicant(encoder, model)
        # Build an integer assignment satisfying exactly the needed atoms.
        from repro.smt.branch_bound import check_lia

        constraints = []
        for atom, positive in needed.items():
            expr = atom.to_linexpr() if positive else atom.negate().to_linexpr()
            constraints.append((expr, atom))
        feasible, int_model = check_lia(constraints)
        assert feasible
        env = {"x": int_model.get("x", 0), "y": int_model.get("y", 0)}
        assert evaluate(formula, env)
