"""Tests for the OMT-lite objective minimisation layer."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.lang import add, and_, eq, ge, int_var, le, sub
from repro.smt.optimize import Unsatisfiable, minimize_objective

x, y = int_var("x"), int_var("y")


class TestMinimizeObjective:
    def test_simple_lower_bound(self):
        value, model = minimize_objective(and_(ge(x, 5), le(x, 100)), x)
        assert value == 5
        assert model["x"] == 5

    def test_interacting_constraints(self):
        # minimise x + y subject to x >= 3, y >= x + 2.
        formula = and_(ge(x, 3), ge(y, add(x, 2)))
        value, model = minimize_objective(formula, add(x, y))
        assert value == 8
        assert model["x"] == 3 and model["y"] == 5

    def test_objective_already_fixed(self):
        value, _ = minimize_objective(eq(x, 42), x)
        assert value == 42

    def test_negative_optima(self):
        value, model = minimize_objective(and_(ge(x, -17), le(x, 9)), x)
        assert value == -17

    def test_unsat_raises(self):
        with pytest.raises(Unsatisfiable):
            minimize_objective(and_(ge(x, 1), le(x, 0)), x)

    def test_unbounded_objective_returns_some_model(self):
        # x is unbounded below: budget-bounded descent must terminate and
        # return a genuine model.
        value, model = minimize_objective(le(x, 100), x, max_checks=8)
        assert model["x"] == value
        assert value <= 100

    def test_budget_zero_returns_first_model(self):
        value, model = minimize_objective(and_(ge(x, 2), le(x, 50)), x, max_checks=0)
        assert 2 <= value <= 50


@given(st.integers(-30, 30), st.integers(0, 25))
@settings(max_examples=40, deadline=None)
def test_minimum_of_interval_is_found(lo, width):
    formula = and_(ge(x, lo), le(x, lo + width))
    value, model = minimize_objective(formula, x)
    assert value == lo
    assert model["x"] == lo


@given(st.integers(-10, 10), st.integers(-10, 10))
@settings(max_examples=40, deadline=None)
def test_difference_objective(a, b):
    lo = min(a, b)
    hi = max(a, b)
    # minimise x - y with x in [lo, hi], y in [lo, hi]: optimum lo - hi.
    formula = and_(ge(x, lo), le(x, hi), ge(y, lo), le(y, hi))
    value, _ = minimize_objective(formula, sub(x, y))
    assert value == lo - hi
