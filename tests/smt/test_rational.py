"""Tests for the tuple-rational arithmetic used by the simplex."""

from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.smt import rational as r


_nums = st.integers(min_value=-1000, max_value=1000)
_dens = st.integers(min_value=1, max_value=1000)
_rats = st.tuples(_nums, _dens)


def _f(a):
    return Fraction(a[0], a[1])


@given(_rats, _rats)
@settings(max_examples=300, deadline=None)
def test_field_operations_match_fraction(a, b):
    assert _f(r.radd(a, b)) == _f(a) + _f(b)
    assert _f(r.rsub(a, b)) == _f(a) - _f(b)
    assert _f(r.rmul(a, b)) == _f(a) * _f(b)
    if b[0] != 0:
        assert _f(r.rdiv(a, b)) == _f(a) / _f(b)


@given(_rats, _rats)
@settings(max_examples=200, deadline=None)
def test_comparisons_match_fraction(a, b):
    assert r.rlt(a, b) == (_f(a) < _f(b))
    assert r.rle(a, b) == (_f(a) <= _f(b))
    assert r.req(a, b) == (_f(a) == _f(b))


@given(_rats)
@settings(max_examples=200, deadline=None)
def test_floor_and_integrality(a):
    assert r.rfloor(a) == _f(a).numerator // _f(a).denominator if a[1] == 1 else True
    import math

    assert r.rfloor(a) == math.floor(_f(a))
    assert r.is_integral(a) == (_f(a).denominator == 1)


def test_normalisation_and_conversions():
    assert r.rnorm(4, -8) == (-1, 2)
    assert r.rnorm(0, 5) == (0, 1)
    assert r.from_int(3) == (3, 1)
    assert r.to_fraction((6, 4)) == Fraction(3, 2)
    assert r.from_fraction(Fraction(-2, 6)) == (-1, 3)
    assert r.sign((5, 2)) == 1
    assert r.sign((-5, 2)) == -1
    assert r.sign((0, 1)) == 0
    assert r.is_zero(r.ZERO)
    assert r.rneg((3, 4)) == (-3, 4)


def test_lazy_normalisation_keeps_values_exact():
    # Chain many additions; intermediate tuples may be unnormalised but the
    # value must stay exact.
    total = r.ZERO
    expected = Fraction(0)
    for i in range(1, 60):
        total = r.radd(total, (1, i))
        expected += Fraction(1, i)
    assert r.to_fraction(total) == expected
