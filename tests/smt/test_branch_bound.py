"""Tests for the integer (branch-and-bound) layer, with brute-force oracles."""

import itertools

from hypothesis import given, settings, strategies as st

from repro.smt.branch_bound import check_lia
from repro.smt.linear import LinExpr


def _holds(constraints, env):
    return all(expr.evaluate(env) >= 0 for expr, _ in constraints)


def _brute_force(constraints, names, radius=10):
    for values in itertools.product(range(-radius, radius + 1), repeat=len(names)):
        env = dict(zip(names, values))
        if _holds(constraints, env):
            return True
    return False


class TestBasics:
    def test_empty_is_sat(self):
        feasible, model = check_lia([])
        assert feasible and model == {}

    def test_trivially_false_constant(self):
        feasible, core = check_lia([(LinExpr({}, -1), "bad")])
        assert not feasible and core == ["bad"]

    def test_simple_window(self):
        constraints = [
            (LinExpr({"x": 1}, -3), "lo"),  # x >= 3
            (LinExpr({"x": -1}, 5), "hi"),  # x <= 5
        ]
        feasible, model = check_lia(constraints)
        assert feasible and 3 <= model["x"] <= 5

    def test_integer_gap_unsat(self):
        # 3x >= 1 and 3x <= 2: rationally feasible, integrally not.
        constraints = [
            (LinExpr({"x": 3}, -1), "lo"),
            (LinExpr({"x": -3}, 2), "hi"),
        ]
        feasible, core = check_lia(constraints)
        assert not feasible
        assert set(core) == {"lo", "hi"}

    def test_multi_variable_model(self):
        constraints = [
            (LinExpr({"x": 1, "y": 1}, -10), "sum"),  # x + y >= 10
            (LinExpr({"x": -1}, 4), "xcap"),  # x <= 4
            (LinExpr({"y": -1}, 7), "ycap"),  # y <= 7
        ]
        feasible, model = check_lia(constraints)
        assert feasible
        assert model["x"] + model["y"] >= 10
        assert model["x"] <= 4 and model["y"] <= 7

    def test_unsat_core_is_jointly_infeasible(self):
        constraints = [
            (LinExpr({"x": 1, "y": 1}, -10), "sum"),
            (LinExpr({"x": -1}, 4), "xcap"),
            (LinExpr({"y": -1}, 4), "ycap"),
            (LinExpr({"x": 1}, 0), "irrelevant"),  # x >= 0 (not needed)
        ]
        feasible, core = check_lia(constraints)
        assert not feasible
        assert {"sum", "xcap", "ycap"} <= set(core)

    def test_parity_gap(self):
        # 2x = 7 is integrally unsat.
        constraints = [
            (LinExpr({"x": 2}, -7), "lo"),
            (LinExpr({"x": -2}, 7), "hi"),
        ]
        feasible, _ = check_lia(constraints)
        assert not feasible

    def test_diophantine_combination(self):
        # 2x + 3y = 1 has integer solutions.
        constraints = [
            (LinExpr({"x": 2, "y": 3}, -1), "lo"),
            (LinExpr({"x": -2, "y": -3}, 1), "hi"),
        ]
        feasible, model = check_lia(constraints)
        assert feasible
        assert 2 * model["x"] + 3 * model["y"] == 1


_small_expr = st.builds(
    LinExpr,
    st.dictionaries(st.sampled_from(["x", "y"]), st.integers(-4, 4), max_size=2),
    st.integers(-8, 8),
)


@given(st.lists(st.tuples(_small_expr, st.integers()), min_size=1, max_size=5))
@settings(max_examples=200, deadline=None)
def test_check_lia_agrees_with_brute_force(raw_constraints):
    from hypothesis import assume

    from repro.smt.branch_bound import BudgetExceeded

    constraints = [
        (expr, f"c{i}") for i, (expr, _) in enumerate(raw_constraints)
    ]
    try:
        feasible, payload = check_lia(constraints, max_nodes=3000)
    except BudgetExceeded:
        assume(False)  # skip adversarially slow instances
        return
    expected = _brute_force(constraints, ["x", "y"])
    if feasible:
        env = {name: payload.get(name, 0) for name in ("x", "y")}
        assert _holds(constraints, env)
    else:
        assert not expected, f"solver said unsat, brute force found a model"
        # The reported core must itself be infeasible (within the box).
        by_tag = dict((tag, expr) for expr, tag in constraints)
        core_constraints = [(by_tag[tag], tag) for tag in payload]
        assert not _brute_force(core_constraints, ["x", "y"])


class TestBudgets:
    def test_node_budget_exhaustion_raises(self):
        import pytest

        from repro.smt.branch_bound import BudgetExceeded

        constraints = [
            (LinExpr({"x": 1, "y": 1}, -10), "sum"),
            (LinExpr({"x": -2, "y": 3}, 1), "c2"),
            (LinExpr({"x": 3, "y": -2}, 1), "c3"),
        ]
        with pytest.raises(BudgetExceeded):
            check_lia(constraints, max_nodes=0)

    def test_deadline_raises(self):
        import time

        import pytest

        from repro.smt.branch_bound import BudgetExceeded, check_lia as check

        constraints = [(LinExpr({"x": 3}, -1), "lo"), (LinExpr({"x": -3}, 2), "hi")]
        with pytest.raises(BudgetExceeded):
            check(constraints, max_nodes=100000, deadline=time.monotonic() - 1)

    def test_duplicate_linear_forms_share_slacks(self):
        # The same multi-variable form used twice must not blow up the
        # tableau (exercises the slack cache).
        constraints = [
            (LinExpr({"x": 1, "y": 1}, -4), "a"),   # x + y >= 4
            (LinExpr({"x": 1, "y": 1}, -7), "b"),   # x + y >= 7 (stronger)
            (LinExpr({"x": -1, "y": -1}, 9), "c"),  # x + y <= 9
        ]
        feasible, model = check_lia(constraints)
        assert feasible
        assert 7 <= model["x"] + model["y"] <= 9
