"""Tests for the rational simplex core."""

from fractions import Fraction

import pytest

from repro.smt.simplex import Bound, Conflict, Simplex


def _fraction(value):
    return Fraction(value)


class TestDirectBounds:
    def test_single_variable_window(self):
        simplex = Simplex()
        x = simplex.new_var()
        simplex.assert_bound(Bound(x, True, _fraction(3), "lo"))
        simplex.assert_bound(Bound(x, False, _fraction(5), "hi"))
        assert simplex.check()
        assert 3 <= simplex.value(x) <= 5

    def test_contradictory_bounds_conflict(self):
        simplex = Simplex()
        x = simplex.new_var()
        simplex.assert_bound(Bound(x, True, _fraction(7), "lo"))
        with pytest.raises(Conflict) as info:
            simplex.assert_bound(Bound(x, False, _fraction(2), "hi"))
        tags = {bound.tag for bound in info.value.bounds}
        assert tags == {"lo", "hi"}

    def test_strongest_bound_wins(self):
        simplex = Simplex()
        x = simplex.new_var()
        simplex.assert_bound(Bound(x, True, _fraction(1), "weak"))
        simplex.assert_bound(Bound(x, True, _fraction(4), "strong"))
        assert simplex.check()
        assert simplex.value(x) >= 4


class TestSlacks:
    def test_sum_constraint_feasible(self):
        simplex = Simplex()
        x, y = simplex.new_var(), simplex.new_var()
        s = simplex.new_slack({x: Fraction(1), y: Fraction(1)})
        simplex.assert_bound(Bound(s, True, _fraction(10), "sum"))
        simplex.assert_bound(Bound(x, False, _fraction(4), "xcap"))
        assert simplex.check()
        assert simplex.value(x) + simplex.value(y) >= 10
        assert simplex.value(x) <= 4

    def test_infeasible_system_explains(self):
        # x + y >= 10, x <= 4, y <= 4.
        simplex = Simplex()
        x, y = simplex.new_var(), simplex.new_var()
        s = simplex.new_slack({x: Fraction(1), y: Fraction(1)})
        simplex.assert_bound(Bound(s, True, _fraction(10), "sum"))
        simplex.assert_bound(Bound(x, False, _fraction(4), "xcap"))
        simplex.assert_bound(Bound(y, False, _fraction(4), "ycap"))
        with pytest.raises(Conflict) as info:
            simplex.check()
        tags = {bound.tag for bound in info.value.bounds}
        assert tags == {"sum", "xcap", "ycap"}

    def test_slack_of_basic_combination(self):
        # A slack referencing another slack must expand through the tableau.
        simplex = Simplex()
        x, y = simplex.new_var(), simplex.new_var()
        s1 = simplex.new_slack({x: Fraction(1), y: Fraction(1)})
        s2 = simplex.new_slack({s1: Fraction(2), x: Fraction(-1)})
        # s2 = 2(x + y) - x = x + 2y.
        simplex.assert_bound(Bound(s2, True, _fraction(6), "s2"))
        simplex.assert_bound(Bound(x, False, _fraction(0), "x"))
        simplex.assert_bound(Bound(y, False, _fraction(3), "y"))
        assert simplex.check()
        value = simplex.value(x) + 2 * simplex.value(y)
        assert value >= 6

    def test_equality_via_two_bounds(self):
        simplex = Simplex()
        x, y = simplex.new_var(), simplex.new_var()
        s = simplex.new_slack({x: Fraction(1), y: Fraction(-1)})
        simplex.assert_bound(Bound(s, True, _fraction(2), "eq-lo"))
        simplex.assert_bound(Bound(s, False, _fraction(2), "eq-hi"))
        assert simplex.check()
        assert simplex.value(x) - simplex.value(y) == 2

    def test_rational_solution(self):
        # 2x >= 1, 2x <= 1  =>  x = 1/2 over the rationals.
        simplex = Simplex()
        x = simplex.new_var()
        s = simplex.new_slack({x: Fraction(2)})
        simplex.assert_bound(Bound(s, True, _fraction(1), "lo"))
        simplex.assert_bound(Bound(s, False, _fraction(1), "hi"))
        assert simplex.check()
        assert simplex.value(x) == Fraction(1, 2)


class TestChains:
    def test_difference_chain_feasible(self):
        # x1 <= x2 <= x3, x3 - x1 >= 0 is feasible.
        simplex = Simplex()
        xs = [simplex.new_var() for _ in range(3)]
        for a, b in zip(xs, xs[1:]):
            s = simplex.new_slack({b: Fraction(1), a: Fraction(-1)})
            simplex.assert_bound(Bound(s, True, _fraction(0), f"{a}<{b}"))
        assert simplex.check()
        values = [simplex.value(v) for v in xs]
        assert values == sorted(values)

    def test_cyclic_strict_chain_infeasible(self):
        # x1 - x2 >= 1, x2 - x3 >= 1, x3 - x1 >= 1 sums to 0 >= 3.
        simplex = Simplex()
        xs = [simplex.new_var() for _ in range(3)]
        pairs = [(0, 1), (1, 2), (2, 0)]
        for a, b in pairs:
            s = simplex.new_slack({xs[a]: Fraction(1), xs[b]: Fraction(-1)})
            simplex.assert_bound(Bound(s, True, _fraction(1), f"edge{a}{b}"))
        with pytest.raises(Conflict):
            simplex.check()
