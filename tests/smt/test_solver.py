"""Tests for the DPLL(T) driver: models, validity, incrementality, and a
property-based cross-check against brute-force evaluation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.lang import (
    add,
    and_,
    bool_var,
    eq,
    evaluate,
    ge,
    gt,
    implies,
    int_const,
    int_var,
    ite,
    le,
    lt,
    mul,
    not_,
    or_,
    sub,
)
from repro.smt import (
    SmtSolver,
    SolverBudgetExceeded,
    Status,
    check_sat,
    get_counterexample,
    is_valid,
)

x, y, z = int_var("x"), int_var("y"), int_var("z")
p, q = bool_var("p"), bool_var("q")


class TestCheckSat:
    def test_trivial_true(self):
        assert check_sat(eq(x, x)).is_sat

    def test_trivial_false(self):
        assert check_sat(lt(x, x)).is_unsat

    def test_model_satisfies_formula(self):
        formula = and_(ge(add(x, y), 5), le(x, 3), le(y, 2))
        result = check_sat(formula)
        assert result.is_sat
        assert evaluate(formula, result.model)

    def test_unsat_conjunction(self):
        assert check_sat(and_(ge(add(x, y), 5), le(x, 1), le(y, 2))).is_unsat

    def test_integer_reasoning(self):
        assert check_sat(and_(ge(mul(3, x), 1), le(mul(3, x), 2))).is_unsat

    def test_boolean_variables(self):
        result = check_sat(and_(or_(p, q), not_(p)))
        assert result.is_sat
        assert result.model["q"] is True and result.model["p"] is False

    def test_mixed_bool_and_int(self):
        formula = and_(implies(p, ge(x, 10)), implies(not_(p), le(x, -10)), eq(x, 0))
        assert check_sat(formula).is_unsat

    def test_ite_terms_in_atoms(self):
        maximum = ite(ge(x, y), x, y)
        formula = and_(eq(maximum, 5), lt(x, 5), lt(y, 5))
        assert check_sat(formula).is_unsat

    def test_nested_ite(self):
        term = ite(ge(x, y), ite(ge(y, z), y, ite(ge(x, z), z, x)), x)
        formula = and_(eq(term, 7), gt(x, 7))
        result = check_sat(formula)
        assert result.is_sat
        assert evaluate(formula, result.model)
        # And the branch-blocked variant is genuinely unsat: every branch
        # returns x, y or z, all of which are forced away from 7.
        blocked = and_(eq(term, 7), lt(x, 7), lt(y, 7), lt(z, 7))
        assert check_sat(blocked).is_unsat

    def test_equality_chains(self):
        formula = and_(eq(x, add(y, 1)), eq(y, add(z, 1)), eq(x, 10))
        result = check_sat(formula)
        assert result.is_sat
        assert result.model == {"x": 10, "y": 9, "z": 8}


class TestValidity:
    def test_max_axioms_valid(self):
        maximum = ite(ge(x, y), x, y)
        spec = and_(ge(maximum, x), ge(maximum, y), or_(eq(maximum, x), eq(maximum, y)))
        assert is_valid(spec) == (True, None)

    def test_invalid_with_counterexample(self):
        valid, cex = is_valid(ge(x, y))
        assert not valid
        assert cex["x"] < cex["y"]

    def test_get_counterexample(self):
        assert get_counterexample(eq(x, x)) is None
        cex = get_counterexample(eq(x, 0))
        assert cex is not None and cex["x"] != 0


class TestIncremental:
    def test_add_then_solve_repeatedly(self):
        solver = SmtSolver()
        solver.add(ge(x, 0))
        assert solver.solve().is_sat
        solver.add(le(x, 10))
        assert solver.solve().is_sat
        solver.add(ge(x, 11))
        assert solver.solve().is_unsat
        # Once unsat, further additions keep it unsat.
        solver.add(ge(y, 0))
        assert solver.solve().is_unsat

    def test_model_covers_all_asserted_formulas(self):
        solver = SmtSolver()
        solver.add(ge(x, 5))
        solver.add(le(y, -5))
        result = solver.solve()
        assert result.model["x"] >= 5 and result.model["y"] <= -5

    def test_trivially_false_assertion(self):
        solver = SmtSolver()
        solver.add(lt(int_const(1), int_const(0)))
        assert solver.solve().is_unsat


class TestBudgets:
    def test_deadline_exceeded_raises(self):
        import time

        solver = SmtSolver(deadline=time.monotonic() - 1)
        with pytest.raises(SolverBudgetExceeded):
            solver.check(ge(x, 0))

    def test_round_budget_raises(self):
        solver = SmtSolver(max_rounds=0)
        with pytest.raises(SolverBudgetExceeded):
            solver.check(ge(x, 0))

    def test_non_bool_formula_rejected(self):
        with pytest.raises(ValueError):
            check_sat(add(x, 1))


# -- Property-based cross-check ------------------------------------------------

_ints = st.integers(min_value=-4, max_value=4)


@st.composite
def _atoms(draw):
    op = draw(st.sampled_from([ge, gt, le, lt, eq]))
    left = add(mul(draw(_ints), x), mul(draw(_ints), y), draw(_ints))
    right = add(mul(draw(_ints), x), draw(_ints))
    return op(left, right)


@st.composite
def _formulas(draw, depth=2):
    if depth == 0:
        return draw(_atoms())
    op = draw(st.sampled_from(["atom", "and", "or", "not", "implies"]))
    if op == "atom":
        return draw(_atoms())
    if op == "not":
        return not_(draw(_formulas(depth=depth - 1)))
    a = draw(_formulas(depth=depth - 1))
    b = draw(_formulas(depth=depth - 1))
    return {"and": and_, "or": or_, "implies": implies}[op](a, b)


def _brute_sat(formula, radius=7):
    for a in range(-radius, radius + 1):
        for b in range(-radius, radius + 1):
            if evaluate(formula, {"x": a, "y": b}):
                return True
    return False


@given(_formulas())
@settings(max_examples=150, deadline=None)
def test_solver_agrees_with_brute_force(formula):
    from hypothesis import assume

    # Budget-capped: adversarial random instances can make unbounded
    # branch-and-bound arbitrarily slow; over-budget examples are skipped
    # rather than letting one example dominate the suite's runtime.
    solver = SmtSolver(lia_node_budget=3000)
    try:
        result = solver.check(formula)
    except SolverBudgetExceeded:
        assume(False)
        return
    if result.is_sat:
        env = {"x": 0, "y": 0}
        env.update(result.model)
        assert evaluate(formula, env)
    else:
        assert not _brute_sat(formula)
