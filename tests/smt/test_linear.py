"""Tests for linear expressions and canonical atoms."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.lang import add, ge, int_const, int_var, ite, mul, neg, sub
from repro.smt.linear import (
    LinAtom,
    LinExpr,
    LinearityError,
    canonical_atom,
    max_abs_coefficient,
    term_to_linexpr,
)


class TestLinExpr:
    def test_constant(self):
        expr = LinExpr.constant(5)
        assert expr.is_constant and expr.const == 5

    def test_variable(self):
        expr = LinExpr.variable("x")
        assert expr.coeffs == (("x", 1),)

    def test_addition_merges(self):
        e = LinExpr({"x": 2}, 1) + LinExpr({"x": -2, "y": 1}, 2)
        assert e.coeffs == (("y", 1),)
        assert e.const == 3

    def test_scale(self):
        e = LinExpr({"x": 2}, -1).scale(-3)
        assert e.coeffs == (("x", -6),) and e.const == 3

    def test_evaluate(self):
        e = LinExpr({"x": 2, "y": -1}, 7)
        assert e.evaluate({"x": 3, "y": 4}) == 2 * 3 - 4 + 7

    def test_zero_coefficients_dropped(self):
        e = LinExpr({"x": 0, "y": 1}, 0)
        assert e.coeffs == (("y", 1),)


class TestTermToLinExpr:
    def test_basic(self):
        x, y = int_var("x"), int_var("y")
        e = term_to_linexpr(add(mul(2, x), sub(y, 3)))
        assert e.as_dict() == {"x": 2, "y": 1}
        assert e.const == -3

    def test_negation(self):
        x = int_var("x")
        e = term_to_linexpr(neg(add(x, 1)))
        assert e.as_dict() == {"x": -1} and e.const == -1

    def test_nonlinear_product_rejected(self):
        x, y = int_var("x"), int_var("y")
        with pytest.raises(LinearityError):
            term_to_linexpr(mul(x, y))

    def test_ite_rejected(self):
        x = int_var("x")
        with pytest.raises(LinearityError):
            term_to_linexpr(ite(ge(x, 0), x, int_const(0)))


class TestCanonicalAtom:
    def test_gcd_tightening(self):
        # 2x - 3 >= 0  <=>  x >= 3/2  <=>  x >= 2  <=>  x - 2 >= 0.
        atom, positive = canonical_atom(LinExpr({"x": 2}, -3))
        assert positive
        assert atom.coeffs == (("x", 1),) and atom.const == -2

    def test_negative_leading_coefficient_flips(self):
        # -x + 2 >= 0 is canonicalised as NOT(x - 3 >= 0).
        atom, positive = canonical_atom(LinExpr({"x": -1}, 2))
        assert not positive
        assert atom.coeffs == (("x", 1),) and atom.const == -3

    def test_complement_pairs_share_atom(self):
        # x - y >= 0 and y - x - 1 >= 0 are each other's negation.
        a1, p1 = canonical_atom(LinExpr({"x": 1, "y": -1}, 0))
        a2, p2 = canonical_atom(LinExpr({"x": -1, "y": 1}, -1))
        assert a1 == a2
        assert p1 != p2

    def test_trivial_atoms(self):
        true_atom, _ = canonical_atom(LinExpr({}, 7))
        false_atom, _ = canonical_atom(LinExpr({}, -7))
        assert true_atom.const == 0 and not true_atom.coeffs
        assert false_atom.const == -1

    def test_negate_semantics(self):
        atom, _ = canonical_atom(LinExpr({"x": 1}, -5))  # x >= 5
        negated = atom.negate()
        for value in (4, 5, 6):
            assert atom.holds({"x": value}) != negated.holds({"x": value})


@given(
    st.dictionaries(st.sampled_from("xyz"), st.integers(-9, 9), min_size=1),
    st.integers(-20, 20),
    st.dictionaries(st.sampled_from("xyz"), st.integers(-10, 10), min_size=3, max_size=3),
)
@settings(max_examples=200, deadline=None)
def test_canonicalisation_preserves_semantics(coeffs, const, env):
    expr = LinExpr(coeffs, const)
    atom, positive = canonical_atom(expr)
    original = expr.evaluate(env) >= 0
    canonical = atom.holds(env) == positive
    assert original == canonical


def test_max_abs_coefficient():
    exprs = [LinExpr({"x": -7}, 3), LinExpr({"y": 2}, -11)]
    assert max_abs_coefficient(exprs) == 11
