"""Assumption solving, unsat cores and push/pop scoping at the SMT level.

Also pins the ``_minimize_core`` deadline-forwarding bugfix with a regression
test that fails on the pre-fix code.
"""

import time

import pytest

from repro.lang import (
    add,
    and_,
    bool_const,
    bool_var,
    eq,
    evaluate,
    ge,
    implies,
    le,
    lt,
    int_var,
    not_,
    or_,
)
from repro.smt import SmtSolver, Status

x, y = int_var("x"), int_var("y")
p, q = bool_var("p"), bool_var("q")


class TestSolveUnderAssumptions:
    def test_sat_with_assumptions(self):
        solver = SmtSolver()
        solver.add(ge(x, 0))
        result = solver.solve(assumptions=[ge(x, 10), le(x, 12)])
        assert result.is_sat
        assert 10 <= result.model["x"] <= 12

    def test_assumptions_not_retained(self):
        solver = SmtSolver()
        solver.add(ge(x, 0))
        assert solver.solve(assumptions=[lt(x, 0)]).is_unsat
        # The assumption died with the call.
        assert solver.solve().is_sat
        assert solver.solve(assumptions=[ge(x, 5)]).is_sat

    def test_unsat_core_identifies_guilty_assumptions(self):
        solver = SmtSolver()
        solver.add(ge(x, 0))
        bound = le(x, 3)
        unrelated = ge(y, 100)
        result = solver.solve(assumptions=[unrelated, bound, ge(x, 7)])
        assert result.is_unsat
        assert bound in result.unsat_core
        assert unrelated not in result.unsat_core

    def test_core_reproduces_unsat(self):
        solver = SmtSolver()
        solver.add(ge(add(x, y), 10))
        assumptions = [le(x, 2), le(y, 2), ge(y, -100)]
        result = solver.solve(assumptions=assumptions)
        assert result.is_unsat
        assert result.unsat_core
        assert solver.solve(assumptions=list(result.unsat_core)).is_unsat

    def test_assertion_level_unsat_gives_empty_core(self):
        solver = SmtSolver()
        solver.add(ge(x, 1))
        solver.add(le(x, 0))
        result = solver.solve(assumptions=[ge(y, 0)])
        assert result.is_unsat
        assert result.unsat_core == ()

    def test_boolean_assumptions(self):
        solver = SmtSolver()
        solver.add(implies(p, ge(x, 10)))
        solver.add(implies(q, le(x, 5)))
        assert solver.solve(assumptions=[p]).is_sat
        assert solver.solve(assumptions=[q]).is_sat
        result = solver.solve(assumptions=[p, q])
        assert result.is_unsat
        assert set(result.unsat_core) == {p, q}

    def test_constant_assumptions(self):
        solver = SmtSolver()
        solver.add(ge(x, 0))
        assert solver.solve(assumptions=[bool_const(True)]).is_sat
        result = solver.solve(assumptions=[bool_const(False)])
        assert result.is_unsat
        assert len(result.unsat_core) == 1

    def test_non_bool_assumption_rejected(self):
        solver = SmtSolver()
        with pytest.raises(ValueError):
            solver.solve(assumptions=[add(x, 1)])

    def test_model_satisfies_assumptions(self):
        solver = SmtSolver()
        solver.add(or_(ge(x, 5), le(y, -5)))
        formula = and_(lt(x, 5), ge(y, -100))
        result = solver.solve(assumptions=[formula])
        assert result.is_sat
        env = {"x": 0, "y": 0}
        env.update(result.model)
        assert evaluate(formula, env)
        assert env["y"] <= -5

    def test_lemma_reuse_across_assumption_calls(self):
        solver = SmtSolver()
        solver.add(ge(add(x, y), 10))
        first = solver.solve(assumptions=[le(x, 2), le(y, 2)])
        assert first.is_unsat
        # Second call over the same theory space: lemmas learned in the
        # first call are still in the clause database.
        lemmas_before = solver.stats.lemmas
        second = solver.solve(assumptions=[le(x, 1), le(y, 2)])
        assert second.is_unsat
        assert solver.stats.lemmas >= lemmas_before


class TestPushPop:
    def test_pop_retracts_scoped_assertions(self):
        solver = SmtSolver()
        solver.add(ge(x, 0))
        solver.push()
        solver.add(ge(x, 10))
        assert solver.solve(assumptions=[le(x, 5)]).is_unsat
        solver.pop()
        assert solver.solve(assumptions=[le(x, 5)]).is_sat

    def test_nested_scopes(self):
        solver = SmtSolver()
        solver.add(ge(x, 0))
        solver.push()
        solver.add(le(x, 100))
        solver.push()
        solver.add(ge(x, 200))
        assert solver.solve().is_unsat
        solver.pop()
        assert solver.num_scopes == 1
        assert solver.solve().is_sat
        result = solver.solve(assumptions=[ge(x, 150)])
        assert result.is_unsat  # inner scope gone, outer le(x, 100) remains
        solver.pop()
        assert solver.solve(assumptions=[ge(x, 150)]).is_sat

    def test_pop_without_push_raises(self):
        solver = SmtSolver()
        with pytest.raises(ValueError):
            solver.pop()

    def test_false_inside_scope_dies_with_it(self):
        solver = SmtSolver()
        solver.add(ge(x, 0))
        solver.push()
        solver.add(bool_const(False))
        assert solver.solve().is_unsat
        solver.pop()
        assert solver.solve().is_sat

    def test_scoped_model_respects_scope(self):
        solver = SmtSolver()
        solver.push()
        solver.add(and_(ge(x, 7), le(x, 7)))
        result = solver.solve()
        assert result.is_sat and result.model["x"] == 7

    def test_reset_clears_scopes(self):
        solver = SmtSolver()
        solver.push()
        solver.add(bool_const(False))
        solver.reset()
        assert solver.num_scopes == 0
        assert solver.solve().is_sat
        with pytest.raises(ValueError):
            solver.pop()


class TestMinimizeCoreDeadlineRegression:
    def test_minimize_core_forwards_deadline(self, monkeypatch):
        # Regression: _minimize_core invoked check_lia with the default
        # deadline (None), so core shrinking ignored a near-expired solver
        # deadline entirely.
        import repro.smt.solver as solver_module

        seen = []
        real_check_lia = solver_module.check_lia

        def spy(constraints, max_nodes=20000, deadline=None):
            seen.append(deadline)
            return real_check_lia(constraints, max_nodes, None)

        monkeypatch.setattr(solver_module, "check_lia", spy)
        deadline = time.monotonic() + 3600
        solver = SmtSolver(deadline=deadline)
        # Call the helper directly with a 6-element core (the minimiser only
        # engages for cores of 5..24 literals).
        from repro.lang.builders import int_const
        from repro.smt.linear import term_to_linexpr

        exprs = []
        for i in range(6):
            expr = term_to_linexpr(x) - term_to_linexpr(int_const(i))
            exprs.append((expr, i + 1))
        solver._minimize_core(exprs, [i + 1 for i in range(6)])
        assert seen, "minimiser should have called check_lia"
        assert all(d == deadline for d in seen)
