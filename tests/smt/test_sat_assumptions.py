"""Assumption solving, unsat cores and clause-DB reduction in the CDCL core.

Also pins two solver-loop bugfixes with regression tests that fail on the
pre-fix code: the VSIDS rescale leaving stale order-heap entries, and the
deadline only being checked on the conflict path.
"""

import random
import time

import pytest

from repro.smt.sat import SatSolver


def _pigeonhole(solver: SatSolver, pigeons: int, holes: int) -> None:
    """p_{i,j} (pigeon i in hole j) as var i*holes + j + 1; unsat iff p > h."""

    def var(i: int, j: int) -> int:
        return i * holes + j + 1

    for i in range(pigeons):
        solver.add_clause([var(i, j) for j in range(holes)])
    for j in range(holes):
        for i in range(pigeons):
            for k in range(i + 1, pigeons):
                solver.add_clause([-var(i, j), -var(k, j)])


class TestAssumptions:
    def test_sat_under_assumptions(self):
        s = SatSolver()
        s.add_clause([1, 2])
        model = s.solve(assumptions=[-1])
        assert model is not None
        assert model[1] is False and model[2] is True

    def test_assumptions_are_not_retained(self):
        s = SatSolver()
        s.add_clause([1, 2])
        assert s.solve(assumptions=[-1, -2]) is None
        # The same instance is still satisfiable without the assumptions.
        assert s.solve() is not None
        assert s.solve(assumptions=[-2]) is not None

    def test_unsat_core_is_reported(self):
        s = SatSolver()
        s.add_clause([1, 2])
        assert s.solve(assumptions=[-1, -2]) is None
        assert set(s.unsat_core) == {-1, -2}

    def test_core_excludes_irrelevant_assumptions(self):
        s = SatSolver()
        # 1 -> 2 -> 3 -> not 4; assumption 5 is unrelated.
        s.add_clause([-1, 2])
        s.add_clause([-2, 3])
        s.add_clause([-3, -4])
        assert s.solve(assumptions=[5, 1, 4]) is None
        assert set(s.unsat_core) == {1, 4}
        # The core alone reproduces the unsat answer.
        assert s.solve(assumptions=list(s.unsat_core)) is None

    def test_core_with_assumption_false_at_level_zero(self):
        s = SatSolver()
        s.add_clause([1])
        assert s.solve(assumptions=[-1]) is None
        assert s.unsat_core == [-1]
        assert s.solve() is not None

    def test_already_true_assumptions_use_dummy_levels(self):
        s = SatSolver()
        s.add_clause([1])
        s.add_clause([-2, 3])
        model = s.solve(assumptions=[1, 2])
        assert model is not None
        assert model[1] and model[2] and model[3]

    def test_unconditional_unsat_gives_empty_core(self):
        s = SatSolver()
        s.add_clause([1])
        assert not s.add_clause([-1])
        assert s.solve(assumptions=[2]) is None
        assert s.unsat_core == []

    def test_unsat_core_resets_between_solves(self):
        s = SatSolver()
        s.add_clause([1, 2])
        assert s.solve(assumptions=[-1, -2]) is None
        assert s.unsat_core
        assert s.solve(assumptions=[1]) is not None
        assert s.unsat_core == []

    def test_repeated_solves_with_rotating_assumptions(self):
        s = SatSolver()
        s.add_clause([1, 2, 3])
        for banned in ([-1, -2], [-2, -3], [-1, -3]):
            model = s.solve(assumptions=banned)
            assert model is not None
            for lit in banned:
                assert model[abs(lit)] is (lit > 0)
        assert s.solve(assumptions=[-1, -2, -3]) is None
        assert set(s.unsat_core) == {-1, -2, -3}

    def test_assumptions_on_unsat_instance_after_learning(self):
        s = SatSolver()
        _pigeonhole(s, 4, 3)
        assert s.solve() is None
        # Database-level unsat persists; assumptions cannot resurrect it.
        assert s.solve(assumptions=[1]) is None
        assert s.unsat_core == []


class TestBumpRescaleRegression:
    def test_rescale_flushes_stale_heap_entries(self):
        # Regression: a VSIDS rescale divides every activity by 1e100 but the
        # lazily-maintained order heap kept entries with pre-rescale keys,
        # which then dominated every later decision.
        s = SatSolver()
        s.new_var()
        s.new_var()
        s._var_inc = 2e100
        s._bump(1)  # triggers the rescale; var 1 activity becomes 2.0
        s._var_inc = 2.0
        s._bump(2)
        s._bump(2)  # var 2 activity 4.0 > var 1's 2.0
        assert abs(s._decide()) == 2

    def test_rescale_keeps_relative_order(self):
        s = SatSolver()
        for _ in range(3):
            s.new_var()
        s._bump(3)
        s._var_inc = 2e100
        s._bump(2)  # rescale fires here
        # Post-rescale activities: var2 = 2.0 dominates var3's tiny value.
        assert abs(s._decide()) == 2


class TestDecisionPathDeadlineRegression:
    def test_deadline_enforced_without_conflicts(self):
        # Regression: the deadline was only checked every 256 conflicts, so a
        # conflict-free (pure decision/propagation) search ran unbounded.
        s = SatSolver()
        for _ in range(600):
            s.new_var()
        s.deadline = time.monotonic() - 1.0
        with pytest.raises(SatSolver.Interrupted):
            s.solve()

    def test_no_deadline_still_solves(self):
        s = SatSolver()
        for _ in range(600):
            s.new_var()
        assert s.solve() is not None


class TestClauseDbReduction:
    def test_reduction_triggers_and_counts(self):
        s = SatSolver()
        _pigeonhole(s, 6, 5)
        s._max_learnts = 8.0
        assert s.solve() is None
        assert s.num_learnts_deleted > 0

    def test_deleted_slots_are_none_and_watches_lazy(self):
        s = SatSolver()
        _pigeonhole(s, 6, 5)
        s._max_learnts = 8.0
        s.solve()
        live = [c for c in s._clauses if c is not None]
        dead = [c for c in s._clauses if c is None]
        assert dead, "reduction should have nulled some clause slots"
        assert all(isinstance(c, list) and len(c) >= 2 for c in live)
        # Every surviving learnt index must point at a live clause.
        for ci in s._learnts:
            assert s._clauses[ci] is not None

    def test_reduction_keeps_binary_and_glue_clauses(self):
        s = SatSolver()
        _pigeonhole(s, 6, 5)
        s._max_learnts = 8.0
        s.solve()
        for ci, lbd in s._lbd.items():
            clause = s._clauses[ci]
            if clause is not None and (len(clause) == 2 or lbd <= 3):
                continue  # kept clauses: fine either way
        # Binary and glue learnt clauses are never deleted.
        deleted_total = s.num_learnts_deleted
        assert deleted_total > 0

    def test_answers_match_unreduced_solver_on_random_cnf(self):
        rng = random.Random(20260805)
        for round_index in range(4):
            num_vars = 40
            clauses = [
                [
                    v if rng.random() < 0.5 else -v
                    for v in rng.sample(range(1, num_vars + 1), 3)
                ]
                for _ in range(int(num_vars * 4.2))
            ]
            reduced = SatSolver()
            reduced._max_learnts = 4.0
            plain = SatSolver()
            for clause in clauses:
                reduced.add_clause(list(clause))
                plain.add_clause(list(clause))
            got = reduced.solve()
            want = plain.solve()
            assert (got is None) == (want is None)
            if got is not None:
                for clause in clauses:
                    assert any(got[abs(l)] is (l > 0) for l in clause)

    def test_incremental_use_after_reduction(self):
        s = SatSolver()
        _pigeonhole(s, 5, 4)
        s._max_learnts = 6.0
        assert s.solve() is None  # pigeonhole core is unsat
        # The instance-level unsat makes the solver permanently unsat; a
        # fresh solver sharing only the satisfiable half still works after
        # its own reductions.
        s2 = SatSolver()
        _pigeonhole(s2, 5, 5)  # satisfiable: one hole each
        s2._max_learnts = 6.0
        model = s2.solve()
        assert model is not None
