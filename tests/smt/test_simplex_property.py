"""Property-based simplex tests with feasibility known by construction.

Rather than trusting an external (floating-point) LP oracle, instances are
built around a known witness point: constraints generated to hold at the
witness give feasible systems; appending an explicit contradiction gives
infeasible ones.  The exact simplex must agree in both directions, and its
conflict explanations must themselves be infeasible.
"""

from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.smt.simplex import Bound, Conflict, Simplex

_point = st.lists(st.integers(-8, 8), min_size=3, max_size=3)
_row = st.lists(st.integers(-4, 4), min_size=3, max_size=3)


def _build(rows, witness, slacks):
    """Assert `row . x >= row . witness - slack` for each row: feasible at
    the witness by construction."""
    simplex = Simplex()
    xs = [simplex.new_var() for _ in range(3)]
    for var, value in zip(xs, witness):
        simplex.assert_bound(Bound(var, True, Fraction(value - 20), f"lo{var}"))
        simplex.assert_bound(Bound(var, False, Fraction(value + 20), f"hi{var}"))
    for index, (row, slack) in enumerate(zip(rows, slacks)):
        if not any(row):
            continue
        combo = {x: Fraction(c) for x, c in zip(xs, row) if c != 0}
        s = simplex.new_slack(combo)
        threshold = sum(c * v for c, v in zip(row, witness)) - slack
        simplex.assert_bound(Bound(s, True, Fraction(threshold), f"c{index}"))
    return simplex, xs


@given(
    _point,
    st.lists(_row, min_size=1, max_size=5),
    st.lists(st.integers(0, 5), min_size=5, max_size=5),
)
@settings(max_examples=150, deadline=None)
def test_constructed_feasible_systems_are_feasible(witness, rows, slacks):
    simplex, xs = _build(rows, witness, slacks)
    assert simplex.check()
    # The assignment satisfies every asserted original-variable bound.
    for var, value in zip(xs, witness):
        assert Fraction(value - 20) <= simplex.value(var) <= Fraction(value + 20)


@given(
    _point,
    st.lists(_row, min_size=1, max_size=4),
    st.lists(st.integers(0, 5), min_size=4, max_size=4),
)
@settings(max_examples=150, deadline=None)
def test_contradiction_is_always_detected(witness, rows, slacks):
    simplex, xs = _build(rows, witness, slacks)
    # x0 >= 100 contradicts the box x0 <= witness + 20 <= 28.
    try:
        simplex.assert_bound(Bound(xs[0], True, Fraction(100), "contra"))
        feasible = simplex.check()
    except Conflict as conflict:
        tags = {bound.tag for bound in conflict.bounds}
        assert "contra" in tags
        return
    assert not feasible, "the contradiction must be noticed"


@given(
    _point,
    st.lists(_row, min_size=2, max_size=4),
)
@settings(max_examples=100, deadline=None)
def test_solution_satisfies_all_slack_constraints(witness, rows):
    simplex = Simplex()
    xs = [simplex.new_var() for _ in range(3)]
    thresholds = []
    slack_vars = []
    for index, row in enumerate(rows):
        if not any(row):
            continue
        combo = {x: Fraction(c) for x, c in zip(xs, row) if c != 0}
        s = simplex.new_slack(combo)
        threshold = sum(c * v for c, v in zip(row, witness))
        simplex.assert_bound(Bound(s, True, Fraction(threshold), f"c{index}"))
        thresholds.append((row, threshold))
        slack_vars.append(s)
    assert simplex.check()
    values = [simplex.value(x) for x in xs]
    for row, threshold in thresholds:
        total = sum(Fraction(c) * v for c, v in zip(row, values))
        assert total >= threshold
