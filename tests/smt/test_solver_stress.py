"""Stress and corner-case tests for the SMT substrate."""

import random

from hypothesis import given, settings, strategies as st

from repro.lang import (
    add,
    and_,
    bool_var,
    eq,
    evaluate,
    ge,
    implies,
    int_const,
    int_var,
    ite,
    le,
    lt,
    mul,
    not_,
    or_,
    sub,
)
from repro.smt import SmtSolver, Status, check_sat, is_valid

x, y, z = int_var("x"), int_var("y"), int_var("z")


class TestThreeVariableSystems:
    def test_transitive_chains(self):
        # x < y < z < x is unsat.
        assert check_sat(and_(lt(x, y), lt(y, z), lt(z, x))).is_unsat

    def test_long_equality_chain(self):
        variables = [int_var(f"v{i}") for i in range(12)]
        chain = and_(
            *(eq(variables[i + 1], add(variables[i], 1)) for i in range(11)),
            eq(variables[0], 0),
        )
        result = check_sat(chain)
        assert result.is_sat
        assert result.model["v11"] == 11

    def test_dense_difference_constraints(self):
        random.seed(7)
        variables = [int_var(f"d{i}") for i in range(6)]
        parts = []
        for _ in range(14):
            a, b = random.sample(range(6), 2)
            parts.append(le(sub(variables[a], variables[b]), random.randint(-2, 6)))
        result = check_sat(and_(*parts))
        if result.is_sat:
            assert evaluate(and_(*parts), result.model)

    def test_big_coefficients(self):
        formula = and_(
            eq(add(mul(1000, x), mul(999, y)), 1),
            ge(x, -10**6),
            le(x, 10**6),
        )
        result = check_sat(formula)
        assert result.is_sat
        assert 1000 * result.model["x"] + 999 * result.model["y"] == 1

    def test_parity_style_unsat(self):
        # 2x + 4y = 3 has no integer solutions.
        assert check_sat(eq(add(mul(2, x), mul(4, y)), 3)).is_unsat

    def test_deep_boolean_structure(self):
        ps = [bool_var(f"p{i}") for i in range(8)]
        xor_chain = ps[0]
        for p in ps[1:]:
            xor_chain = or_(and_(xor_chain, not_(p)), and_(not_(xor_chain), p))
        result = check_sat(and_(xor_chain, *(implies(p, ge(x, 1)) for p in ps)))
        assert result.is_sat


class TestValiditiesOverCLIA:
    def test_max_is_commutative(self):
        max_xy = ite(ge(x, y), x, y)
        max_yx = ite(ge(y, x), y, x)
        assert is_valid(eq(max_xy, max_yx))[0]

    def test_max_is_associative(self):
        def maximum(a, b):
            return ite(ge(a, b), a, b)

        left = maximum(maximum(x, y), z)
        right = maximum(x, maximum(y, z))
        assert is_valid(eq(left, right))[0]

    def test_triangle_inequality_for_abs(self):
        def absolute(a):
            return ite(ge(a, 0), a, sub(0, a))

        lhs = absolute(add(x, y))
        rhs = add(absolute(x), absolute(y))
        assert is_valid(le(lhs, rhs))[0]

    def test_non_theorem_has_counterexample(self):
        valid, cex = is_valid(eq(sub(x, y), sub(y, x)))
        assert not valid
        assert cex["x"] != cex["y"]


class TestIncrementalStress:
    def test_many_incremental_additions(self):
        solver = SmtSolver()
        for i in range(30):
            solver.add(ge(x, i))
            result = solver.solve()
            assert result.is_sat
            assert result.model["x"] >= i
        solver.add(le(x, 10))
        assert solver.solve().is_unsat


# -- Randomised 3-variable cross-check -------------------------------------------

_coef = st.integers(min_value=-3, max_value=3)


@st.composite
def _three_var_formula(draw):
    def atom():
        lhs = add(
            mul(draw(_coef), x), mul(draw(_coef), y), mul(draw(_coef), z),
            draw(st.integers(-6, 6)),
        )
        op = draw(st.sampled_from([ge, le, eq, lt]))
        return op(lhs, int_const(0))

    parts = [atom() for _ in range(draw(st.integers(2, 4)))]
    shape = draw(st.sampled_from(["and", "or", "mix"]))
    if shape == "and":
        return and_(*parts)
    if shape == "or":
        return or_(*parts)
    return and_(or_(*parts[:2]), *parts[2:])


def _brute3(formula, radius=5):
    for a in range(-radius, radius + 1):
        for b in range(-radius, radius + 1):
            for c in range(-radius, radius + 1):
                if evaluate(formula, {"x": a, "y": b, "z": c}):
                    return True
    return False


@given(_three_var_formula())
@settings(max_examples=80, deadline=None)
def test_three_variable_agreement(formula):
    from hypothesis import assume

    from repro.smt import SolverBudgetExceeded

    solver = SmtSolver(lia_node_budget=3000)
    try:
        result = solver.check(formula)
    except SolverBudgetExceeded:
        assume(False)  # skip adversarially slow instances
        return
    if result.is_sat:
        env = {"x": 0, "y": 0, "z": 0}
        env.update(result.model)
        assert evaluate(formula, env)
    else:
        assert not _brute3(formula)
