"""SMT query capture/replay: round-trip fidelity and divergence detection.

Satellite contract: a pristine corpus replays with zero divergences; a
corrupted entry, a tampered status, and a tampered model each produce a
distinct non-zero ``dryadsynth smt-replay`` exit code with a readable
report.
"""

import json

import pytest

from repro.bench.runner import make_solver
from repro.smt import capture
from repro.sygus.parser import parse_sygus_text

from tests.obs.test_forensics import MAX2


@pytest.fixture()
def corpus(tmp_path):
    """Capture a real max2 run into a corpus directory."""
    directory = str(tmp_path / "corpus")
    problem = parse_sygus_text(MAX2, "max2")
    with capture.capturing(directory, "max2"):
        outcome = make_solver("dryadsynth", 5.0).synthesize(problem)
    assert outcome.solution is not None
    return directory


def _corpus_file(directory):
    files = capture.corpus_files(directory)
    assert len(files) == 1
    return files[0]


def _rewrite(path, mutate):
    """Apply ``mutate(entry) -> entry-or-None`` to one sat entry."""
    with open(path) as handle:
        lines = [json.loads(line) for line in handle if line.strip()]
    done = False
    out = []
    for record in lines:
        if not done and record.get("status") == "sat":
            record = mutate(record)
            done = True
        out.append(record)
    assert done, "corpus must contain a sat entry to tamper with"
    with open(path, "w") as handle:
        for record in out:
            handle.write(json.dumps(record) + "\n")


class TestRoundTrip:
    def test_pristine_corpus_replays_with_zero_divergences(self, corpus):
        """Acceptance: every query status and model reproduces standalone."""
        report = capture.replay_corpus(corpus)
        assert report.entries > 0
        assert report.ok
        assert report.divergences == []
        rendered = capture.render_report(report)
        assert "zero divergences" in rendered
        assert "p50=" in rendered and "p99=" in rendered

    def test_cli_single_run_captures_and_replays(self, tmp_path, capsys):
        from repro.cli import main

        sl = tmp_path / "max2.sl"
        sl.write_text(MAX2)
        directory = str(tmp_path / "corpus")
        assert main([str(sl), "--smt-corpus", directory]) == 0
        capsys.readouterr()
        assert main(["smt-replay", directory]) == 0
        assert "zero divergences" in capsys.readouterr().out

    def test_aborted_captures_are_skipped_not_diverged(self, corpus, capsys):
        """Deadline/budget aborts are capture-run artifacts: skipped on replay."""
        from repro.cli import main

        def abort(entry):
            entry["status"] = "deadline-exceeded"
            entry.pop("model", None)
            entry.pop("model_sig", None)
            return entry

        _rewrite(_corpus_file(corpus), abort)
        report = capture.replay_corpus(corpus)
        assert report.skipped == 1
        assert report.ok
        rendered = capture.render_report(report)
        assert "skipped 1 aborted capture(s)" in rendered
        assert main(["smt-replay", corpus]) == 0
        assert "skipped 1 aborted" in capsys.readouterr().out

    def test_entries_record_budget_and_signature(self, corpus):
        _, entries = capture.read_corpus_file(_corpus_file(corpus))
        assert entries
        for _lineno, entry in entries:
            assert "max_rounds" in entry["budget"]
            assert "lia_node_budget" in entry["budget"]
            if entry.get("model") is not None:
                assert entry["model_sig"] == capture.model_signature(
                    entry["model"]
                )


class TestDivergences:
    def test_corrupt_entry_is_exit_3(self, corpus, capsys):
        from repro.cli import main

        path = _corpus_file(corpus)
        with open(path) as handle:
            lines = handle.readlines()
        lines[1] = "{this is not json\n"
        with open(path, "w") as handle:
            handle.writelines(lines)
        assert main(["smt-replay", corpus]) == 3
        out = capsys.readouterr().out
        assert "DIVERGENCES" in out
        assert "[corrupt]" in out

    def test_status_tamper_is_exit_4(self, corpus, capsys):
        from repro.cli import main

        def flip_status(entry):
            entry["status"] = "unsat"
            entry.pop("model", None)
            entry.pop("model_sig", None)
            return entry

        _rewrite(_corpus_file(corpus), flip_status)
        assert main(["smt-replay", corpus]) == 4
        out = capsys.readouterr().out
        assert "[status]" in out
        assert "captured unsat, replayed sat" in out

    def test_model_tamper_is_exit_5(self, corpus, capsys):
        from repro.cli import main

        def poison_model(entry):
            name = sorted(entry["model"])[0]
            entry["model"][name] = 12345  # model_sig now disagrees
            return entry

        _rewrite(_corpus_file(corpus), poison_model)
        assert main(["smt-replay", corpus]) == 5
        out = capsys.readouterr().out
        assert "[model]" in out
        assert "model_sig" in out

    def test_corrupt_outranks_status_across_files(self, corpus, tmp_path, capsys):
        """Exit-code precedence: corrupt > status when both diverge."""
        from repro.cli import main

        _rewrite(_corpus_file(corpus), lambda e: dict(e, status="unsat"))
        broken = tmp_path / "corpus" / "zzz.smtq.jsonl"
        broken.write_text("not json at all\n")
        assert main(["smt-replay", corpus]) == 3
        capsys.readouterr()

    def test_missing_corpus_is_exit_2(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["smt-replay", str(tmp_path / "nowhere")]) == 2
        assert "error" in capsys.readouterr().err
