"""Tests for the CDCL SAT solver, including random-CNF cross-checks."""

import itertools

from hypothesis import given, settings, strategies as st

from repro.smt.sat import SatSolver, luby


def _brute_force_sat(clauses, num_vars):
    for bits in itertools.product([False, True], repeat=num_vars):
        assignment = {v: bits[v - 1] for v in range(1, num_vars + 1)}
        if all(
            any(assignment[abs(l)] == (l > 0) for l in clause) for clause in clauses
        ):
            return True
    return False


def _model_satisfies(model, clauses):
    return all(any(model[abs(l)] == (l > 0) for l in clause) for clause in clauses)


class TestBasics:
    def test_empty_formula_is_sat(self):
        assert SatSolver().solve() == {}

    def test_unit_clause(self):
        solver = SatSolver()
        solver.add_clause([1])
        model = solver.solve()
        assert model[1] is True

    def test_contradictory_units(self):
        solver = SatSolver()
        solver.add_clause([1])
        assert solver.add_clause([-1]) is False
        assert solver.solve() is None

    def test_simple_sat(self):
        solver = SatSolver()
        solver.add_clause([1, 2])
        solver.add_clause([-1, 2])
        model = solver.solve()
        assert model[2] is True

    def test_simple_unsat(self):
        solver = SatSolver()
        for clause in ([1, 2], [1, -2], [-1, 2], [-1, -2]):
            solver.add_clause(clause)
        assert solver.solve() is None

    def test_tautological_clause_ignored(self):
        solver = SatSolver()
        solver.add_clause([1, -1])
        assert solver.solve() is not None

    def test_duplicate_literals_collapsed(self):
        solver = SatSolver()
        solver.add_clause([1, 1, 1])
        model = solver.solve()
        assert model[1] is True

    def test_incremental_clause_addition(self):
        solver = SatSolver()
        solver.add_clause([1, 2, 3])
        assert solver.solve() is not None
        solver.add_clause([-1])
        solver.add_clause([-2])
        model = solver.solve()
        assert model is not None and model[3] is True
        solver.add_clause([-3])
        assert solver.solve() is None


class TestPigeonhole:
    def test_php_3_into_2_is_unsat(self):
        # Pigeon p in hole h is variable 2*(p-1) + h, p in 1..3, h in 1..2.
        def var(p, h):
            return 2 * (p - 1) + h

        solver = SatSolver()
        for p in (1, 2, 3):
            solver.add_clause([var(p, 1), var(p, 2)])
        for h in (1, 2):
            for p1, p2 in itertools.combinations((1, 2, 3), 2):
                solver.add_clause([-var(p1, h), -var(p2, h)])
        assert solver.solve() is None

    def test_php_3_into_3_is_sat(self):
        def var(p, h):
            return 3 * (p - 1) + h

        solver = SatSolver()
        for p in (1, 2, 3):
            solver.add_clause([var(p, h) for h in (1, 2, 3)])
        for h in (1, 2, 3):
            for p1, p2 in itertools.combinations((1, 2, 3), 2):
                solver.add_clause([-var(p1, h), -var(p2, h)])
        assert solver.solve() is not None


class TestLuby:
    def test_prefix(self):
        assert [luby(i) for i in range(15)] == [
            1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8,
        ]


_clause = st.lists(
    st.integers(min_value=1, max_value=6).flatmap(
        lambda v: st.sampled_from([v, -v])
    ),
    min_size=1,
    max_size=4,
)


@given(st.lists(_clause, min_size=1, max_size=25))
@settings(max_examples=300, deadline=None)
def test_cdcl_agrees_with_brute_force(clauses):
    num_vars = 6
    solver = SatSolver()
    trivially_unsat = False
    for clause in clauses:
        if not solver.add_clause(clause):
            trivially_unsat = True
    model = None if trivially_unsat else solver.solve()
    expected = _brute_force_sat(clauses, num_vars)
    if expected:
        assert model is not None
        padded = {v: model.get(v, False) for v in range(1, num_vars + 1)}
        assert _model_satisfies(padded, clauses)
    else:
        assert model is None
