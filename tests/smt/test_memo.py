"""Semantic SMT query memoization (:mod:`repro.smt.memo`)."""

import pytest

from repro import obs
from repro.lang import (
    add,
    and_,
    bool_var,
    eq,
    ge,
    int_var,
    le,
    lt,
    or_,
)
from repro.smt import SmtSolver, SolverBudgetExceeded, Status
from repro.smt import capture
from repro.smt import memo as smt_memo

x, y = int_var("x"), int_var("y")
p, q = bool_var("p"), bool_var("q")


def _sat_formula():
    return and_(ge(add(x, y), 5), le(x, 3), le(y, 4))


class TestQueryMemoHits:
    def test_duplicate_query_across_fresh_solvers_hits(self):
        memo = smt_memo.QueryMemo()
        first = SmtSolver(memo=memo)
        first.add(_sat_formula())
        result = first.solve()
        assert result.status is Status.SAT
        assert memo.stats() == {"hits": 0, "misses": 1, "entries": 1}

        second = SmtSolver(memo=memo)
        second.add(_sat_formula())
        cached = second.solve()
        assert cached.status is Status.SAT
        assert cached.model == result.model
        assert memo.hits == 1
        # A hit still counts as a check for the solver's own stats.
        assert second.stats.checks == 1

    def test_hit_model_is_a_copy(self):
        memo = smt_memo.QueryMemo()
        solver = SmtSolver(memo=memo)
        solver.add(_sat_formula())
        solver.solve()

        again = SmtSolver(memo=memo)
        again.add(_sat_formula())
        hit = again.solve()
        hit.model["x"] = 10**9  # caller mutation must not poison the store

        third = SmtSolver(memo=memo)
        third.add(_sat_formula())
        assert third.solve().model["x"] != 10**9

    def test_unsat_with_assumption_core_is_cached(self):
        memo = smt_memo.QueryMemo()
        solver = SmtSolver(memo=memo)
        solver.add(ge(x, 5))
        assumptions = (lt(x, 0),)
        result = solver.solve(assumptions)
        assert result.status is Status.UNSAT
        assert result.unsat_core == assumptions

        again = SmtSolver(memo=memo)
        again.add(ge(x, 5))
        hit = again.solve(assumptions)
        assert memo.hits == 1
        assert hit.status is Status.UNSAT
        assert hit.unsat_core == assumptions

    def test_different_assumptions_are_different_queries(self):
        memo = smt_memo.QueryMemo()
        solver = SmtSolver(memo=memo)
        solver.add(or_(p, q))
        assert solver.solve((p,)).status is Status.SAT
        assert solver.solve((q,)).status is Status.SAT
        assert memo.hits == 0
        assert memo.misses == 2

    def test_incremental_adds_change_the_fingerprint(self):
        memo = smt_memo.QueryMemo()
        solver = SmtSolver(memo=memo)
        solver.add(ge(x, 0))
        assert solver.solve().status is Status.SAT
        solver.add(lt(x, 0))
        assert solver.solve().status is Status.UNSAT
        assert memo.hits == 0

        # A fresh solver replaying the same growth pattern hits both.
        replay = SmtSolver(memo=memo)
        replay.add(ge(x, 0))
        assert replay.solve().status is Status.SAT
        replay.add(lt(x, 0))
        assert replay.solve().status is Status.UNSAT
        assert memo.hits == 2


class TestQueryMemoSoundness:
    def test_sort_distinct_queries_do_not_collide(self):
        # (= x y) over Ints is SAT with a model; an identically *rendered*
        # query over different sorts must not share the entry.  The digest
        # includes each free variable's sort, so these are distinct keys.
        a = smt_memo.term_digest(eq(x, y))
        b = smt_memo.term_digest(eq(bool_var("x"), bool_var("y")))
        assert a != b

    def test_budget_abort_is_not_cached(self):
        memo = smt_memo.QueryMemo()
        solver = SmtSolver(max_rounds=1, memo=memo)
        # Needs >1 DPLL(T) round: the SAT core proposes, theory refutes.
        solver.add(and_(or_(ge(x, 5), le(x, -5)), ge(x, 0), le(x, 3)))
        with pytest.raises(SolverBudgetExceeded):
            solver.solve()
        assert len(memo) == 0

        retry = SmtSolver(memo=memo)
        retry.add(and_(or_(ge(x, 5), le(x, -5)), ge(x, 0), le(x, 3)))
        assert retry.solve().status is Status.UNSAT

    def test_scoped_solver_bypasses_memo(self):
        memo = smt_memo.QueryMemo()
        solver = SmtSolver(memo=memo)
        solver.add(ge(x, 0))
        solver.push()
        solver.add(lt(x, 0))
        assert solver.solve().status is Status.UNSAT
        solver.pop()
        # Scoped constraints never reach the fingerprint, so a scoped
        # solver is excluded outright: this post-pop solve must be SAT,
        # not a stale UNSAT hit.
        assert solver.solve().status is Status.SAT
        assert memo.hits == 0

    def test_capture_mode_bypasses_memo(self, tmp_path):
        memo = smt_memo.QueryMemo()
        warm = SmtSolver(memo=memo)
        warm.add(_sat_formula())
        warm.solve()
        with capture.capturing(str(tmp_path), "memo-bypass"):
            captured = SmtSolver(memo=memo)
            captured.add(_sat_formula())
            assert captured.solve().status is Status.SAT
        assert memo.hits == 0  # the corpus reflects a real solve
        files = capture.corpus_files(str(tmp_path))
        assert len(files) == 1

    def test_memo_none_disables(self):
        solver = SmtSolver(memo=None)
        solver.add(_sat_formula())
        assert solver.solve().status is Status.SAT
        assert len(smt_memo.default_memo()) == 0

    def test_only_decided_statuses_store(self):
        from repro.smt.solver import Result

        memo = smt_memo.QueryMemo()
        memo.store(b"k", Result(Status.UNKNOWN, None, 0))
        assert len(memo) == 0


class TestMemoHousekeeping:
    def test_lru_eviction(self):
        memo = smt_memo.QueryMemo(capacity=2)
        from repro.smt.solver import Result

        memo.store(b"a", Result(Status.SAT, {"x": 1}, 1))
        memo.store(b"b", Result(Status.SAT, {"x": 2}, 1))
        assert memo.lookup(b"a") is not None  # touch: a is now most recent
        memo.store(b"c", Result(Status.SAT, {"x": 3}, 1))
        assert memo.lookup(b"b") is None  # b was least recently used
        assert memo.lookup(b"a") is not None
        assert memo.lookup(b"c") is not None

    def test_default_solver_uses_process_memo(self):
        first = SmtSolver()
        first.add(_sat_formula())
        first.solve()
        second = SmtSolver()
        second.add(_sat_formula())
        second.solve()
        assert smt_memo.default_memo().hits >= 1

    def test_metrics_counters_mirror_hits_and_misses(self):
        with obs.recording() as recorder:
            memo = smt_memo.QueryMemo()
            solver = SmtSolver(memo=memo)
            solver.add(_sat_formula())
            solver.solve()
            again = SmtSolver(memo=memo)
            again.add(_sat_formula())
            again.solve()
            assert recorder.metrics.counter("smt.memo_hits").value >= 1
            assert recorder.metrics.counter("smt.memo_misses").value >= 1
