"""Property suite: the compiled evaluator agrees with the AST walker.

Randomized CLIA terms, environments (including *partial* environments),
and interpreted definitions — on every draw, :mod:`repro.lang.compile`
must produce the same value as :mod:`repro.lang.evaluator`, including
raising :class:`EvaluationError` in exactly the same cases (unbound
variables reached through lazy ``ite``/``and``/``or`` structure).
"""

from hypothesis import given, settings, strategies as st

from repro.lang.builders import (
    add,
    apply_fn,
    and_,
    bool_var,
    eq,
    ge,
    implies,
    int_const,
    int_var,
    ite,
    le,
    lt,
    mul,
    neg,
    not_,
    or_,
    sub,
)
from repro.lang.compile import compile_term
from repro.lang.evaluator import EvaluationError, evaluate
from repro.lang.sorts import INT

VAR_NAMES = ("x", "y", "z")
_INT_VARS = tuple(int_var(n) for n in VAR_NAMES)
_BOOL_VARS = (bool_var("p"), bool_var("q"))

#: Interpreted definitions exercised by the APP branch: a non-recursive
#: helper and a recursive one, both over a single Int parameter.
_A = int_var("a")
FUNCS = {
    "twice": ((_A,), add(_A, _A)),
    # Guarded on both sides so random (possibly huge) arguments keep the
    # recursion depth tiny in walker and compiled form alike.
    "tri": (
        (_A,),
        ite(
            or_(le(_A, 0), ge(_A, 12)),
            int_const(0),
            add(_A, apply_fn("tri", [sub(_A, 1)], INT)),
        ),
    ),
}


@st.composite
def int_terms(draw, depth=4):
    if depth == 0 or draw(st.booleans()):
        if draw(st.booleans()):
            return int_const(draw(st.integers(-8, 8)))
        return draw(st.sampled_from(_INT_VARS))
    op = draw(
        st.sampled_from(["add", "sub", "mul", "neg", "ite", "app"])
    )
    if op == "neg":
        return neg(draw(int_terms(depth=depth - 1)))
    if op == "app":
        name = draw(st.sampled_from(sorted(FUNCS)))
        return apply_fn(name, [draw(int_terms(depth=depth - 1))], INT)
    a = draw(int_terms(depth=depth - 1))
    b = draw(int_terms(depth=depth - 1))
    if op == "add":
        return add(a, b)
    if op == "sub":
        return sub(a, b)
    if op == "mul":
        return mul(a, b)
    cond = draw(bool_terms(depth=min(depth - 1, 2)))
    return ite(cond, a, b)


@st.composite
def bool_terms(draw, depth=3):
    if depth == 0 or draw(st.booleans()):
        if draw(st.booleans()):
            return draw(st.sampled_from(_BOOL_VARS))
        cmp_op = draw(st.sampled_from([ge, le, lt, eq]))
        return cmp_op(
            draw(int_terms(depth=1)), draw(int_terms(depth=1))
        )
    shape = draw(st.sampled_from(["not", "and", "or", "implies"]))
    a = draw(bool_terms(depth=depth - 1))
    if shape == "not":
        return not_(a)
    b = draw(bool_terms(depth=depth - 1))
    if shape == "and":
        return and_(a, b)
    if shape == "or":
        return or_(a, b)
    return implies(a, b)


@st.composite
def environments(draw):
    """Randomized environments, possibly missing some variables."""
    env = {}
    for name in VAR_NAMES:
        if draw(st.booleans()):
            env[name] = draw(st.integers(-10, 10))
    for name in ("p", "q"):
        if draw(st.booleans()):
            env[name] = draw(st.booleans())
    return env


def _assert_parity(term, env):
    try:
        expected = evaluate(term, env, FUNCS)
        failed = False
    except EvaluationError:
        failed = True
    compiled = compile_term(term, funcs=FUNCS)
    if failed:
        try:
            compiled.eval(env)
        except EvaluationError:
            return
        raise AssertionError(
            f"walker raised, compiled did not: {term!r} under {env!r}"
        )
    got = compiled.eval(env)
    assert got == expected, f"{term!r} under {env!r}: {got} != {expected}"
    assert type(got) is type(expected)


@given(int_terms(), environments())
@settings(max_examples=300, deadline=None)
def test_int_terms_agree_with_walker(term, env):
    _assert_parity(term, env)


@given(bool_terms(), environments())
@settings(max_examples=300, deadline=None)
def test_bool_terms_agree_with_walker(term, env):
    _assert_parity(term, env)


@given(int_terms())
@settings(max_examples=150, deadline=None)
def test_empty_environment_parity(term):
    """EvaluationError parity in the fully unbound extreme."""
    _assert_parity(term, {})
