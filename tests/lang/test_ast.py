"""Tests for the hash-consed term AST."""

import pytest

from repro.lang import BOOL, INT, Kind, Sort, Term
from repro.lang.builders import (
    add,
    and_,
    apply_fn,
    bool_const,
    bool_var,
    eq,
    ge,
    int_const,
    int_var,
    ite,
    mul,
    not_,
    or_,
    sub,
)


class TestInterning:
    def test_identical_constants_are_same_object(self):
        assert int_const(42) is int_const(42)

    def test_identical_variables_are_same_object(self):
        assert int_var("x") is int_var("x")

    def test_distinct_sorts_are_distinct_objects(self):
        assert int_var("x") is not bool_var("x")

    def test_compound_terms_are_interned(self):
        x, y = int_var("x"), int_var("y")
        assert add(x, y) is add(x, y)
        assert add(x, y) is not add(y, x)

    def test_bool_and_int_constants_are_distinct(self):
        # In Python True == 1, but the terms must differ.
        assert bool_const(True) is not int_const(1)
        assert bool_const(True).sort is BOOL
        assert int_const(1).sort is INT

    def test_sort_interning(self):
        assert Sort("Int") is INT
        assert Sort("Bool") is BOOL


class TestSortInference:
    def test_arith_is_int(self):
        x = int_var("x")
        assert add(x, 1).sort is INT
        assert sub(x, 1).sort is INT
        assert mul(2, x).sort is INT

    def test_comparison_is_bool(self):
        x = int_var("x")
        assert ge(x, 0).sort is BOOL
        assert eq(x, 0).sort is BOOL

    def test_ite_takes_branch_sort(self):
        x = int_var("x")
        p = bool_var("p")
        assert ite(p, x, int_const(0)).sort is INT
        assert ite(p, p, bool_const(False)).sort is BOOL

    def test_application_sort_is_explicit(self):
        f = apply_fn("f", [int_var("x")], INT)
        assert f.sort is INT
        assert f.name == "f"


class TestWellFormedness:
    def test_mixed_sort_ite_rejected(self):
        with pytest.raises(ValueError):
            ite(bool_var("p"), int_var("x"), bool_var("q"))

    def test_non_bool_condition_rejected(self):
        with pytest.raises(ValueError):
            ite(int_var("x"), int_var("y"), int_var("z"))

    def test_bool_arithmetic_rejected(self):
        with pytest.raises(ValueError):
            add(bool_var("p"), int_var("x"))

    def test_int_connective_rejected(self):
        with pytest.raises(ValueError):
            and_(int_var("x"), bool_var("p"))

    def test_comparison_of_bools_rejected(self):
        with pytest.raises(ValueError):
            ge(bool_var("p"), bool_var("q"))

    def test_eq_requires_same_sorts(self):
        with pytest.raises(ValueError):
            eq(int_var("x"), bool_var("p"))


class TestMetrics:
    def test_leaf_height_is_one(self):
        assert int_var("x").height == 1
        assert int_const(3).height == 1

    def test_height_of_nested_term(self):
        x, y = int_var("x"), int_var("y")
        term = ite(ge(x, y), x, y)
        assert term.height == 3

    def test_size_counts_nodes(self):
        x, y = int_var("x"), int_var("y")
        term = ite(ge(x, y), x, y)  # ite, ge, x, y, x, y
        assert term.size == 6

    def test_payload_accessors(self):
        assert int_const(7).value == 7
        assert int_var("v").name == "v"
        with pytest.raises(ValueError):
            int_const(7).name
        with pytest.raises(ValueError):
            int_var("v").value


class TestBuilders:
    def test_and_flattens(self):
        p, q, r = bool_var("p"), bool_var("q"), bool_var("r")
        assert and_(and_(p, q), r) is and_(p, q, r)

    def test_and_drops_true(self):
        p = bool_var("p")
        assert and_(p, bool_const(True)) is p

    def test_empty_and_is_true(self):
        assert and_().value is True

    def test_or_flattens_and_drops_false(self):
        p, q = bool_var("p"), bool_var("q")
        assert or_(or_(p, bool_const(False)), q) is or_(p, q)

    def test_empty_or_is_false(self):
        assert or_().value is False

    def test_not_cancels_double_negation(self):
        p = bool_var("p")
        assert not_(not_(p)) is p

    def test_add_flattens(self):
        x, y, z = int_var("x"), int_var("y"), int_var("z")
        assert add(add(x, y), z) is add(x, y, z)

    def test_int_coercion(self):
        x = int_var("x")
        assert add(x, 5).args[1] is int_const(5)

    def test_empty_add_is_zero(self):
        assert add().value == 0

    def test_repr_is_sexpr(self):
        x = int_var("x")
        assert repr(ge(x, 0)) == "(>= x 0)"
