"""Tests for s-expression printing and reading."""

import pytest

from repro.lang import (
    SExprError,
    add,
    and_,
    apply_fn,
    bool_const,
    ge,
    int_const,
    int_var,
    ite,
    not_,
    parse_all_sexprs,
    parse_sexpr,
    sub,
    to_sexpr,
)
from repro.lang.printer import define_fun_sexpr
from repro.lang.sorts import INT


class TestPrinter:
    def test_constants(self):
        assert to_sexpr(int_const(5)) == "5"
        assert to_sexpr(int_const(-5)) == "(- 5)"
        assert to_sexpr(bool_const(True)) == "true"
        assert to_sexpr(bool_const(False)) == "false"

    def test_operators(self):
        x, y = int_var("x"), int_var("y")
        assert to_sexpr(add(x, y)) == "(+ x y)"
        assert to_sexpr(sub(x, y)) == "(- x y)"
        assert to_sexpr(ge(x, y)) == "(>= x y)"
        assert to_sexpr(not_(ge(x, y))) == "(not (>= x y))"
        assert to_sexpr(ite(ge(x, y), x, y)) == "(ite (>= x y) x y)"

    def test_application(self):
        x = int_var("x")
        assert to_sexpr(apply_fn("qm", [x, int_const(0)], INT)) == "(qm x 0)"

    def test_define_fun(self):
        x, y = int_var("x"), int_var("y")
        rendered = define_fun_sexpr("max2", (x, y), INT, ite(ge(x, y), x, y))
        assert rendered == (
            "(define-fun max2 ((x Int) (y Int)) Int (ite (>= x y) x y))"
        )


class TestSExprReader:
    def test_atom(self):
        assert parse_sexpr("foo") == "foo"

    def test_nested_lists(self):
        assert parse_sexpr("(+ x (- y 1))") == ["+", "x", ["-", "y", "1"]]

    def test_comments_ignored(self):
        text = "; a comment\n(+ 1 2) ; trailing\n"
        assert parse_all_sexprs(text) == [["+", "1", "2"]]

    def test_multiple_expressions(self):
        assert parse_all_sexprs("(a) (b c)") == [["a"], ["b", "c"]]

    def test_string_literals(self):
        assert parse_sexpr('(set-info :source "my bench")') == [
            "set-info",
            ":source",
            '"my bench"',
        ]

    def test_unbalanced_raises(self):
        with pytest.raises(SExprError):
            parse_sexpr("(a (b)")

    def test_trailing_tokens_raise(self):
        with pytest.raises(SExprError):
            parse_sexpr("(a) b")

    def test_stray_close_raises(self):
        with pytest.raises(SExprError):
            parse_sexpr(") a")


class TestRoundTrip:
    def test_print_then_parse_structure(self):
        x, y = int_var("x"), int_var("y")
        term = ite(and_(ge(x, 0), ge(y, 0)), add(x, y), sub(x, y))
        parsed = parse_sexpr(to_sexpr(term))
        assert parsed[0] == "ite"
        assert parsed[1][0] == "and"
