"""Unit tests for compile-once term evaluation (:mod:`repro.lang.compile`)."""

import pytest

from repro.lang.builders import (
    add,
    and_,
    apply_fn,
    bool_var,
    eq,
    ge,
    int_const,
    int_var,
    ite,
    le,
    lt,
    mul,
    not_,
    or_,
    sub,
    var,
)
from repro.lang.compile import (
    MAX_COMPILED_HEIGHT,
    CompiledTerm,
    compile_spec,
    compile_term,
)
from repro.lang.evaluator import EvaluationError, evaluate
from repro.lang.sorts import INT

x, y = int_var("x"), int_var("y")
p = bool_var("p")


class TestCompiledTerm:
    def test_arithmetic_matches_walker(self):
        term = add(mul(x, 3), sub(y, 2))
        compiled = compile_term(term)
        assert compiled.compiled
        for env in ({"x": 0, "y": 0}, {"x": -4, "y": 7}, {"x": 100, "y": -1}):
            assert compiled.eval(env) == evaluate(term, env)

    def test_positional_convention_is_sorted_names_by_default(self):
        term = sub(x, y)
        compiled = compile_term(term)
        assert compiled.variables == ("x", "y")
        assert compiled(10, 4) == 6

    def test_explicit_variable_order(self):
        term = sub(x, y)
        compiled = compile_term(term, variables=("y", "x"))
        assert compiled(4, 10) == 6

    def test_global_cache_returns_identical_object(self):
        term = add(x, 1)
        assert compile_term(term) is compile_term(term)

    def test_lazy_ite_ignores_missing_branch_variable(self):
        term = ite(ge(x, 0), x, y)
        compiled = compile_term(term)
        # y missing but unreached: parity with the lazy walker.
        assert compiled.eval({"x": 5}) == 5
        with pytest.raises(EvaluationError):
            compiled.eval({"x": -5})

    def test_lazy_connectives(self):
        term = or_(ge(x, 0), ge(y, 0))
        compiled = compile_term(term)
        assert compiled.eval({"x": 1}) is True
        with pytest.raises(EvaluationError):
            compiled.eval({"x": -1})
        term2 = and_(lt(x, 0), lt(y, 0))
        assert compile_term(term2).eval({"x": 3}) is False

    def test_connective_results_are_bool(self):
        compiled = compile_term(and_(p, eq(x, 1)))
        assert compiled.eval({"p": True, "x": 1}) is True
        assert compiled.eval({"p": True, "x": 0}) is False

    def test_non_identifier_variable_names(self):
        weird = var("x!", INT)
        compiled = compile_term(add(weird, 1))
        assert compiled.compiled
        assert compiled.eval({"x!": 41}) == 42

    def test_interpreted_function(self):
        param = int_var("a")
        funcs = {"double": ((param,), add(param, param))}
        term = apply_fn("double", [add(x, 1)], INT)
        compiled = compile_term(term, funcs=funcs)
        assert compiled.compiled
        assert compiled.eval({"x": 20}) == 42

    def test_recursive_interpreted_function(self):
        n = int_var("n")
        body = ite(
            le(n, 0), int_const(0), add(n, apply_fn("tri", [sub(n, 1)], INT))
        )
        funcs = {"tri": ((n,), body)}
        term = apply_fn("tri", [x], INT)
        compiled = compile_term(term, funcs=funcs)
        assert compiled.eval({"x": 5}) == 15 == evaluate(term, {"x": 5}, funcs)

    def test_undefined_function_raises(self):
        term = apply_fn("nope", [x], INT)
        compiled = compile_term(term)
        with pytest.raises(EvaluationError, match="undefined function"):
            compiled.eval({"x": 1})

    def test_arity_mismatch_raises(self):
        param = int_var("a")
        funcs = {"id": ((param,), param)}
        term = apply_fn("id", [x, y], INT)
        compiled = compile_term(term, funcs=funcs)
        with pytest.raises(EvaluationError, match="arity mismatch"):
            compiled.eval({"x": 1, "y": 2})

    def test_oversized_term_falls_back_to_walker(self):
        # sub (binary, never flattened) builds genuinely deep nesting.
        term = x
        for i in range(MAX_COMPILED_HEIGHT + 8):
            term = sub(term, int_const(i))
        compiled = compile_term(term)
        assert not compiled.compiled
        assert compiled.eval({"x": 0}) == evaluate(term, {"x": 0})

    def test_eval_batch(self):
        compiled = compile_term(mul(x, x))
        envs = [{"x": i} for i in range(6)]
        assert compiled.eval_batch(envs) == [0, 1, 4, 9, 16, 25]

    def test_uncompiled_call_uses_walker(self):
        term = add(x, 1)
        shim = CompiledTerm(term, ("x",), None, {})
        assert shim(5) == 6
        assert shim.eval({"x": 5}) == 6


class TestCompiledSpec:
    def test_open_function_dispatch(self):
        spec = eq(apply_fn("f", [x], INT), mul(x, 2))
        compiled = compile_spec(spec, "f", ("x",))
        assert compiled.compiled
        assert compiled.try_eval(lambda v: v * 2, {"x": 7}) is True
        assert compiled.try_eval(lambda v: v + 1, {"x": 7}) is False

    def test_missing_variable_returns_none(self):
        spec = eq(apply_fn("f", [x], INT), y)
        compiled = compile_spec(spec, "f", ("x", "y"))
        assert compiled.try_eval(lambda v: v, {"x": 1}) is None

    def test_spec_with_interpreted_defs(self):
        a = int_var("a")
        funcs = {"inc": ((a,), add(a, 1))}
        spec = eq(apply_fn("f", [x], INT), apply_fn("inc", [x], INT))
        compiled = compile_spec(spec, "f", ("x",), funcs=funcs)
        assert compiled.try_eval(lambda v: v + 1, {"x": 3}) is True

    def test_cache_identity(self):
        spec = not_(lt(apply_fn("f", [x], INT), 0))
        assert compile_spec(spec, "f", ("x",)) is compile_spec(
            spec, "f", ("x",)
        )
