"""Regression: interpreted-function applications must share one memo.

The walker used to build a *fresh* cache for every application body, so a
tower of interpreted definitions where each level calls the previous one
twice re-evaluated the whole tower at every level — exponential work for a
linearly sized program.  The fix threads a single application cache (keyed
by function name and typed actuals) through the entire evaluation.  The
call-count probe below fails on the old evaluator with an astronomically
larger count.
"""

from repro.lang import evaluator
from repro.lang.builders import (
    add,
    apply_fn,
    int_const,
    int_var,
    sub,
)
from repro.lang.evaluator import evaluate
from repro.lang.sorts import INT

DEPTH = 14


def _tower_funcs(depth):
    """f1(p) = p;  f_{k+1}(p) = f_k(p) + f_k(p - 0).

    The two call sites are *distinct terms* (``p`` vs ``p - 0``), so the
    per-environment term cache cannot merge them — but they apply the same
    function to the same value, which only the application cache catches.
    """
    p = int_var("p")
    funcs = {"f1": ((p,), p)}
    for k in range(1, depth):
        body = add(
            apply_fn(f"f{k}", [p], INT),
            apply_fn(f"f{k}", [sub(p, int_const(0))], INT),
        )
        funcs[f"f{k + 1}"] = ((p,), body)
    return funcs


class TestApplicationCacheSharing:
    def test_call_count_stays_linear_in_tower_depth(self, monkeypatch):
        calls = {"n": 0}
        real = evaluator._eval

        def probe(*args, **kwargs):
            calls["n"] += 1
            return real(*args, **kwargs)

        # _eval recurses through the module global, so the probe counts
        # every node visit, including inside function bodies.
        monkeypatch.setattr(evaluator, "_eval", probe)

        funcs = _tower_funcs(DEPTH)
        top = apply_fn(f"f{DEPTH}", [int_var("x")], INT)
        assert evaluate(top, {"x": 3}, funcs) == 3 * 2 ** (DEPTH - 1)
        # Shared app cache: each level's body evaluates once (~8 node visits
        # per level).  The old per-application cache visited > 2**DEPTH
        # nodes; leave generous headroom so the bound is not brittle.
        assert calls["n"] < 40 * DEPTH

    def test_app_cache_results_are_correct_across_call_sites(self):
        funcs = _tower_funcs(6)
        top = apply_fn("f6", [add(int_var("x"), int_const(1))], INT)
        assert evaluate(top, {"x": 4}, funcs) == 5 * 2**5

    def test_app_cache_keys_are_typed(self):
        # hash(True) == hash(1): the cache key must not conflate a Bool
        # actual with an Int actual.
        p = int_var("p")
        funcs = {"f": ((p,), p)}
        term = add(
            apply_fn("f", [int_const(1)], INT),
            apply_fn("f", [int_var("b")], INT),
        )
        # With b=True the second application must not be served the cached
        # result *object identity aside* — values agree numerically, but the
        # key must distinguish them so bool-sorted results keep their type.
        cache: evaluator.AppCache = {}
        evaluator._eval(term, {"b": True}, funcs, {}, cache)
        assert len(cache) == 2
