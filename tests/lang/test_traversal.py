"""Tests for term traversals and substitution."""

from repro.lang import (
    add,
    and_,
    apply_fn,
    eq,
    free_vars,
    ge,
    int_const,
    int_var,
    ite,
    or_,
    sub,
    subexpressions,
    substitute,
    substitute_apps,
    contains_app,
)
from repro.lang.sorts import INT
from repro.lang.traversal import (
    app_occurrences,
    fresh_name,
    rename_apps,
    rewrite_bottom_up,
)


class TestFreeVars:
    def test_variable(self):
        x = int_var("x")
        assert free_vars(x) == {x}

    def test_constant_has_none(self):
        assert free_vars(int_const(1)) == frozenset()

    def test_compound(self):
        x, y = int_var("x"), int_var("y")
        assert free_vars(ite(ge(x, 0), y, add(x, 1))) == {x, y}


class TestSubexpressions:
    def test_postorder_and_dedup(self):
        x = int_var("x")
        term = add(x, x)  # builders keep both occurrences; term is interned
        subs = list(subexpressions(term))
        assert subs == [x, term]

    def test_all_nodes_present(self):
        x, y = int_var("x"), int_var("y")
        term = ge(add(x, y), sub(x, y))
        subs = set(subexpressions(term))
        assert {x, y, add(x, y), sub(x, y), term} == subs


class TestSubstitute:
    def test_variable_substitution(self):
        x, y = int_var("x"), int_var("y")
        assert substitute(add(x, 1), {x: y}) is add(y, 1)

    def test_simultaneous_swap(self):
        x, y = int_var("x"), int_var("y")
        swapped = substitute(sub(x, y), {x: y, y: x})
        assert swapped is sub(y, x)

    def test_subterm_substitution(self):
        x = int_var("x")
        inner = add(x, 1)
        term = ge(inner, 0)
        assert substitute(term, {inner: x}) is ge(x, 0)

    def test_empty_mapping_is_identity(self):
        x = int_var("x")
        term = add(x, 2)
        assert substitute(term, {}) is term


class TestSubstituteApps:
    def test_beta_reduction(self):
        x, y = int_var("x"), int_var("y")
        p1, p2 = int_var("p1"), int_var("p2")
        call = apply_fn("f", [add(x, 1), y], INT)
        spec = ge(call, 0)
        result = substitute_apps(spec, "f", (p1, p2), sub(p1, p2))
        assert result is ge(sub(add(x, 1), y), 0)

    def test_multiple_call_sites(self):
        x, y = int_var("x"), int_var("y")
        p = int_var("p")
        f1 = apply_fn("f", [x], INT)
        f2 = apply_fn("f", [y], INT)
        spec = eq(f1, f2)
        result = substitute_apps(spec, "f", (p,), add(p, 1))
        assert result is eq(add(x, 1), add(y, 1))

    def test_nested_call_sites_innermost_first(self):
        from repro.lang import evaluate

        x = int_var("x")
        p = int_var("p")
        inner = apply_fn("f", [x], INT)
        outer = apply_fn("f", [inner], INT)
        result = substitute_apps(ge(outer, 0), "f", (p,), add(p, 1))
        assert not contains_app(result, "f")
        # f(f(x)) with f = λp. p+1 is x+2, so the result holds iff x >= -2.
        assert evaluate(result, {"x": -2}) is True
        assert evaluate(result, {"x": -3}) is False

    def test_other_functions_untouched(self):
        x = int_var("x")
        p = int_var("p")
        g = apply_fn("g", [x], INT)
        result = substitute_apps(ge(g, 0), "f", (p,), p)
        assert result is ge(g, 0)


class TestAppQueries:
    def test_contains_app(self):
        x = int_var("x")
        spec = ge(apply_fn("f", [x], INT), 0)
        assert contains_app(spec, "f")
        assert not contains_app(spec, "g")

    def test_app_occurrences_distinct(self):
        x, y = int_var("x"), int_var("y")
        f1 = apply_fn("f", [x], INT)
        f2 = apply_fn("f", [y], INT)
        spec = and_(ge(f1, 0), ge(f2, 0), ge(f1, 1))
        assert set(app_occurrences(spec, "f")) == {f1, f2}

    def test_rename_apps(self):
        x = int_var("x")
        spec = ge(apply_fn("f", [x], INT), 0)
        renamed = rename_apps(spec, {"f": "g"})
        assert contains_app(renamed, "g")
        assert not contains_app(renamed, "f")


class TestRewriteBottomUp:
    def test_children_rewritten_before_parent(self):
        x = int_var("x")

        def rw(t):
            if t is x:
                return int_const(2)
            return t

        assert rewrite_bottom_up(add(x, x), rw) is add(2, 2)

    def test_identity_preserves_object(self):
        term = add(int_var("x"), 1)
        assert rewrite_bottom_up(term, lambda t: t) is term


class TestFreshName:
    def test_returns_base_when_free(self):
        assert fresh_name("aux", {"x", "y"}) == "aux"

    def test_avoids_collisions(self):
        assert fresh_name("aux", {"aux"}) == "aux!1"
        assert fresh_name("aux", {"aux", "aux!1"}) == "aux!2"
