"""Tests for concrete evaluation, including property-based checks."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.lang import (
    EvaluationError,
    evaluate,
    add,
    and_,
    apply_fn,
    eq,
    ge,
    gt,
    implies,
    int_const,
    int_var,
    ite,
    le,
    lt,
    mul,
    neg,
    not_,
    or_,
    sub,
    bool_var,
)
from repro.lang.sorts import INT


class TestBasicSemantics:
    def test_constant(self):
        assert evaluate(int_const(5), {}) == 5

    def test_variable(self):
        assert evaluate(int_var("x"), {"x": -3}) == -3

    def test_unbound_variable_raises(self):
        with pytest.raises(EvaluationError):
            evaluate(int_var("x"), {})

    def test_arithmetic(self):
        x = int_var("x")
        env = {"x": 10}
        assert evaluate(add(x, x, 1), env) == 21
        assert evaluate(sub(x, 3), env) == 7
        assert evaluate(neg(x), env) == -10
        assert evaluate(mul(3, x), env) == 30

    def test_comparisons(self):
        x = int_var("x")
        env = {"x": 2}
        assert evaluate(ge(x, 2), env) is True
        assert evaluate(gt(x, 2), env) is False
        assert evaluate(le(x, 2), env) is True
        assert evaluate(lt(x, 2), env) is False
        assert evaluate(eq(x, 2), env) is True

    def test_connectives(self):
        p, q = bool_var("p"), bool_var("q")
        env = {"p": True, "q": False}
        assert evaluate(and_(p, q), env) is False
        assert evaluate(or_(p, q), env) is True
        assert evaluate(not_(q), env) is True
        assert evaluate(implies(p, q), env) is False
        assert evaluate(implies(q, p), env) is True

    def test_ite(self):
        x = int_var("x")
        term = ite(ge(x, 0), x, sub(0, x))  # |x|
        assert evaluate(term, {"x": -7}) == 7
        assert evaluate(term, {"x": 7}) == 7

    def test_short_circuit_does_not_eval_dead_branch(self):
        # The dead branch references an unbound variable.
        x = int_var("x")
        term = ite(ge(x, 0), x, int_var("unbound"))
        assert evaluate(term, {"x": 1}) == 1


class TestFunctionApplication:
    def test_interpreted_function(self):
        x1, x2 = int_var("x1"), int_var("x2")
        qm_body = ite(lt(x1, 0), x2, x1)
        funcs = {"qm": ((x1, x2), qm_body)}
        call = apply_fn("qm", [int_const(-1), int_const(9)], INT)
        assert evaluate(call, {}, funcs) == 9

    def test_nested_application(self):
        x1 = int_var("x1")
        funcs = {"double": ((x1,), add(x1, x1))}
        call = apply_fn("double", [apply_fn("double", [int_var("x")], INT)], INT)
        assert evaluate(call, {"x": 3}, funcs) == 12

    def test_undefined_function_raises(self):
        call = apply_fn("mystery", [int_const(0)], INT)
        with pytest.raises(EvaluationError):
            evaluate(call, {})

    def test_arity_mismatch_raises(self):
        x1 = int_var("x1")
        funcs = {"id": ((x1,), x1)}
        call = apply_fn("id", [int_const(0), int_const(1)], INT)
        with pytest.raises(EvaluationError):
            evaluate(call, {}, funcs)

    def test_function_params_shadow_outer_env(self):
        x = int_var("x")
        funcs = {"id": ((x,), x)}
        call = apply_fn("id", [int_const(42)], INT)
        assert evaluate(call, {"x": 0}, funcs) == 42


# -- Property-based: evaluator agrees with a direct Python interpretation ----

_ints = st.integers(min_value=-50, max_value=50)


@st.composite
def _int_term_and_python(draw, depth=3):
    """Build a random Int term together with a Python lambda mirroring it."""
    if depth == 0 or draw(st.booleans()):
        choice = draw(st.integers(min_value=0, max_value=2))
        if choice == 0:
            value = draw(_ints)
            return int_const(value), (lambda env, v=value: v)
        name = draw(st.sampled_from(["a", "b"]))
        return int_var(name), (lambda env, n=name: env[n])
    op = draw(st.sampled_from(["add", "sub", "neg", "ite"]))
    left, lf = draw(_int_term_and_python(depth=depth - 1))
    if op == "neg":
        return neg(left), (lambda env: -lf(env))
    right, rf = draw(_int_term_and_python(depth=depth - 1))
    if op == "add":
        return add(left, right), (lambda env: lf(env) + rf(env))
    if op == "sub":
        return sub(left, right), (lambda env: lf(env) - rf(env))
    celse, cf = draw(_int_term_and_python(depth=depth - 1))
    return (
        ite(ge(left, right), left, celse),
        (lambda env: lf(env) if lf(env) >= rf(env) else cf(env)),
    )


@given(_int_term_and_python(), _ints, _ints)
@settings(max_examples=200, deadline=None)
def test_evaluator_matches_python_semantics(pair, a, b):
    term, python_fn = pair
    env = {"a": a, "b": b}
    assert evaluate(term, env) == python_fn(env)
