"""Fuzz round trips: random terms -> printed s-expressions -> parsed terms.

Uses the SyGuS term parser as the reader, so this also fuzzes the parser's
operator table against the printer's output (the hash-consed AST makes the
round-trip check a pointer comparison).
"""

from hypothesis import given, settings, strategies as st

from repro.lang import (
    add,
    and_,
    bool_const,
    eq,
    ge,
    int_const,
    int_var,
    ite,
    le,
    lt,
    not_,
    or_,
    sub,
    to_sexpr,
)
from repro.lang.sexpr import parse_sexpr
from repro.sygus.parser import parse_sygus_text

x, y = int_var("x"), int_var("y")


@st.composite
def _terms(draw, depth=3):
    if depth == 0:
        kind = draw(st.integers(0, 2))
        if kind == 0:
            return int_const(draw(st.integers(-20, 20)))
        return draw(st.sampled_from([x, y]))
    op = draw(st.sampled_from(["add", "sub", "ite"]))
    a = draw(_terms(depth=depth - 1))
    b = draw(_terms(depth=depth - 1))
    if op == "add":
        return add(a, b)
    if op == "sub":
        return sub(a, b)
    cond_op = draw(st.sampled_from([ge, le, lt, eq]))
    return ite(cond_op(a, b), a, b)


@st.composite
def _formulas(draw, depth=2):
    a = draw(_terms(depth=depth))
    b = draw(_terms(depth=depth))
    atom = draw(st.sampled_from([ge, le, lt, eq]))(a, b)
    shape = draw(st.sampled_from(["atom", "not", "and", "or"]))
    if shape == "atom":
        return atom
    if shape == "not":
        return not_(atom)
    other = draw(st.sampled_from([ge, le])) (b, a)
    return and_(atom, other) if shape == "and" else or_(atom, other)


def _reparse(term):
    """Parse a printed term through the SyGuS constraint pipeline."""
    text = f"""
    (set-logic LIA)
    (synth-fun probe ((x Int) (y Int)) Int)
    (declare-var x Int)
    (declare-var y Int)
    (constraint (= (probe x y) {to_sexpr(term)}))
    """
    problem = parse_sygus_text(text)
    # The constraint is (= (probe x y) <term>).
    return problem.spec.args[1]


@given(_terms())
@settings(max_examples=200, deadline=None)
def test_int_terms_round_trip(term):
    assert _reparse(term) is term


@given(_formulas())
@settings(max_examples=150, deadline=None)
def test_formulas_round_trip_as_sexprs(formula):
    # Structural: printing parses back as a balanced s-expression whose
    # head matches the root operator.
    parsed = parse_sexpr(to_sexpr(formula))
    if formula.args:
        assert isinstance(parsed, list)


@given(_terms())
@settings(max_examples=100, deadline=None)
def test_printing_is_deterministic(term):
    assert to_sexpr(term) == to_sexpr(term)
