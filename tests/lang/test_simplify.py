"""Tests for the simplifier, including the semantics-preservation property."""

from hypothesis import given, settings, strategies as st

from repro.lang import (
    add,
    and_,
    bool_const,
    bool_var,
    eq,
    evaluate,
    ge,
    implies,
    int_const,
    int_var,
    ite,
    lt,
    mul,
    neg,
    not_,
    or_,
    simplify,
    sub,
)


class TestArithmeticSimplification:
    def test_constant_folding(self):
        assert simplify(add(int_const(2), int_const(3))) is int_const(5)
        assert simplify(sub(int_const(2), int_const(3))) is int_const(-1)
        assert simplify(mul(int_const(4), int_const(-2))) is int_const(-8)

    def test_neutral_elements(self):
        x = int_var("x")
        assert simplify(add(x, 0)) is x
        assert simplify(sub(x, 0)) is x
        assert simplify(mul(1, x)) is x
        assert simplify(mul(x, 0)) is int_const(0)

    def test_self_subtraction(self):
        x = int_var("x")
        assert simplify(sub(x, x)) is int_const(0)

    def test_double_negation(self):
        x = int_var("x")
        assert simplify(neg(neg(x))) is x


class TestBooleanSimplification:
    def test_comparison_folding(self):
        assert simplify(ge(int_const(3), int_const(2))) is bool_const(True)
        assert simplify(lt(int_const(3), int_const(2))) is bool_const(False)

    def test_reflexive_comparisons(self):
        x = int_var("x")
        assert simplify(ge(x, x)) is bool_const(True)
        assert simplify(lt(x, x)) is bool_const(False)
        assert simplify(eq(x, x)) is bool_const(True)

    def test_and_absorbs(self):
        p = bool_var("p")
        assert simplify(and_(p, bool_const(True))) is p
        assert simplify(and_(p, bool_const(False))) is bool_const(False)
        assert simplify(and_(p, not_(p))) is bool_const(False)

    def test_or_absorbs(self):
        p = bool_var("p")
        assert simplify(or_(p, bool_const(False))) is p
        assert simplify(or_(p, bool_const(True))) is bool_const(True)
        assert simplify(or_(p, not_(p))) is bool_const(True)

    def test_dedup(self):
        p, q = bool_var("p"), bool_var("q")
        assert simplify(and_(p, q, p)) is and_(p, q)

    def test_implication_cases(self):
        p = bool_var("p")
        assert simplify(implies(bool_const(True), p)) is p
        assert simplify(implies(bool_const(False), p)) is bool_const(True)
        assert simplify(implies(p, bool_const(False))) is not_(p)
        assert simplify(implies(p, p)) is bool_const(True)

    def test_ite_collapse(self):
        x, y = int_var("x"), int_var("y")
        p = bool_var("p")
        assert simplify(ite(bool_const(True), x, y)) is x
        assert simplify(ite(bool_const(False), x, y)) is y
        assert simplify(ite(p, x, x)) is x

    def test_nested_folding(self):
        x = int_var("x")
        term = ite(ge(int_const(1), int_const(0)), add(x, 0), int_const(99))
        assert simplify(term) is x


# -- Property: simplify preserves semantics -----------------------------------

_ints = st.integers(min_value=-20, max_value=20)


@st.composite
def _bool_terms(draw, depth=3):
    x, y = int_var("a"), int_var("b")
    if depth == 0:
        kind = draw(st.integers(min_value=0, max_value=2))
        if kind == 0:
            return ge(add(x, draw(_ints)), y)
        if kind == 1:
            return eq(x, draw(_ints))
        return bool_const(draw(st.booleans()))
    op = draw(st.sampled_from(["and", "or", "not", "implies", "ite"]))
    s1 = draw(_bool_terms(depth=depth - 1))
    if op == "not":
        return not_(s1)
    s2 = draw(_bool_terms(depth=depth - 1))
    if op == "and":
        return and_(s1, s2)
    if op == "or":
        return or_(s1, s2)
    if op == "implies":
        return implies(s1, s2)
    s3 = draw(_bool_terms(depth=depth - 1))
    return ite(s1, s2, s3)


@given(_bool_terms(), _ints, _ints)
@settings(max_examples=300, deadline=None)
def test_simplify_preserves_boolean_semantics(term, a, b):
    env = {"a": a, "b": b}
    assert evaluate(simplify(term), env) == evaluate(term, env)


@given(_bool_terms())
@settings(max_examples=100, deadline=None)
def test_simplify_never_grows(term):
    assert simplify(term).size <= term.size


@given(_bool_terms())
@settings(max_examples=100, deadline=None)
def test_simplify_is_idempotent(term):
    once = simplify(term)
    assert simplify(once) is once
