"""Tests for the dryadsynth command-line interface."""

import pytest

from repro.cli import build_arg_parser, main

MAX2_SL = """
(set-logic LIA)
(synth-fun max2 ((x Int) (y Int)) Int)
(declare-var x Int)
(declare-var y Int)
(constraint (>= (max2 x y) x))
(constraint (>= (max2 x y) y))
(constraint (or (= (max2 x y) x) (= (max2 x y) y)))
(check-synth)
"""


@pytest.fixture
def max2_file(tmp_path):
    path = tmp_path / "max2.sl"
    path.write_text(MAX2_SL)
    return str(path)


class TestArgParser:
    def test_defaults(self):
        args = build_arg_parser().parse_args(["problem.sl"])
        assert args.solver == "dryadsynth"
        assert args.timeout is None

    def test_solver_choices(self):
        args = build_arg_parser().parse_args(["--solver", "eusolver", "p.sl"])
        assert args.solver == "eusolver"
        with pytest.raises(SystemExit):
            build_arg_parser().parse_args(["--solver", "z3", "p.sl"])


class TestMain:
    def test_solves_and_prints_define_fun(self, max2_file, capsys):
        code = main([max2_file, "--timeout", "60"])
        out = capsys.readouterr().out
        assert code == 0
        assert out.startswith("(define-fun max2 ((x Int) (y Int)) Int")

    def test_missing_file_errors(self, capsys):
        code = main(["/nonexistent/problem.sl"])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_stats_flag(self, max2_file, capsys):
        code = main([max2_file, "--timeout", "60", "--stats"])
        assert code == 0
        err = capsys.readouterr().err
        assert "time=" in err

    def test_alternate_solver(self, max2_file, capsys):
        code = main([max2_file, "--solver", "cegqi", "--timeout", "30"])
        assert code == 0
        assert "(define-fun max2" in capsys.readouterr().out

    def test_solution_actually_verifies(self, max2_file, capsys):
        from repro.lang import evaluate
        from repro.sygus.parser import parse_sygus_text, parse_sygus_file

        code = main([max2_file, "--timeout", "60"])
        printed = capsys.readouterr().out.strip()
        assert code == 0
        # Re-parse the printed define-fun and check it is a real max.
        from repro.lang.sexpr import parse_sexpr

        sexpr = parse_sexpr(printed)
        assert sexpr[0] == "define-fun"


MULTI_SL = """
(set-logic LIA)
(synth-fun f ((x Int)) Int)
(synth-fun g ((x Int)) Int)
(declare-var x Int)
(constraint (= (f x) (+ x 2)))
(constraint (= (g x) (- x 2)))
(check-synth)
"""


class TestMultiFunctionCli:
    def test_multi_problem_prints_all_define_funs(self, tmp_path, capsys):
        path = tmp_path / "multi.sl"
        path.write_text(MULTI_SL)
        code = main([str(path), "--timeout", "60"])
        out = capsys.readouterr().out
        assert code == 0
        assert "(define-fun f ((x Int)) Int" in out
        assert "(define-fun g ((x Int)) Int" in out

    def test_trace_flag_prints_events(self, max2_file, capsys):
        code = main([max2_file, "--timeout", "60", "--trace"])
        assert code == 0
        err = capsys.readouterr().err
        assert "deduct" in err or "enum" in err


class TestTraceJson:
    def test_trace_json_writes_round_trippable_file(self, max2_file, tmp_path):
        import json

        from repro.synth.trace import SynthesisTrace

        out = tmp_path / "trace.json"
        code = main([max2_file, "--timeout", "60", "--trace-json", str(out)])
        assert code == 0
        data = json.loads(out.read_text())
        assert data["format"] == "repro-trace/1"
        trace = SynthesisTrace.from_json(data)
        assert len(trace) > 0
        assert trace.of_kind("solved")


UNSAT_HEIGHT_SL = """
(set-logic LIA)
(synth-fun f ((a Int) (b Int) (c Int) (d Int)) Int)
(declare-var a Int)
(declare-var b Int)
(declare-var c Int)
(declare-var d Int)
(constraint (>= (f a b c d) a))
(constraint (>= (f a b c d) b))
(constraint (>= (f a b c d) c))
(constraint (>= (f a b c d) d))
(constraint (or (= (f a b c d) a) (= (f a b c d) b)
                (= (f a b c d) c) (= (f a b c d) d)))
(check-synth)
"""


class TestBatch:
    def _suite_dir(self, tmp_path):
        suite = tmp_path / "suite"
        suite.mkdir()
        (suite / "max2.sl").write_text(MAX2_SL)
        (suite / "multi.sl").write_text(MULTI_SL)
        return suite

    def _run(self, argv, capsys):
        code = main(["batch", "--no-cache"] + argv)
        captured = capsys.readouterr()
        import json

        records = [json.loads(line) for line in captured.out.splitlines()]
        return code, records, captured.err

    def test_serial_batch_over_directory(self, tmp_path, capsys):
        suite = self._suite_dir(tmp_path)
        code, records, err = self._run(
            [str(suite), "--timeout", "30"], capsys
        )
        assert code == 0
        assert sorted(r["name"] for r in records) == ["max2", "multi"]
        assert all(r["status"] == "solved" for r in records)
        assert "batch done: 2/2 solved" in err

    def test_parallel_matches_serial_outcomes(self, tmp_path, capsys):
        suite = self._suite_dir(tmp_path)
        code1, serial, _ = self._run(
            [str(suite), "--timeout", "30", "--jobs", "1"], capsys
        )
        code2, par, _ = self._run(
            [str(suite), "--timeout", "30", "--jobs", "2"], capsys
        )
        assert code1 == code2 == 0
        outcomes = lambda rs: {r["name"]: r["status"] for r in rs}
        assert outcomes(serial) == outcomes(par)

    def test_jsonl_written_to_out_file(self, tmp_path, capsys):
        import json

        suite = self._suite_dir(tmp_path)
        out = tmp_path / "results.jsonl"
        code = main(
            ["batch", "--no-cache", str(suite), "--timeout", "30",
             "--out", str(out)]
        )
        capsys.readouterr()
        assert code == 0
        lines = out.read_text().splitlines()
        assert len(lines) == 2
        assert all("fingerprint" in json.loads(line) for line in lines)

    def test_cache_reused_across_invocations(self, tmp_path, capsys):
        suite = self._suite_dir(tmp_path)
        cache = tmp_path / "cache"
        argv = ["batch", str(suite), "--timeout", "30", "--cache", str(cache)]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 0
        captured = capsys.readouterr()
        import json

        records = [json.loads(l) for l in captured.out.splitlines()]
        assert all(r["from_cache"] for r in records)
        assert "cache hits=2 misses=0" in captured.err

    def test_missing_path_errors(self, capsys):
        code = main(["batch", "/nonexistent/suite"])
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestLogJson:
    def test_single_run_writes_structured_log(self, max2_file, tmp_path,
                                              capsys):
        import json

        log = tmp_path / "run.log.jsonl"
        assert main([max2_file, "--timeout", "30",
                     "--log-json", str(log)]) == 0
        capsys.readouterr()
        records = [json.loads(l) for l in log.read_text().splitlines()]
        events = [r["event"] for r in records]
        assert "synth.start" in events
        assert "synth.end" in events
        start = records[events.index("synth.start")]
        assert start["problem"] == "max2.sl"
        assert start["solver"] == "dryadsynth"

    def test_batch_log_correlates_parent_and_worker(self, tmp_path, capsys):
        import json

        suite = tmp_path / "suite"
        suite.mkdir()
        (suite / "max2.sl").write_text(MAX2_SL)
        log = tmp_path / "batch.log.jsonl"
        code = main(["batch", str(suite), "--no-cache", "--timeout", "30",
                     "--log-json", str(log),
                     "--out", str(tmp_path / "results.jsonl")])
        capsys.readouterr()
        assert code == 0
        records = [json.loads(l) for l in log.read_text().splitlines()]
        by_event = {r["event"]: r for r in records}
        # Parent-side scheduler events and worker-side job events land in
        # the same file, correlated by job_id.
        assert by_event["job.assigned"]["job_id"] == "job-1"
        assert by_event["job.start"]["job_id"] == "job-1"
        assert by_event["job.end"]["status"] == "solved"
        assert by_event["job.completed"]["problem"] == "max2"
        assert by_event["job.start"]["pid"] != by_event["job.assigned"]["pid"]


class TestBatchServeTelemetry:
    def test_endpoints_scrape_mid_run(self, tmp_path, capsys):
        import json
        import socket
        import threading
        import time
        import urllib.request

        suite = tmp_path / "suite"
        suite.mkdir()
        for i in range(3):
            (suite / f"p{i}.sl").write_text(MAX2_SL)
        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        port = sock.getsockname()[1]
        sock.close()
        out = tmp_path / "results.jsonl"
        exit_code = {}

        def run():
            exit_code["value"] = main([
                "batch", str(suite), "--no-cache",
                "--solver", "debug-sleep@1.0", "--jobs", "1",
                "--timeout", "10", "--serve-telemetry", str(port),
                "--out", str(out),
            ])

        thread = threading.Thread(target=run)
        thread.start()
        base = f"http://127.0.0.1:{port}"

        def fetch(path):
            with urllib.request.urlopen(base + path, timeout=2.0) as resp:
                return resp.status, resp.read().decode()

        try:
            health = None
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                try:
                    health = fetch("/healthz")
                    break
                except OSError:
                    time.sleep(0.05)
            assert health is not None and health[0] == 200
            assert json.loads(health[1])["status"] == "ok"

            status, jobs_body = fetch("/jobs")
            payload = json.loads(jobs_body)
            assert status == 200
            assert payload["total"] == 3
            # Scraped mid-run: the batch (3 x 1s on one worker) is not done.
            assert any(
                j["state"] in ("queued", "running", "retrying")
                for j in payload["jobs"]
            )

            status, metrics = fetch("/metrics")
            assert status == 200
            assert "# TYPE repro_pool_workers_alive gauge" in metrics
            assert "repro_pool_jobs_running" in metrics
        finally:
            thread.join(timeout=30)
        assert exit_code["value"] == 0
        # The server dies with the batch.
        with pytest.raises(OSError):
            fetch("/healthz")
        records = [json.loads(l) for l in out.read_text().splitlines()]
        assert len(records) == 3


    def test_telemetry_url_line_is_machine_readable(self, tmp_path, capsys):
        """--serve-telemetry 0 must print the resolved URL, not port 0."""
        suite = tmp_path / "suite"
        suite.mkdir()
        (suite / "p0.sl").write_text(MAX2_SL)
        out = tmp_path / "results.jsonl"
        exit_code = main([
            "batch", str(suite), "--no-cache",
            "--solver", "debug-solve", "--jobs", "1",
            "--timeout", "10", "--serve-telemetry", "0",
            "--out", str(out),
        ])
        assert exit_code == 0
        stderr = capsys.readouterr().err
        url_lines = [
            line for line in stderr.splitlines()
            if line.startswith("TELEMETRY_URL=")
        ]
        assert len(url_lines) == 1
        url = url_lines[0].split("=", 1)[1]
        assert url.startswith("http://127.0.0.1:")
        port = int(url.rsplit(":", 1)[1])
        assert port != 0


class TestServeCli:
    def test_serve_daemon_submits_drains_and_persists(self, tmp_path):
        import json
        import signal
        import subprocess
        import sys
        import time
        import urllib.request

        results = tmp_path / "results.jsonl"
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve",
             "--jobs", "1", "--solver", "debug-solve", "--timeout", "10",
             "--results-out", str(results)],
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
        )
        try:
            line = proc.stdout.readline().strip()
            assert line.startswith("SERVE_URL="), line
            url = line.split("=", 1)[1]
            request = urllib.request.Request(
                url + "/v1/jobs",
                data=json.dumps({"problem": "p", "name": "one"}).encode(),
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            with urllib.request.urlopen(request, timeout=10.0) as response:
                serve_id = json.loads(response.read().decode())["id"]
            deadline = time.monotonic() + 30
            state = None
            while time.monotonic() < deadline:
                with urllib.request.urlopen(
                    f"{url}/v1/jobs/{serve_id}", timeout=10.0
                ) as response:
                    state = json.loads(response.read().decode())["state"]
                if state == "done":
                    break
                time.sleep(0.05)
            assert state == "done"
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=60) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
        records = [
            json.loads(line) for line in results.read_text().splitlines()
        ]
        assert [record["name"] for record in records] == ["one"]
        assert records[0]["state"] == "done"


class TestPostmortemCli:
    def _crash_batch(self, tmp_path, capsys):
        suite = tmp_path / "suite"
        suite.mkdir()
        (suite / "max2.sl").write_text(MAX2_SL)
        flights = tmp_path / "flights"
        code = main(["batch", str(suite), "--no-cache",
                     "--solver", "debug-exit@13", "--retries", "0",
                     "--timeout", "5", "--flight-dir", str(flights),
                     "--out", str(tmp_path / "results.jsonl")])
        capsys.readouterr()
        assert code == 1
        journals = sorted(flights.glob("*.flight.jsonl"))
        assert len(journals) == 1
        return journals[0]

    def test_renders_report_from_crashed_batch(self, tmp_path, capsys):
        journal = self._crash_batch(tmp_path, capsys)
        assert main(["postmortem", str(journal)]) == 0
        out = capsys.readouterr().out
        assert "post-mortem:" in out
        assert "job.start" in out
        assert "debug-exit@13" in out

    def test_json_flag_emits_payload(self, tmp_path, capsys):
        import json

        journal = self._crash_batch(tmp_path, capsys)
        assert main(["postmortem", "--json", str(journal)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["meta"]["name"] == "max2"
        assert payload["notes"]

    def test_missing_journal_errors(self, tmp_path, capsys):
        code = main(["postmortem", str(tmp_path / "absent.flight.jsonl")])
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestBenchCompareCli:
    def _write_artifacts(self, directory, walls):
        """Fake quick-bench artifacts: {name: wall or None (=unsolved)}."""
        import json

        directory.mkdir(parents=True, exist_ok=True)
        records = []
        for name, wall in walls.items():
            solved = wall is not None
            records.append({
                "benchmark": name, "solver": "dryadsynth", "solved": solved,
                "wall_seconds": wall if solved else 2.0, "smt_rounds": 4,
            })
        with open(directory / "quick_bench.jsonl", "w") as handle:
            for record in records:
                handle.write(json.dumps(record) + "\n")
        summary = {
            "solver": "dryadsynth", "timeout_seconds": 2.0,
            "problems": len(records),
            "solved": sum(1 for r in records if r["solved"]),
            "wall_seconds": sum(r["wall_seconds"] for r in records),
            "stats": {"smt_rounds": 4 * len(records)},
        }
        with open(directory / "quick_bench_summary.json", "w") as handle:
            json.dump(summary, handle)
        return directory

    def test_pass_append_then_seeded_regression_fails(self, tmp_path,
                                                      capsys):
        history = tmp_path / "history.jsonl"
        good = self._write_artifacts(
            tmp_path / "good", {"max2": 0.1, "sum3": 0.2}
        )
        assert main(["bench-compare", "--from-dir", str(good),
                     "--against", str(history), "--append"]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out
        assert history.exists()
        # Seeded synthetic regression: sum3 no longer solves.
        bad = self._write_artifacts(
            tmp_path / "bad", {"max2": 0.1, "sum3": None}
        )
        assert main(["bench-compare", "--from-dir", str(bad),
                     "--against", str(history)]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert "sum3" in out

    def _write_loadgen_report(self, path, p99):
        import json

        report = {
            "clients": 8, "requests": 16, "completed": 16, "shed": 0,
            "errors": 0, "cache_hits": 8, "rejected_retries": 0,
            "wall_seconds": 4.0,
            "latency": {"p50": p99 / 2, "p90": p99 * 0.9, "p99": p99},
            "solved": ["max2", "sum3"], "records": [],
        }
        with open(path, "w") as handle:
            json.dump(report, handle)
        return path

    def test_serve_latency_gate_from_loadgen_report(self, tmp_path, capsys):
        history = tmp_path / "history.jsonl"
        fast = self._write_loadgen_report(tmp_path / "fast.json", p99=0.5)
        assert main(["bench-compare", "--from-loadgen", str(fast),
                     "--against", str(history), "--append"]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out
        slow = self._write_loadgen_report(tmp_path / "slow.json", p99=2.0)
        assert main(["bench-compare", "--from-loadgen", str(slow),
                     "--against", str(history)]) == 1
        out = capsys.readouterr().out
        assert "latency" in out
        # A looser budget lets the same report pass.
        assert main(["bench-compare", "--from-loadgen", str(slow),
                     "--against", str(history),
                     "--max-latency-growth", "5.0"]) == 0

    def test_wall_regression_detected(self, tmp_path, capsys):
        history = tmp_path / "history.jsonl"
        fast = self._write_artifacts(
            tmp_path / "fast", {"max2": 0.1, "sum3": 0.2}
        )
        assert main(["bench-compare", "--from-dir", str(fast),
                     "--against", str(history), "--append"]) == 0
        slow = self._write_artifacts(
            tmp_path / "slow", {"max2": 0.2, "sum3": 0.4}
        )
        capsys.readouterr()
        assert main(["bench-compare", "--from-dir", str(slow),
                     "--against", str(history)]) == 1
        assert "median wall growth" in capsys.readouterr().out
        # A looser budget lets the same run through.
        assert main(["bench-compare", "--from-dir", str(slow),
                     "--against", str(history),
                     "--max-wall-growth", "1.5"]) == 0

    def test_record_out_artifact(self, tmp_path, capsys):
        import json

        good = self._write_artifacts(tmp_path / "good", {"max2": 0.1})
        record_path = tmp_path / "record.json"
        assert main(["bench-compare", "--from-dir", str(good),
                     "--against", str(tmp_path / "history.jsonl"),
                     "--record-out", str(record_path)]) == 0
        record = json.loads(record_path.read_text())
        assert record["format"] == "repro-bench-history/1"
        assert record["solved"] == ["max2"]

    def test_failed_run_is_not_appended(self, tmp_path, capsys):
        history = tmp_path / "history.jsonl"
        good = self._write_artifacts(
            tmp_path / "good", {"max2": 0.1, "sum3": 0.2}
        )
        assert main(["bench-compare", "--from-dir", str(good),
                     "--against", str(history), "--append"]) == 0
        size = history.stat().st_size
        bad = self._write_artifacts(tmp_path / "bad", {"max2": 0.1,
                                                       "sum3": None})
        assert main(["bench-compare", "--from-dir", str(bad),
                     "--against", str(history), "--append"]) == 1
        assert history.stat().st_size == size  # regression not recorded

    def test_missing_artifacts_error(self, tmp_path, capsys):
        code = main(["bench-compare", "--from-dir", str(tmp_path / "nope"),
                     "--against", str(tmp_path / "history.jsonl")])
        assert code == 2
        assert "error" in capsys.readouterr().err


@pytest.fixture(scope="module")
def two_span_dumps(tmp_path_factory):
    """Two span dumps of the same real problem (for diff/history CLIs)."""
    directory = tmp_path_factory.mktemp("dumps")
    path = directory / "max2.sl"
    path.write_text(MAX2_SL)
    dumps = []
    for label in ("a", "b"):
        dump = directory / f"run_{label}.jsonl"
        assert main([str(path), "--timeout", "5",
                     "--spans-out", str(dump)]) == 0
        dumps.append(str(dump))
    return dumps


class TestDiffCli:
    def test_diff_of_two_real_runs(self, two_span_dumps, capsys):
        run_a, run_b = two_span_dumps
        capsys.readouterr()
        assert main(["diff", run_a, run_b]) == 0
        out = capsys.readouterr().out
        assert "run diff:" in out
        assert "top node movers" in out
        assert "attribution check" in out

    def test_diff_json_partitions_exactly(self, two_span_dumps, capsys):
        import json

        run_a, run_b = two_span_dumps
        capsys.readouterr()
        assert main(["diff", run_a, run_b, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["format"] == "repro-run-diff/1"
        assert payload["attributed_delta"] == pytest.approx(
            payload["total_delta"], abs=1e-6  # both rounded to 6 places
        )

    def test_missing_file_errors(self, two_span_dumps, capsys):
        assert main(["diff", two_span_dumps[0], "/nope.jsonl"]) == 2
        assert "error" in capsys.readouterr().err


class TestHistoryCli:
    def test_from_spans_append_then_query(self, two_span_dumps, tmp_path,
                                          capsys):
        store = str(tmp_path / "analytics.jsonl")
        for dump in two_span_dumps:
            assert main(["history", "--store", store,
                         "--from-spans", dump, "--append"]) == 0
        out = capsys.readouterr().out
        assert "2 run record(s)" in out  # store-wide summary after append
        # Recover a real node id from the store and query it.
        from repro.bench.analytics import load_analytics

        node_id = next(iter(load_analytics(store)[0]["nodes"]))
        assert main(["history", node_id, "--store", store]) == 0
        out = capsys.readouterr().out
        assert "runs: 2" in out

    def test_unknown_node_exits_one(self, tmp_path, capsys):
        store = str(tmp_path / "analytics.jsonl")
        assert main(["history", "feedfeedfeed", "--store", store]) == 1
        assert "no analytics records" in capsys.readouterr().out

    def test_empty_store_summary(self, tmp_path, capsys):
        assert main(["history", "--store",
                     str(tmp_path / "absent.jsonl")]) == 0
        assert "empty" in capsys.readouterr().out


class TestBenchCompareExplain:
    _write_artifacts = TestBenchCompareCli._write_artifacts

    def test_forced_regression_names_the_slower_problems(self, tmp_path,
                                                         capsys):
        """Acceptance: a forced wall regression makes --explain name the
        genuinely-slower problems (and only those)."""
        history = tmp_path / "history.jsonl"
        fast = self._write_artifacts(
            tmp_path / "fast", {"max2": 0.1, "sum3": 0.2, "ite4": 0.3}
        )
        assert main(["bench-compare", "--from-dir", str(fast),
                     "--against", str(history), "--append"]) == 0
        capsys.readouterr()
        # Only sum3 and ite4 regress; max2 holds steady.
        slow = self._write_artifacts(
            tmp_path / "slow", {"max2": 0.1, "sum3": 0.5, "ite4": 0.6}
        )
        assert main(["bench-compare", "--from-dir", str(slow),
                     "--against", str(history), "--explain"]) == 1
        out = capsys.readouterr().out
        assert "regression attribution:" in out
        assert "sum3: 0.200s -> 0.500s" in out
        assert "ite4: 0.300s -> 0.600s" in out
        assert "max2:" not in out.split("regression attribution:")[1]
        # No span dump in the artifacts dir: the drill-down says how to
        # get one instead of failing.
        assert "no span dump available" in out

    def test_explain_silent_on_pass(self, tmp_path, capsys):
        history = tmp_path / "history.jsonl"
        good = self._write_artifacts(tmp_path / "good", {"max2": 0.1})
        assert main(["bench-compare", "--from-dir", str(good),
                     "--against", str(history), "--append",
                     "--explain"]) == 0
        assert main(["bench-compare", "--from-dir", str(good),
                     "--against", str(history), "--explain"]) == 0
        assert "regression attribution" not in capsys.readouterr().out

    def test_solved_set_loss_attributed(self, tmp_path, capsys):
        history = tmp_path / "history.jsonl"
        good = self._write_artifacts(
            tmp_path / "good", {"max2": 0.1, "sum3": 0.2}
        )
        assert main(["bench-compare", "--from-dir", str(good),
                     "--against", str(history), "--append"]) == 0
        bad = self._write_artifacts(
            tmp_path / "bad", {"max2": 0.1, "sum3": None}
        )
        capsys.readouterr()
        assert main(["bench-compare", "--from-dir", str(bad),
                     "--against", str(history), "--explain"]) == 1
        out = capsys.readouterr().out
        assert "solved-set loss (1): sum3" in out
