"""Tests for the dryadsynth command-line interface."""

import pytest

from repro.cli import build_arg_parser, main

MAX2_SL = """
(set-logic LIA)
(synth-fun max2 ((x Int) (y Int)) Int)
(declare-var x Int)
(declare-var y Int)
(constraint (>= (max2 x y) x))
(constraint (>= (max2 x y) y))
(constraint (or (= (max2 x y) x) (= (max2 x y) y)))
(check-synth)
"""


@pytest.fixture
def max2_file(tmp_path):
    path = tmp_path / "max2.sl"
    path.write_text(MAX2_SL)
    return str(path)


class TestArgParser:
    def test_defaults(self):
        args = build_arg_parser().parse_args(["problem.sl"])
        assert args.solver == "dryadsynth"
        assert args.timeout is None

    def test_solver_choices(self):
        args = build_arg_parser().parse_args(["--solver", "eusolver", "p.sl"])
        assert args.solver == "eusolver"
        with pytest.raises(SystemExit):
            build_arg_parser().parse_args(["--solver", "z3", "p.sl"])


class TestMain:
    def test_solves_and_prints_define_fun(self, max2_file, capsys):
        code = main([max2_file, "--timeout", "60"])
        out = capsys.readouterr().out
        assert code == 0
        assert out.startswith("(define-fun max2 ((x Int) (y Int)) Int")

    def test_missing_file_errors(self, capsys):
        code = main(["/nonexistent/problem.sl"])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_stats_flag(self, max2_file, capsys):
        code = main([max2_file, "--timeout", "60", "--stats"])
        assert code == 0
        err = capsys.readouterr().err
        assert "time=" in err

    def test_alternate_solver(self, max2_file, capsys):
        code = main([max2_file, "--solver", "cegqi", "--timeout", "30"])
        assert code == 0
        assert "(define-fun max2" in capsys.readouterr().out

    def test_solution_actually_verifies(self, max2_file, capsys):
        from repro.lang import evaluate
        from repro.sygus.parser import parse_sygus_text, parse_sygus_file

        code = main([max2_file, "--timeout", "60"])
        printed = capsys.readouterr().out.strip()
        assert code == 0
        # Re-parse the printed define-fun and check it is a real max.
        from repro.lang.sexpr import parse_sexpr

        sexpr = parse_sexpr(printed)
        assert sexpr[0] == "define-fun"


MULTI_SL = """
(set-logic LIA)
(synth-fun f ((x Int)) Int)
(synth-fun g ((x Int)) Int)
(declare-var x Int)
(constraint (= (f x) (+ x 2)))
(constraint (= (g x) (- x 2)))
(check-synth)
"""


class TestMultiFunctionCli:
    def test_multi_problem_prints_all_define_funs(self, tmp_path, capsys):
        path = tmp_path / "multi.sl"
        path.write_text(MULTI_SL)
        code = main([str(path), "--timeout", "60"])
        out = capsys.readouterr().out
        assert code == 0
        assert "(define-fun f ((x Int)) Int" in out
        assert "(define-fun g ((x Int)) Int" in out

    def test_trace_flag_prints_events(self, max2_file, capsys):
        code = main([max2_file, "--timeout", "60", "--trace"])
        assert code == 0
        err = capsys.readouterr().err
        assert "deduct" in err or "enum" in err
