"""Tests for the dryadsynth command-line interface."""

import pytest

from repro.cli import build_arg_parser, main

MAX2_SL = """
(set-logic LIA)
(synth-fun max2 ((x Int) (y Int)) Int)
(declare-var x Int)
(declare-var y Int)
(constraint (>= (max2 x y) x))
(constraint (>= (max2 x y) y))
(constraint (or (= (max2 x y) x) (= (max2 x y) y)))
(check-synth)
"""


@pytest.fixture
def max2_file(tmp_path):
    path = tmp_path / "max2.sl"
    path.write_text(MAX2_SL)
    return str(path)


class TestArgParser:
    def test_defaults(self):
        args = build_arg_parser().parse_args(["problem.sl"])
        assert args.solver == "dryadsynth"
        assert args.timeout is None

    def test_solver_choices(self):
        args = build_arg_parser().parse_args(["--solver", "eusolver", "p.sl"])
        assert args.solver == "eusolver"
        with pytest.raises(SystemExit):
            build_arg_parser().parse_args(["--solver", "z3", "p.sl"])


class TestMain:
    def test_solves_and_prints_define_fun(self, max2_file, capsys):
        code = main([max2_file, "--timeout", "60"])
        out = capsys.readouterr().out
        assert code == 0
        assert out.startswith("(define-fun max2 ((x Int) (y Int)) Int")

    def test_missing_file_errors(self, capsys):
        code = main(["/nonexistent/problem.sl"])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_stats_flag(self, max2_file, capsys):
        code = main([max2_file, "--timeout", "60", "--stats"])
        assert code == 0
        err = capsys.readouterr().err
        assert "time=" in err

    def test_alternate_solver(self, max2_file, capsys):
        code = main([max2_file, "--solver", "cegqi", "--timeout", "30"])
        assert code == 0
        assert "(define-fun max2" in capsys.readouterr().out

    def test_solution_actually_verifies(self, max2_file, capsys):
        from repro.lang import evaluate
        from repro.sygus.parser import parse_sygus_text, parse_sygus_file

        code = main([max2_file, "--timeout", "60"])
        printed = capsys.readouterr().out.strip()
        assert code == 0
        # Re-parse the printed define-fun and check it is a real max.
        from repro.lang.sexpr import parse_sexpr

        sexpr = parse_sexpr(printed)
        assert sexpr[0] == "define-fun"


MULTI_SL = """
(set-logic LIA)
(synth-fun f ((x Int)) Int)
(synth-fun g ((x Int)) Int)
(declare-var x Int)
(constraint (= (f x) (+ x 2)))
(constraint (= (g x) (- x 2)))
(check-synth)
"""


class TestMultiFunctionCli:
    def test_multi_problem_prints_all_define_funs(self, tmp_path, capsys):
        path = tmp_path / "multi.sl"
        path.write_text(MULTI_SL)
        code = main([str(path), "--timeout", "60"])
        out = capsys.readouterr().out
        assert code == 0
        assert "(define-fun f ((x Int)) Int" in out
        assert "(define-fun g ((x Int)) Int" in out

    def test_trace_flag_prints_events(self, max2_file, capsys):
        code = main([max2_file, "--timeout", "60", "--trace"])
        assert code == 0
        err = capsys.readouterr().err
        assert "deduct" in err or "enum" in err


class TestTraceJson:
    def test_trace_json_writes_round_trippable_file(self, max2_file, tmp_path):
        import json

        from repro.synth.trace import SynthesisTrace

        out = tmp_path / "trace.json"
        code = main([max2_file, "--timeout", "60", "--trace-json", str(out)])
        assert code == 0
        data = json.loads(out.read_text())
        assert data["format"] == "repro-trace/1"
        trace = SynthesisTrace.from_json(data)
        assert len(trace) > 0
        assert trace.of_kind("solved")


UNSAT_HEIGHT_SL = """
(set-logic LIA)
(synth-fun f ((a Int) (b Int) (c Int) (d Int)) Int)
(declare-var a Int)
(declare-var b Int)
(declare-var c Int)
(declare-var d Int)
(constraint (>= (f a b c d) a))
(constraint (>= (f a b c d) b))
(constraint (>= (f a b c d) c))
(constraint (>= (f a b c d) d))
(constraint (or (= (f a b c d) a) (= (f a b c d) b)
                (= (f a b c d) c) (= (f a b c d) d)))
(check-synth)
"""


class TestBatch:
    def _suite_dir(self, tmp_path):
        suite = tmp_path / "suite"
        suite.mkdir()
        (suite / "max2.sl").write_text(MAX2_SL)
        (suite / "multi.sl").write_text(MULTI_SL)
        return suite

    def _run(self, argv, capsys):
        code = main(["batch", "--no-cache"] + argv)
        captured = capsys.readouterr()
        import json

        records = [json.loads(line) for line in captured.out.splitlines()]
        return code, records, captured.err

    def test_serial_batch_over_directory(self, tmp_path, capsys):
        suite = self._suite_dir(tmp_path)
        code, records, err = self._run(
            [str(suite), "--timeout", "30"], capsys
        )
        assert code == 0
        assert sorted(r["name"] for r in records) == ["max2", "multi"]
        assert all(r["status"] == "solved" for r in records)
        assert "batch done: 2/2 solved" in err

    def test_parallel_matches_serial_outcomes(self, tmp_path, capsys):
        suite = self._suite_dir(tmp_path)
        code1, serial, _ = self._run(
            [str(suite), "--timeout", "30", "--jobs", "1"], capsys
        )
        code2, par, _ = self._run(
            [str(suite), "--timeout", "30", "--jobs", "2"], capsys
        )
        assert code1 == code2 == 0
        outcomes = lambda rs: {r["name"]: r["status"] for r in rs}
        assert outcomes(serial) == outcomes(par)

    def test_jsonl_written_to_out_file(self, tmp_path, capsys):
        import json

        suite = self._suite_dir(tmp_path)
        out = tmp_path / "results.jsonl"
        code = main(
            ["batch", "--no-cache", str(suite), "--timeout", "30",
             "--out", str(out)]
        )
        capsys.readouterr()
        assert code == 0
        lines = out.read_text().splitlines()
        assert len(lines) == 2
        assert all("fingerprint" in json.loads(line) for line in lines)

    def test_cache_reused_across_invocations(self, tmp_path, capsys):
        suite = self._suite_dir(tmp_path)
        cache = tmp_path / "cache"
        argv = ["batch", str(suite), "--timeout", "30", "--cache", str(cache)]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 0
        captured = capsys.readouterr()
        import json

        records = [json.loads(l) for l in captured.out.splitlines()]
        assert all(r["from_cache"] for r in records)
        assert "cache hits=2 misses=0" in captured.err

    def test_missing_path_errors(self, capsys):
        code = main(["batch", "/nonexistent/suite"])
        assert code == 2
        assert "error" in capsys.readouterr().err
