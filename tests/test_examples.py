"""Smoke tests for the runnable examples (the fast ones)."""

import os
import subprocess
import sys

import pytest

_REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _run(script: str, timeout: int = 120) -> str:
    result = subprocess.run(
        [sys.executable, os.path.join(_REPO, "examples", script)],
        capture_output=True,
        text=True,
        timeout=timeout,
        check=True,
    )
    return result.stdout


def test_quickstart_example():
    out = _run("quickstart.py")
    assert "(define-fun max2" in out
    assert "(define-fun max3" in out
    assert "verified: True" in out


def test_multi_function_example():
    out = _run("multi_function.py", timeout=240)
    assert "(define-fun next" in out
    assert "jointly verified: True" in out


def test_examples_exist_and_have_docstrings():
    for script in os.listdir(os.path.join(_REPO, "examples")):
        if not script.endswith(".py"):
            continue
        with open(os.path.join(_REPO, "examples", script)) as handle:
            source = handle.read()
        assert '"""' in source.split("\n", 2)[-1] or source.startswith(
            '#!'
        ), f"{script} needs a docstring"
