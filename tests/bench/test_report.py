"""Tests for the figure/table aggregation functions."""

from repro.bench.report import (
    bucket_size,
    bucket_time,
    fig10_solved_by_track,
    fig11_fastest_by_track,
    fig12_time_vs_solved,
    fig13_times_ascending,
    fig14_coop_vs_enum,
    fig15_deduction_ablation,
    fig16_euback_comparison,
    render_scatter,
    render_solved_by_track,
    render_table,
    table1_solution_sizes,
    unique_solves,
)
from repro.bench.runner import RunResult


def _r(bench, track, solver, solved, t, size=None, ded=False):
    return RunResult(bench, track, solver, solved, t, size, None, False, ded)


RESULTS = [
    _r("a", "CLIA", "dryadsynth", True, 0.5, 5, ded=True),
    _r("a", "CLIA", "eusolver", True, 2.0, 4),
    _r("a", "CLIA", "cegqi", True, 0.2, 40),
    _r("b", "CLIA", "dryadsynth", True, 5.0, 9),
    _r("b", "CLIA", "eusolver", False, 10.0),
    _r("b", "CLIA", "cegqi", True, 6.0, 80),
    _r("c", "INV", "dryadsynth", True, 1.5, 7),
    _r("c", "INV", "eusolver", False, 10.0),
    _r("c", "INV", "cegqi", False, 10.0),
    _r("a", "CLIA", "height-enum", True, 3.0, 5),
    _r("b", "CLIA", "height-enum", False, 10.0),
    _r("c", "INV", "height-enum", True, 4.0, 7),
    _r("a", "CLIA", "deduction", True, 0.1, 5, ded=True),
    _r("b", "CLIA", "deduction", False, 0.1),
    _r("c", "INV", "deduction", False, 0.1),
    _r("a", "CLIA", "dryadsynth-euback", True, 1.0, 5),
    _r("b", "CLIA", "dryadsynth-euback", False, 10.0),
    _r("c", "INV", "dryadsynth-euback", True, 3.0, 7),
]


class TestBuckets:
    def test_time_buckets_are_monotone(self):
        assert bucket_time(0.5) == 0
        assert bucket_time(1.5) == 1
        assert bucket_time(5) == 2
        assert bucket_time(2000) == 8

    def test_size_buckets(self):
        assert bucket_size(5) == 0
        assert bucket_size(10) == 1
        assert bucket_size(5000) == 5


class TestFig10:
    def test_counts(self):
        table = fig10_solved_by_track(RESULTS)
        assert table["dryadsynth"] == {"INV": 1, "CLIA": 2, "General": 0}
        assert table["eusolver"] == {"INV": 0, "CLIA": 1, "General": 0}

    def test_render(self):
        rendered = render_solved_by_track(fig10_solved_by_track(RESULTS), "t")
        assert "dryadsynth" in rendered and "total" in rendered


class TestFig11:
    def test_bucket_ties_shared(self):
        table = fig11_fastest_by_track(RESULTS)
        # On benchmark a: cegqi (0.2) and dryadsynth (0.5) share bucket 0.
        assert table["cegqi"]["CLIA"] >= 1
        assert table["dryadsynth"]["CLIA"] >= 1
        assert table["eusolver"]["CLIA"] == 0


class TestFig12Fig13:
    def test_cumulative_curve(self):
        curves = fig12_time_vs_solved(RESULTS, track="CLIA")
        assert curves["dryadsynth"] == [(1, 0.5), (2, 5.5)]

    def test_ascending_times(self):
        series = fig13_times_ascending(RESULTS, track="CLIA")
        assert series["dryadsynth"] == [0.5, 5.0]
        assert series["eusolver"] == [2.0]


class TestTable1:
    def test_smallest_and_median(self):
        table = table1_solution_sizes(RESULTS)
        clia = table["CLIA"]
        # Common benchmarks for all CLIA-solving solvers: only "a".
        assert clia["eusolver"]["smallest"] == 1  # size 4, bucket 0
        assert clia["cegqi"]["smallest"] == 0  # size 40, bucket 2
        assert clia["cegqi"]["median_size"] == 40


class TestAblations:
    def test_fig14_pairs(self):
        points = fig14_coop_vs_enum(RESULTS)
        by_name = {p[0]: p for p in points}
        assert by_name["b"] == ("b", 5.0, None)
        assert by_name["a"] == ("a", 0.5, 3.0)

    def test_fig15_counts(self):
        table = fig15_deduction_ablation(RESULTS)
        assert table["CLIA"] == {"deduct": 1, "coop_extra": 1}
        assert table["INV"] == {"deduct": 0, "coop_extra": 1}

    def test_fig16_excludes_deduction_solved(self):
        points = fig16_euback_comparison(RESULTS)
        names = [p[0] for p in points]
        assert "a" not in names  # solved by pure deduction
        assert set(names) == {"b", "c"}

    def test_unique_solves(self):
        uniques = unique_solves(RESULTS)
        assert uniques.get("dryadsynth") is None or "b" not in uniques.get(
            "dryadsynth", []
        )


class TestRendering:
    def test_render_table_alignment(self):
        out = render_table(["a", "bb"], [[1, 22], [333, 4]], "title")
        lines = out.splitlines()
        assert lines[0] == "title"
        assert all("|" in line for line in lines[1:] if "-" not in line)

    def test_render_scatter_winner_column(self):
        out = render_scatter(
            [("x", 1.0, 2.0), ("y", None, 3.0)], "coop", "enum", "t"
        )
        assert "coop" in out and "enum" in out
