"""Tests for the EXPERIMENTS.md generator."""

from repro.bench.make_report import generate_report
from repro.bench.runner import RunResult


def _r(bench, track, solver, solved, t, size=None, ded=False):
    return RunResult(bench, track, solver, solved, t, size, None, False, ded)


def _synthetic_results():
    results = []
    benches = [("b1", "CLIA"), ("b2", "CLIA"), ("b3", "INV"), ("b4", "General")]
    for bench, track in benches:
        results.append(_r(bench, track, "dryadsynth", True, 0.5, 6, ded=(bench == "b1")))
        results.append(_r(bench, track, "cegqi", bench != "b4", 0.3, 50))
        results.append(_r(bench, track, "eusolver", bench in ("b1", "b2"), 2.0, 4))
        results.append(_r(bench, track, "loopinvgen", track == "INV", 0.1, 8))
        results.append(_r(bench, track, "height-enum", bench != "b3", 1.0, 6))
        results.append(_r(bench, track, "deduction", bench == "b1", 0.01, 6, ded=True))
        results.append(_r(bench, track, "dryadsynth-euback", bench != "b3", 1.5, 6))
    return results


class TestGenerateReport:
    def test_contains_every_figure_section(self):
        text = generate_report(_synthetic_results(), timeout=10)
        for artifact in (
            "Figure 10",
            "Figure 11",
            "Figure 12",
            "Figure 13",
            "Table 1",
            "Figure 14",
            "Figure 15",
            "Figure 16",
            "Uniquely solved",
        ):
            assert artifact in text, f"missing section for {artifact}"

    def test_paper_claims_are_quoted(self):
        text = generate_report(_synthetic_results(), timeout=10)
        assert "32.6%" in text  # the Figure 15 deduction-share claim
        assert "StarExec" in text

    def test_counts_are_rendered(self):
        text = generate_report(_synthetic_results(), timeout=10)
        assert "dryadsynth" in text
        assert "solved=" in text or "solved " in text

    def test_empty_results_do_not_crash(self):
        text = generate_report([], timeout=10)
        assert "Figure 10" in text
