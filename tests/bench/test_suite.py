"""Tests for the benchmark suite definitions."""

from collections import Counter

import pytest

from repro.bench.suite import (
    Benchmark,
    clia_benchmarks,
    find_benchmark,
    full_suite,
    general_benchmarks,
    inv_benchmarks,
    suite_by_track,
)


class TestSuiteShape:
    def test_names_are_unique(self):
        names = [b.name for b in full_suite()]
        assert len(names) == len(set(names))

    def test_tracks_are_valid(self):
        assert set(b.track for b in full_suite()) == {"INV", "CLIA", "General"}

    def test_every_track_is_populated(self):
        by_track = suite_by_track()
        assert len(by_track["INV"]) >= 15
        assert len(by_track["CLIA"]) >= 15
        assert len(by_track["General"]) >= 10

    def test_difficulty_spread(self):
        difficulties = Counter(b.difficulty for b in full_suite())
        assert difficulties[1] >= 3, "need trivial benchmarks"
        assert any(d >= 4 for d in difficulties), "need hard benchmarks"

    def test_find_benchmark(self):
        bench = find_benchmark("max2")
        assert bench.track == "CLIA"
        with pytest.raises(KeyError):
            find_benchmark("nope")


class TestProblemConstruction:
    def test_all_problems_build(self):
        for bench in full_suite():
            problem = bench.problem()
            assert problem.spec is not None
            assert problem.track == bench.track

    def test_problems_rebuild_equal(self):
        bench = find_benchmark("max2")
        assert bench.problem().spec is bench.problem().spec

    def test_inv_benchmarks_have_invariant_payload(self):
        for bench in inv_benchmarks():
            assert bench.problem().invariant is not None

    def test_clia_benchmarks_use_full_grammar(self):
        from repro.synth.encoding import grammar_is_full_clia

        for bench in clia_benchmarks():
            assert grammar_is_full_clia(bench.problem().synth_fun.grammar)

    def test_general_benchmarks_use_custom_grammars(self):
        from repro.synth.encoding import grammar_is_full_clia

        for bench in general_benchmarks():
            assert not grammar_is_full_clia(bench.problem().synth_fun.grammar)


class TestKnownSolutions:
    """Ground-truth solutions verify, so the specs mean what they claim."""

    def test_max3_ground_truth(self):
        from repro.lang import ge, int_var, ite

        problem = find_benchmark("max3").problem()
        x0, x1, x2 = (int_var(f"x{i}") for i in range(3))
        max2 = ite(ge(x0, x1), x0, x1)
        ok, _ = problem.verify(ite(ge(max2, x2), max2, x2))
        assert ok

    def test_count_up_ground_truth(self):
        from repro.lang import and_, ge, int_var, le

        problem = find_benchmark("count-up-8").problem()
        x = int_var("x")
        ok, _ = problem.verify(and_(ge(x, 0), le(x, 8)))
        assert ok

    def test_qm_max2_ground_truth(self):
        from repro.lang import add, apply_fn, int_var, sub
        from repro.lang.sorts import INT

        problem = find_benchmark("qm-max2").problem()
        x, y = int_var("x"), int_var("y")
        body = add(x, apply_fn("qm", (sub(y, x), 0), INT))
        ok, _ = problem.verify(body)
        assert ok

    def test_array_search_2_ground_truth(self):
        from repro.lang import int_var, ite, lt

        problem = find_benchmark("array_search_2").problem()
        y1, y2, k = int_var("y1"), int_var("y2"), int_var("k")
        body = ite(lt(k, y1), 0, ite(lt(k, y2), 1, 2))
        ok, _ = problem.verify(body)
        assert ok


class TestPbeBenchmarks:
    def test_pbe_ground_truths_satisfy_their_examples(self):
        from repro.bench.suite import pbe_benchmarks
        from repro.lang import evaluate

        for bench in pbe_benchmarks():
            problem = bench.problem()
            # Every PBE spec conjunct must be satisfiable by *some* function;
            # sanity: the spec mentions only constant arguments.
            for invocation in problem.invocations():
                for arg in invocation.args:
                    assert arg.kind.value == "const"

    def test_pbe_specs_not_solved_by_deduction(self):
        from repro.bench.suite import find_benchmark
        from repro.synth.deduction import Deducer

        problem = find_benchmark("pbe-max2").problem()
        result = Deducer(problem).deduct()
        assert result.solution is None

    def test_pbe_solved_by_enumeration(self):
        from repro.bench.suite import find_benchmark
        from repro.synth import CooperativeSynthesizer, SynthConfig

        problem = find_benchmark("pbe-double").problem()
        outcome = CooperativeSynthesizer(SynthConfig(timeout=30)).synthesize(problem)
        assert outcome.solved
        ok, _ = problem.verify(outcome.solution.body)
        assert ok
