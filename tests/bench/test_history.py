"""Benchmark regression history and gating (repro.bench.history)."""

import json

from repro.bench.history import (
    HISTORY_FORMAT,
    append_history,
    compare,
    load_history,
    record_from_quick_bench,
    result_from_artifacts,
)


def make_record(per_problem, solver="dryadsynth", timeout=2.0):
    """A history record from {name: wall} (solved) / {name: None} (unsolved)."""
    problems = {
        name: {
            "solved": wall is not None,
            "wall": wall if wall is not None else 2.0,
            "smt_rounds": 5,
        }
        for name, wall in per_problem.items()
    }
    return {
        "format": HISTORY_FORMAT,
        "recorded_at": "2026-08-05T00:00:00Z",
        "solver": solver,
        "timeout_seconds": timeout,
        "problems": len(problems),
        "solved": sorted(n for n, e in problems.items() if e["solved"]),
        "wall_seconds": sum(e["wall"] for e in problems.values()),
        "smt_rounds": 5 * len(problems),
        "per_problem": problems,
    }


BASELINE = {"max2": 0.1, "sum3": 0.2, "ite4": 0.4}


class TestRecordFromQuickBench:
    def test_shape(self):
        result = {
            "records": [
                {"benchmark": "max2", "solved": True, "wall_seconds": 0.123,
                 "smt_rounds": 7},
                {"benchmark": "hard", "solved": False, "wall_seconds": 2.0,
                 "smt_rounds": 90},
            ],
            "summary": {
                "solver": "dryadsynth", "timeout_seconds": 2.0,
                "problems": 2, "solved": 1, "wall_seconds": 2.12,
                "stats": {"smt_rounds": 97},
            },
        }
        record = record_from_quick_bench(result, context={"ci": True})
        assert record["format"] == HISTORY_FORMAT
        assert record["solved"] == ["max2"]
        assert record["per_problem"]["hard"]["solved"] is False
        assert record["smt_rounds"] == 97
        assert record["context"] == {"ci": True}
        assert record["recorded_at"].endswith("Z")
        json.dumps(record)  # must be JSONL-serializable as-is


class TestHistoryStore:
    def test_append_load_round_trip(self, tmp_path):
        path = str(tmp_path / "history.jsonl")
        first = make_record(BASELINE)
        second = make_record({**BASELINE, "new1": 0.3})
        append_history(path, first)
        append_history(path, second)
        loaded = load_history(path)
        assert [r["solved"] for r in loaded] == [
            first["solved"], second["solved"],
        ]

    def test_missing_file_is_empty_history(self, tmp_path):
        assert load_history(str(tmp_path / "absent.jsonl")) == []

    def test_torn_final_line_tolerated(self, tmp_path):
        path = tmp_path / "history.jsonl"
        append_history(str(path), make_record(BASELINE))
        with open(path, "a") as handle:
            handle.write('{"format": "repro-bench-history/1", "sol')
        loaded = load_history(str(path))
        assert len(loaded) == 1

    def test_foreign_records_skipped(self, tmp_path):
        path = tmp_path / "history.jsonl"
        path.write_text('{"format": "something-else/9"}\n')
        assert load_history(str(path)) == []

    def test_tail_torn_inside_multibyte_char_tolerated(self, tmp_path):
        # An append killed mid-write can cut a multi-byte UTF-8 character
        # in half; a text-mode read dies on the decode before any line
        # parsing, losing the whole store.  The torn tail must be dropped
        # like any other truncated final line.
        path = tmp_path / "history.jsonl"
        append_history(str(path), make_record(BASELINE))
        torn = '{"format": "repro-bench-history/1", "note": "café"}\n'
        encoded = torn.encode("utf-8")
        cut = encoded.rindex(b"\xc3\xa9") + 1  # stop mid-é
        with open(path, "ab") as handle:
            handle.write(encoded[:cut])
        loaded = load_history(str(path))
        assert len(loaded) == 1
        assert loaded[0]["solved"] == make_record(BASELINE)["solved"]

    def test_corrupt_interior_line_raises(self, tmp_path):
        # A bad line *before* intact records means the store is damaged,
        # not merely unfinished — that must stay loud.
        import json as json_mod

        import pytest

        path = tmp_path / "history.jsonl"
        append_history(str(path), make_record(BASELINE))
        with open(path, "a") as handle:
            handle.write('{"format": "repro-bench-history/1", "sol\n')
        append_history(str(path), make_record(BASELINE))
        with pytest.raises(json_mod.JSONDecodeError):
            load_history(str(path))


class TestCompare:
    def test_no_history_passes_with_note(self):
        comparison = compare(make_record(BASELINE), [])
        assert comparison.ok
        assert comparison.baseline_runs == 0
        assert any("no comparable history" in n for n in comparison.notes)

    def test_identical_run_passes(self):
        history = [make_record(BASELINE)]
        comparison = compare(make_record(BASELINE), history)
        assert comparison.ok
        assert comparison.missing == []
        assert comparison.wall_growth == 0.0

    def test_solved_set_shrink_is_a_regression(self):
        history = [make_record(BASELINE), make_record(BASELINE)]
        current = make_record({**BASELINE, "sum3": None})
        comparison = compare(current, history)
        assert not comparison.ok
        assert comparison.missing == ["sum3"]
        assert "solved-set shrink" in comparison.regressions[0]
        assert "sum3" in comparison.render()

    def test_flaky_baseline_solve_does_not_gate(self):
        # "ite4" solved in only one of the trailing runs: it is not part of
        # the intersection baseline, so missing it now is not a regression.
        history = [
            make_record(BASELINE),
            make_record({**BASELINE, "ite4": None}),
        ]
        comparison = compare(make_record({**BASELINE, "ite4": None}), history)
        assert comparison.ok

    def test_wall_growth_beyond_budget_is_a_regression(self):
        history = [make_record(BASELINE)]
        slower = make_record({k: v * 1.5 for k, v in BASELINE.items()})
        comparison = compare(slower, history)
        assert not comparison.ok
        assert comparison.wall_growth is not None
        assert comparison.wall_growth > 0.15
        assert "median wall growth" in comparison.regressions[0]

    def test_top_growers_reported_even_on_pass(self):
        # Satellite: a passing-but-drifting run still names its top-3
        # per-problem wall growers, so drift stays visible before it gates.
        history = [make_record(BASELINE)]
        slightly = make_record(
            {"max2": 0.105, "sum3": 0.225, "ite4": 0.41}
        )
        comparison = compare(slightly, history)
        assert comparison.ok
        assert [g[0] for g in comparison.top_growers] == [
            "sum3", "ite4", "max2",
        ]
        rendered = comparison.render()
        assert "per-problem wall growth (top 3)" in rendered
        assert "sum3 +0.025s" in rendered

    def test_top_growers_capped_at_three(self):
        baseline = {"p1": 0.1, "p2": 0.1, "p3": 0.1, "p4": 0.1}
        history = [make_record(baseline)]
        current = make_record(
            {"p1": 0.12, "p2": 0.16, "p3": 0.14, "p4": 0.18}
        )
        comparison = compare(current, history)
        assert [g[0] for g in comparison.top_growers] == ["p4", "p2", "p3"]

    def test_wall_growth_within_budget_passes(self):
        history = [make_record(BASELINE)]
        slightly = make_record({k: v * 1.1 for k, v in BASELINE.items()})
        comparison = compare(slightly, history)
        assert comparison.ok
        assert 0.05 < comparison.wall_growth < 0.15

    def test_noise_floor_skips_the_wall_gate(self):
        tiny = {"max2": 0.001, "sum3": 0.002, "ite4": 0.003}
        history = [make_record(tiny)]
        doubled = make_record({k: v * 2 for k, v in tiny.items()})
        comparison = compare(doubled, history)
        assert comparison.ok
        assert any("noise floor" in n for n in comparison.notes)

    def test_different_solver_or_budget_excluded(self):
        history = [
            make_record(BASELINE, solver="eusolver"),
            make_record(BASELINE, timeout=10.0),
        ]
        comparison = compare(make_record(BASELINE), history)
        assert comparison.ok
        assert comparison.baseline_runs == 0
        assert any("excluded" in n for n in comparison.notes)

    def test_window_limits_the_baseline(self):
        old = make_record({**BASELINE, "legacy": 0.1})
        recent = [make_record(BASELINE) for _ in range(5)]
        comparison = compare(make_record(BASELINE), [old] + recent, window=5)
        # "legacy" was solved only in the record outside the window.
        assert comparison.ok
        assert comparison.baseline_runs == 5

    def test_new_solves_reported_not_gated(self):
        history = [make_record(BASELINE)]
        better = make_record({**BASELINE, "new1": 0.2})
        comparison = compare(better, history)
        assert comparison.ok
        assert comparison.new_solves == ["new1"]
        assert "newly solved" in comparison.render()

    def test_median_is_per_problem_not_total(self):
        # One problem 3x slower but the median pair unchanged: no regression
        # (total wall would have tripped a naive gate).
        history = [make_record({"a": 0.1, "b": 0.1, "c": 0.1, "d": 10.0})]
        current = make_record({"a": 0.1, "b": 0.1, "c": 0.1, "d": 30.0})
        comparison = compare(current, history)
        assert comparison.ok


class TestArtifacts:
    def test_result_from_artifacts_round_trip(self, tmp_path):
        records = [
            {"benchmark": "max2", "solved": True, "wall_seconds": 0.1,
             "smt_rounds": 3},
        ]
        summary = {
            "solver": "dryadsynth", "timeout_seconds": 2.0, "problems": 1,
            "solved": 1, "wall_seconds": 0.1, "stats": {"smt_rounds": 3},
        }
        with open(tmp_path / "quick_bench.jsonl", "w") as handle:
            for record in records:
                handle.write(json.dumps(record) + "\n")
        with open(tmp_path / "quick_bench_summary.json", "w") as handle:
            json.dump(summary, handle)
        result = result_from_artifacts(str(tmp_path))
        record = record_from_quick_bench(result)
        assert record["solved"] == ["max2"]
        assert record["per_problem"]["max2"]["wall"] == 0.1


def make_loadgen_report(p50=0.1, p99=0.5, solved=("max2", "sum3")):
    return {
        "clients": 8,
        "requests": 16,
        "completed": 16,
        "shed": 0,
        "errors": 0,
        "cache_hits": 8,
        "rejected_retries": 2,
        "wall_seconds": 4.0,
        "latency": {"p50": p50, "p90": p99 * 0.8, "p99": p99},
        "solved": sorted(solved),
        "records": [],
    }


def make_serve_record(p99=0.5, solver="dryadsynth", timeout=2.0,
                      solved=("max2", "sum3")):
    from repro.bench.history import record_from_loadgen

    return record_from_loadgen(
        make_loadgen_report(p99=p99, solved=solved), solver=solver,
        timeout=timeout,
    )


class TestServeRecords:
    def test_record_from_loadgen_shape(self):
        record = make_serve_record(p99=0.42)
        assert record["format"] == HISTORY_FORMAT
        assert record["mode"] == "serve"
        assert record["serve_latency"]["p99"] == 0.42
        assert record["serve_latency"]["clients"] == 8
        assert record["solved"] == ["max2", "sum3"]

    def test_serve_records_round_trip_through_store(self, tmp_path):
        path = str(tmp_path / "history.jsonl")
        append_history(path, make_serve_record())
        loaded = load_history(path)
        assert len(loaded) == 1
        assert loaded[0]["mode"] == "serve"


class TestLatencyGate:
    def test_serve_and_batch_records_never_cross_compare(self):
        # A serve record gates only against serve history: the batch
        # record is excluded, leaving no comparable baseline.
        history = [make_record(BASELINE)]
        comparison = compare(make_serve_record(), history)
        assert comparison.ok
        assert comparison.baseline_runs == 0

    def test_latency_within_budget_passes(self):
        history = [make_serve_record(p99=0.5)]
        comparison = compare(make_serve_record(p99=0.6), history)
        assert comparison.ok
        assert comparison.latency_p99_baseline == 0.5
        assert comparison.latency_p99_current == 0.6
        assert comparison.latency_growth is not None

    def test_latency_regression_fails(self):
        history = [make_serve_record(p99=0.5)]
        comparison = compare(make_serve_record(p99=1.0), history)
        assert not comparison.ok
        assert any("latency" in r for r in comparison.regressions)
        assert "p99 submit-to-result latency" in comparison.render()

    def test_latency_budget_is_configurable(self):
        history = [make_serve_record(p99=0.5)]
        comparison = compare(make_serve_record(p99=1.0), history,
                             max_latency_growth=2.0)
        assert comparison.ok

    def test_baseline_is_median_of_trailing_p99s(self):
        history = [make_serve_record(p99=p) for p in (0.4, 0.5, 10.0)]
        comparison = compare(make_serve_record(p99=0.6), history)
        assert comparison.latency_p99_baseline == 0.5
        assert comparison.ok

    def test_noise_floor_skips_gate(self):
        history = [make_serve_record(p99=0.001)]
        comparison = compare(make_serve_record(p99=0.04), history)
        assert comparison.ok
        assert any("noise floor" in note for note in comparison.notes)

    def test_solved_set_gate_applies_to_serve_records(self):
        history = [make_serve_record(solved=("max2", "sum3"))]
        comparison = compare(make_serve_record(solved=("max2",)), history)
        assert not comparison.ok
        assert comparison.missing == ["sum3"]
