"""The solver-only corpus benchmark: history records, gating, CLI."""

import json

from repro.bench import history as bench_history
from repro.cli import main
from repro.lang import add, and_, ge, int_var, le
from repro.smt import SmtSolver, capture

x, y = int_var("x"), int_var("y")


def _smt_bench_report(**overrides):
    report = {
        "queries": 40,
        "files": 4,
        "skipped": 1,
        "divergences": 0,
        "replayed_wall": 2.0,
        "latency": {"p50": 0.01, "p90": 0.05, "p99": 0.2},
        "memo": {"hits": 12, "misses": 28},
    }
    report.update(overrides)
    return report


def _record(**overrides):
    return bench_history.record_from_smt_bench(_smt_bench_report(**overrides))


class TestSmtBenchRecord:
    def test_shape(self):
        record = _record()
        assert record["mode"] == "smt-bench"
        assert record["solver"] == "smt-core"
        assert record["solved"] == []
        assert record["wall_seconds"] == 2.0
        assert record["smt_bench"]["memo"] == {"hits": 12, "misses": 28}
        assert record["format"] == bench_history.HISTORY_FORMAT

    def test_round_trip_through_store(self, tmp_path):
        path = str(tmp_path / "history.jsonl")
        bench_history.append_history(path, _record())
        loaded = bench_history.load_history(path)
        assert len(loaded) == 1
        assert loaded[0]["mode"] == "smt-bench"


class TestSmtBenchGate:
    def test_identical_run_passes(self):
        comparison = bench_history.compare(_record(), [_record()])
        assert comparison.ok
        assert comparison.smt_wall_growth == 0.0

    def test_wall_growth_beyond_budget_is_a_regression(self):
        comparison = bench_history.compare(
            _record(replayed_wall=3.0), [_record()], max_wall_growth=0.15
        )
        assert not comparison.ok
        assert any("replay wall growth" in r for r in comparison.regressions)

    def test_divergences_are_a_regression(self):
        comparison = bench_history.compare(
            _record(divergences=2), [_record()]
        )
        assert not comparison.ok
        assert any("diverged" in r for r in comparison.regressions)

    def test_different_corpus_size_excluded_from_wall_gate(self):
        comparison = bench_history.compare(
            _record(queries=80, replayed_wall=4.0), [_record()]
        )
        assert comparison.ok
        assert comparison.smt_wall_baseline is None
        assert any("different corpus size" in n for n in comparison.notes)

    def test_never_gates_against_quick_bench_records(self):
        batch = {
            "format": bench_history.HISTORY_FORMAT,
            "solver": "dryadsynth",
            "timeout_seconds": 2.0,
            "solved": ["a"],
            "per_problem": {"a": {"solved": True, "wall": 0.5}},
        }
        comparison = bench_history.compare(_record(), [batch])
        assert comparison.ok
        assert comparison.baseline_runs == 0


def _write_corpus(directory):
    """Capture a tiny real corpus: two solves, one repeated across files."""
    with capture.capturing(str(directory), "alpha"):
        solver = SmtSolver()
        solver.add(and_(ge(add(x, y), 5), le(x, 3), le(y, 4)))
        assert solver.solve().model is not None
    with capture.capturing(str(directory), "beta"):
        solver = SmtSolver()
        solver.add(and_(ge(add(x, y), 5), le(x, 3), le(y, 4)))
        solver.solve()
        solver.add(ge(x, 100))
        solver.solve()


class TestSmtBenchCli:
    def test_replays_records_and_appends(self, tmp_path, capsys):
        corpus = tmp_path / "corpus"
        corpus.mkdir()
        _write_corpus(corpus)
        history = tmp_path / "history.jsonl"
        jsonl = tmp_path / "per_file.jsonl"
        record_out = tmp_path / "record.json"
        code = main([
            "smt-bench",
            str(corpus),
            "--against", str(history),
            "--append",
            "--jsonl", str(jsonl),
            "--record-out", str(record_out),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "zero divergences" in out
        assert "query memo: enabled" in out
        # The beta file repeats alpha's query: the shared memo must hit.
        assert "hits=0" not in out

        rows = [
            json.loads(line)
            for line in jsonl.read_text().splitlines()
            if line
        ]
        assert len(rows) == 2
        assert sum(r["queries"] for r in rows) == 3
        assert sum(r["memo_hits"] for r in rows) >= 1

        record = json.loads(record_out.read_text())
        assert record["mode"] == "smt-bench"
        assert record["smt_bench"]["divergences"] == 0

        appended = bench_history.load_history(str(history))
        assert len(appended) == 1

        # Second run gates against the appended record and still passes
        # (identical workload; generous growth budget absorbs jitter).
        code = main([
            "smt-bench",
            str(corpus),
            "--against", str(history),
            "--max-wall-growth", "25.0",
        ])
        assert code == 0
        assert "baseline: trailing 1 run(s)" in capsys.readouterr().out

    def test_no_memo_flag(self, tmp_path, capsys):
        corpus = tmp_path / "corpus"
        corpus.mkdir()
        _write_corpus(corpus)
        code = main([
            "smt-bench", str(corpus),
            "--against", str(tmp_path / "history.jsonl"),
            "--no-memo",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "query memo: disabled" in out
        assert "hits=0 misses=0" in out

    def test_missing_corpus_is_usage_error(self, tmp_path, capsys):
        code = main(["smt-bench", str(tmp_path / "nope")])
        assert code == 2
