"""Tests for the portfolio runner and its result cache."""

import os

from repro.bench.runner import (
    ResultsCache,
    RunResult,
    SOLVER_NAMES,
    make_solver,
    run_benchmark,
    run_suite,
)
from repro.bench.suite import find_benchmark


class TestMakeSolver:
    def test_all_names_construct(self):
        for name in SOLVER_NAMES:
            solver = make_solver(name, timeout=1)
            assert hasattr(solver, "synthesize")

    def test_unknown_name_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            make_solver("z3", timeout=1)


class TestRunBenchmark:
    def test_easy_benchmark_solved(self):
        result = run_benchmark(find_benchmark("linear-comb"), "dryadsynth", 20)
        assert result.solved
        assert result.solution_size is not None
        assert result.track == "CLIA"

    def test_deduction_only_on_trivial(self):
        result = run_benchmark(find_benchmark("count-up-8"), "deduction", 20)
        assert result.solved
        assert result.deduction_solved

    def test_timeout_is_recorded(self):
        result = run_benchmark(find_benchmark("qm-max3"), "eusolver", 1)
        assert not result.solved

    def test_json_round_trip(self):
        result = RunResult("b", "CLIA", "s", True, 1.5, 7, 3, False, True)
        assert RunResult.from_json(result.to_json()) == result


class TestResultsCache:
    def test_put_get_save_load(self, tmp_path):
        path = os.path.join(tmp_path, "cache.json")
        cache = ResultsCache(path)
        bench = find_benchmark("abs")
        assert cache.get(bench, "dryadsynth", 5) is None
        result = RunResult("abs", "CLIA", "dryadsynth", True, 0.3, 5, 3)
        cache.put(result, 5)
        cache.save()
        reloaded = ResultsCache(path)
        cached = reloaded.get(bench, "dryadsynth", 5)
        assert cached == result

    def test_distinct_timeouts_are_distinct_entries(self, tmp_path):
        path = os.path.join(tmp_path, "cache.json")
        cache = ResultsCache(path)
        bench = find_benchmark("abs")
        cache.put(RunResult("abs", "CLIA", "x", True, 0.3), 5)
        assert cache.get(bench, "x", 10) is None

    def test_corrupt_cache_tolerated(self, tmp_path):
        path = os.path.join(tmp_path, "cache.json")
        with open(path, "w") as f:
            f.write("{ not json")
        cache = ResultsCache(path)
        assert cache.get(find_benchmark("abs"), "x", 5) is None


class TestRunSuite:
    def test_small_portfolio_run(self, tmp_path):
        path = os.path.join(tmp_path, "cache.json")
        benchmarks = [find_benchmark("linear-comb"), find_benchmark("count-up-8")]
        results = run_suite(
            benchmarks,
            solvers=("dryadsynth", "deduction"),
            timeout=20,
            cache=ResultsCache(path),
        )
        assert len(results) == 4
        dryadsynth = [r for r in results if r.solver == "dryadsynth"]
        assert all(r.solved for r in dryadsynth)
        # Second run hits the cache (no new work): identical results.
        again = run_suite(
            benchmarks,
            solvers=("dryadsynth", "deduction"),
            timeout=20,
            cache=ResultsCache(path),
        )
        assert [r.to_json() for r in again] == [r.to_json() for r in results]

    def test_parallel_jobs_match_serial_outcomes(self, tmp_path):
        benchmarks = [find_benchmark("linear-comb"), find_benchmark("count-up-8")]
        serial = run_suite(
            benchmarks,
            solvers=("dryadsynth",),
            timeout=20,
            cache=ResultsCache(os.path.join(tmp_path, "c1.json")),
        )
        parallel = run_suite(
            benchmarks,
            solvers=("dryadsynth",),
            timeout=20,
            cache=ResultsCache(os.path.join(tmp_path, "c2.json")),
            jobs=2,
        )
        assert [(r.benchmark, r.solver, r.solved) for r in serial] == [
            (r.benchmark, r.solver, r.solved) for r in parallel
        ]

    def test_parallel_run_populates_legacy_cache(self, tmp_path):
        path = os.path.join(tmp_path, "cache.json")
        benchmarks = [find_benchmark("linear-comb")]
        run_suite(
            benchmarks,
            solvers=("dryadsynth",),
            timeout=20,
            cache=ResultsCache(path),
            jobs=2,
        )
        reloaded = ResultsCache(path)
        assert reloaded.get(benchmarks[0], "dryadsynth", 20) is not None


class TestEubackSoundness:
    def test_euback_only_returns_verified_solutions(self):
        """Regression: the EUSolver-backed engine once returned candidates
        that were merely consistent with the collected examples; solutions
        must verify against the full specification."""
        from repro.bench.runner import _euback_engine, make_solver
        from repro.bench.suite import find_benchmark

        bench = find_benchmark("array_search_2")
        problem = bench.problem()
        solver = make_solver("dryadsynth-euback", timeout=15)
        outcome = solver.synthesize(problem)
        if outcome.solution is not None:
            ok, _ = problem.verify(outcome.solution.body)
            assert ok, "euback must never return an unverified candidate"

    def test_euback_engine_verifies_directly(self):
        from repro.bench.runner import _euback_engine
        from repro.bench.suite import find_benchmark
        from repro.synth.config import SynthConfig
        from repro.synth.result import SynthesisStats

        bench = find_benchmark("abs")
        problem = bench.problem()
        body = _euback_engine(
            problem, 2, [], SynthConfig(timeout=15), None, SynthesisStats()
        )
        if body is not None:
            ok, _ = problem.verify(body)
            assert ok
