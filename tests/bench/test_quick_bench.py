"""The quick-bench smoke harness (the CI perf-visibility artifact)."""

import json

from repro.bench import quick_bench
from repro.bench.quick_bench import EXCLUDED, demo_subset, main, run_quick_bench


class TestDemoSubset:
    def test_demo_subset_is_85_problems(self):
        subset = demo_subset()
        assert len(subset) == 85
        names = {b.name for b in subset}
        assert names.isdisjoint(EXCLUDED)


class TestRunQuickBench:
    def test_records_and_summary(self, monkeypatch):
        from repro.bench.suite import full_suite

        small = [b for b in full_suite() if b.name.startswith("count-up")][:2]
        monkeypatch.setattr(quick_bench, "demo_subset", lambda: small)
        result = run_quick_bench("dryadsynth", timeout=10.0)
        assert len(result["records"]) == 2
        for record in result["records"]:
            assert record["solved"] is True
            assert record["smt_rounds"] >= 0
            assert "assumption_core_skips" in record
        summary = result["summary"]
        assert summary["solved"] == 2
        assert summary["stats"]["smt_rounds"] == sum(
            r["smt_rounds"] for r in result["records"]
        )

    def test_main_writes_artifacts(self, monkeypatch, tmp_path):
        from repro.bench.suite import full_suite

        small = [b for b in full_suite() if b.name.startswith("count-up")][:1]
        monkeypatch.setattr(quick_bench, "demo_subset", lambda: small)
        out = tmp_path / "artifacts"
        assert main(["--timeout", "10", "--out", str(out)]) == 0
        lines = (out / "quick_bench.jsonl").read_text().splitlines()
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record["solver"] == "dryadsynth"
        summary = json.loads((out / "quick_bench_summary.json").read_text())
        assert summary["problems"] == 1
