"""Per-node analytics store (repro.bench.analytics / dryadsynth history)."""

import json

import pytest

from repro import obs
from repro.bench.analytics import (
    ANALYTICS_FORMAT,
    aggregate_node,
    append_analytics,
    attribute_regression,
    load_analytics,
    query_node,
    record_from_run,
    render_node_history,
    render_store_summary,
)
from repro.bench.runner import make_solver
from repro.sygus.parser import parse_sygus_text

from tests.obs.test_forensics import MAX2


@pytest.fixture(scope="module")
def max2_recorder():
    problem = parse_sygus_text(MAX2, "max2")
    solver = make_solver("dryadsynth", 5.0)
    with obs.recording() as recorder:
        outcome = solver.synthesize(problem)
    assert outcome.solution is not None
    return recorder


@pytest.fixture(scope="module")
def max2_record(max2_recorder):
    return record_from_run(max2_recorder.spans, max2_recorder.events)


class TestRecordFromRun:
    def test_shape_and_solver_inference(self, max2_record):
        record = max2_record
        assert record["format"] == ANALYTICS_FORMAT
        assert record["solver"] == "dryadsynth"  # from the root synth span
        assert record["recorded_at"].endswith("Z")
        assert record["nodes"]
        json.dumps(record)  # must be JSONL-serializable as-is

    def test_node_entries_carry_the_forensics_cut(self, max2_record):
        entries = list(max2_record["nodes"].values())
        source = next(e for e in entries if e["fun"] == "max2")
        assert source["outcome"] == "direct"
        assert source["self_wall"] > 0
        assert source["smt_rounds"] > 0
        # The Figure 7/8 rules the deductive pass fired on max2.
        assert set(source["rules"]) & {"ge-max", "ge-min", "le-max", "eq"}
        for tally in source["rules"].values():
            assert len(tally) == 2  # [fired, failed]
        assert source["problems"] == ["max2"]

    def test_explicit_solver_and_context_win(self, max2_recorder):
        record = record_from_run(
            max2_recorder.spans,
            max2_recorder.events,
            solver="custom",
            timeout=3.0,
            context={"suite": "test"},
        )
        assert record["solver"] == "custom"
        assert record["timeout_seconds"] == 3.0
        assert record["context"] == {"suite": "test"}


class TestStore:
    def test_append_load_round_trip(self, tmp_path, max2_record):
        path = str(tmp_path / "analytics.jsonl")
        append_analytics(path, max2_record)
        append_analytics(path, max2_record)
        loaded = load_analytics(path)
        assert len(loaded) == 2
        assert loaded[0]["nodes"].keys() == max2_record["nodes"].keys()

    def test_missing_file_is_empty_store(self, tmp_path):
        assert load_analytics(str(tmp_path / "absent.jsonl")) == []

    def test_torn_final_line_tolerated(self, tmp_path, max2_record):
        path = str(tmp_path / "analytics.jsonl")
        append_analytics(path, max2_record)
        with open(path, "a") as handle:
            handle.write('{"format": "repro-node-analytics/1", "nod')
        assert len(load_analytics(path)) == 1

    def test_foreign_records_skipped(self, tmp_path):
        path = tmp_path / "analytics.jsonl"
        path.write_text('{"format": "repro-bench-history/1"}\n')
        assert load_analytics(str(path)) == []


class TestQueryAndAggregate:
    def test_query_node_across_runs(self, max2_record):
        node_id = next(iter(max2_record["nodes"]))
        rows = query_node([max2_record, max2_record], node_id)
        assert len(rows) == 2
        assert query_node([max2_record], "nope") == []

    def test_aggregate_merges_outcomes_and_rules(self, max2_record):
        node_id = next(
            n for n, e in max2_record["nodes"].items() if e["fun"] == "max2"
        )
        rows = query_node([max2_record, max2_record], node_id)
        summary = aggregate_node(rows)
        assert summary["runs"] == 2
        assert summary["solved_runs"] == 2
        assert summary["outcomes"] == {"direct": 2}
        entry = max2_record["nodes"][node_id]
        for rule, tally in entry["rules"].items():
            assert summary["rules"][rule] == [tally[0] * 2, tally[1] * 2]
        assert summary["mean_self_wall"] == pytest.approx(
            entry["self_wall"], abs=1e-6
        )

    def test_render_node_history_mentions_runs_and_rules(self, max2_record):
        node_id = next(
            n for n, e in max2_record["nodes"].items() if e["fun"] == "max2"
        )
        rows = query_node([max2_record], node_id)
        text = render_node_history(node_id, rows)
        assert "runs: 1" in text
        assert "rules (fired/failed)" in text
        assert node_id in text
        assert render_node_history("nope", []) == (
            "nope: no analytics records"
        )

    def test_render_store_summary_ranks_by_wall(self, max2_record):
        text = render_store_summary([max2_record, max2_record])
        assert "2 run record(s)" in text
        assert "max2" in text
        assert render_store_summary([]) == "analytics store is empty"


class TestAttributeRegression:
    def _comparison(self, missing=(), growers=()):
        from repro.bench.history import Comparison

        comparison = Comparison()
        comparison.missing = list(missing)
        comparison.top_growers = list(growers)
        return comparison

    def test_names_missing_and_growers_without_spans(self):
        comparison = self._comparison(
            missing=["lost1"], growers=[("slow1", 0.1, 0.9)]
        )
        text = attribute_regression(comparison, {"per_problem": {}})
        assert "solved-set loss" in text
        assert "lost1" in text
        assert "slow1: 0.100s -> 0.900s" in text
        assert "no span dump available" in text

    def test_no_culprits_degrades_gracefully(self):
        text = attribute_regression(self._comparison(), {})
        assert "no per-problem deltas" in text

    def test_drills_into_spans_when_available(self, max2_recorder):
        comparison = self._comparison(growers=[("max2", 0.01, 0.5)])
        record = {"per_problem": {"max2": {"solved": True}}}
        text = attribute_regression(
            comparison,
            record,
            spans=max2_recorder.spans,
            events=max2_recorder.events,
        )
        assert "phase/node attribution" in text
        assert "max2: wall" in text
        assert "node " in text
