"""Tests for the ASCII plot renderers."""

from repro.bench.plots import cactus_plot, scatter_plot


class TestCactusPlot:
    def test_renders_marks_and_legend(self):
        series = {
            "dryadsynth": [0.01, 0.1, 0.5, 2.0, 8.0],
            "eusolver": [0.2, 4.0],
        }
        out = cactus_plot(series, title="cactus")
        assert "cactus" in out
        assert "dryadsynth" in out and "eusolver" in out
        assert any(mark in out for mark in "ox")

    def test_empty_series(self):
        assert "no solved" in cactus_plot({"s": []})

    def test_row_count_fixed(self):
        out = cactus_plot({"a": [1.0, 2.0]}, width=30, height=10)
        rows = [line for line in out.splitlines() if line.startswith("|")]
        assert len(rows) == 10
        assert all(len(row) == 31 for row in rows)


class TestScatterPlot:
    def test_renders_points_and_diagonal(self):
        points = [("b1", 0.1, 1.0), ("b2", 2.0, 0.5), ("b3", None, 3.0)]
        out = scatter_plot(points, "coop", "enum", title="scatter")
        assert "scatter" in out
        assert "o" in out and "." in out
        assert "coop" in out and "enum" in out

    def test_unsolved_points_pinned_to_edge(self):
        points = [("b", None, None)]
        out = scatter_plot(points, "x", "y")
        assert "no data" in out or "o" in out

    def test_empty(self):
        assert "no data" in scatter_plot([], "x", "y")
