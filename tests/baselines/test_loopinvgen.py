"""Tests for the LoopInvGen-style data-driven invariant baseline."""

from repro.lang import (
    add,
    and_,
    eq,
    ge,
    implies,
    int_var,
    ite,
    le,
    lt,
    not_,
    sub,
)
from repro.lang.sorts import INT
from repro.sygus.grammar import clia_grammar
from repro.sygus.problem import InvariantProblem, SygusProblem, SynthFun
from repro.baselines.loopinvgen import LoopInvGenSolver
from repro.synth.config import SynthConfig

x, y = int_var("x"), int_var("y")


def _count_up(bound):
    return InvariantProblem.from_updates(
        (x,),
        eq(x, 0),
        (ite(lt(x, bound), add(x, 1), x),),
        implies(not_(lt(x, bound)), eq(x, bound)),
        name=f"count-up-{bound}",
    )


class TestScope:
    def test_only_inv_track(self):
        fun = SynthFun("f", (x,), INT, clia_grammar((x,)))
        problem = SygusProblem(fun, eq(fun.apply((x,)), x), (x,), track="CLIA")
        outcome = LoopInvGenSolver(SynthConfig(timeout=5)).synthesize(problem)
        assert not outcome.solved


class TestInternals:
    def test_unroll_collects_trajectory(self):
        solver = LoopInvGenSolver()
        inv = _count_up(5)
        states = solver._unroll(inv, (0,))
        assert states == [(0,), (1,), (2,), (3,), (4,), (5,)]

    def test_unroll_stops_at_fixpoint(self):
        solver = LoopInvGenSolver()
        inv = _count_up(3)
        states = solver._unroll(inv, (3,))
        assert states == [(3,)]

    def test_features_include_octagons(self):
        solver = LoopInvGenSolver()
        inv = InvariantProblem.from_updates(
            (x, y),
            and_(eq(x, 0), eq(y, 0)),
            (add(x, 1), add(y, 1)),
            ge(y, x),
        )
        features = solver._features(inv)
        rendered = {repr(f) for f in features}
        assert "(>= x y)" in rendered or "(<= x y)" in rendered

    def test_sample_pre(self):
        solver = LoopInvGenSolver()
        inv = _count_up(5)
        assert solver._sample_pre(inv, ["x"]) == (0,)

    def test_learner_separates_labels(self):
        solver = LoopInvGenSolver()
        inv = _count_up(5)
        features = solver._features(inv)
        candidate = solver._learn(
            features, ["x"], {(0,), (1,), (2,)}, {(10,), (-1,)}
        )
        assert candidate is not None
        from repro.lang import evaluate

        for state in (0, 1, 2):
            assert evaluate(candidate, {"x": state}) is True
        for state in (10, -1):
            assert evaluate(candidate, {"x": state}) is False


class TestEndToEnd:
    def test_count_up(self):
        problem = _count_up(20).to_sygus()
        outcome = LoopInvGenSolver(SynthConfig(timeout=60)).synthesize(problem)
        assert outcome.solved
        ok, _ = problem.verify(outcome.solution.body)
        assert ok

    def test_twin_counters(self):
        inv = InvariantProblem.from_updates(
            (x, y),
            and_(eq(x, 0), eq(y, 0)),
            (ite(lt(x, 8), add(x, 1), x), ite(lt(x, 8), add(y, 1), y)),
            implies(not_(lt(x, 8)), eq(y, 8)),
        )
        problem = inv.to_sygus()
        outcome = LoopInvGenSolver(SynthConfig(timeout=60)).synthesize(problem)
        assert outcome.solved
        ok, _ = problem.verify(outcome.solution.body)
        assert ok

    def test_count_down(self):
        from repro.lang import gt

        inv = InvariantProblem.from_updates(
            (x,),
            eq(x, 12),
            (ite(gt(x, 0), sub(x, 1), x),),
            implies(not_(gt(x, 0)), eq(x, 0)),
        )
        problem = inv.to_sygus()
        outcome = LoopInvGenSolver(SynthConfig(timeout=60)).synthesize(problem)
        assert outcome.solved
        ok, _ = problem.verify(outcome.solution.body)
        assert ok
