"""Tests for the CVC4/CEGQI-style baseline."""

from repro.lang import (
    add,
    and_,
    eq,
    evaluate,
    ge,
    implies,
    int_var,
    ite,
    le,
    lt,
    not_,
    or_,
)
from repro.lang.sorts import INT
from repro.sygus.grammar import clia_grammar, qm_grammar
from repro.sygus.problem import InvariantProblem, SygusProblem, SynthFun
from repro.baselines.cegqi import CegqiSolver
from repro.synth.config import SynthConfig

x, y, z = int_var("x"), int_var("y"), int_var("z")


def _max_problem(params):
    fun = SynthFun("f", tuple(params), INT, clia_grammar(tuple(params)))
    fx = fun.apply(tuple(params))
    spec = and_(
        *(ge(fx, p) for p in params), or_(*(eq(fx, p) for p in params))
    )
    return SygusProblem(fun, spec, tuple(params), name=f"max{len(params)}")


class TestApplicability:
    def test_single_invocation_clia_applicable(self):
        solver = CegqiSolver()
        assert solver._applicable(_max_problem((x, y)))

    def test_multi_invocation_not_applicable(self):
        fun = SynthFun("f", (x, y), INT, clia_grammar((x, y)))
        spec = eq(fun.apply((x, y)), fun.apply((y, x)))
        problem = SygusProblem(fun, spec, (x, y))
        assert not CegqiSolver()._applicable(problem)

    def test_custom_grammar_not_applicable(self):
        fun = SynthFun("f", (x, y), INT, qm_grammar((x, y)))
        problem = SygusProblem(fun, eq(fun.apply((x, y)), x), (x, y))
        assert not CegqiSolver()._applicable(problem)

    def test_inv_track_not_applicable(self):
        inv = InvariantProblem.from_updates(
            (x,), eq(x, 0), (add(x, 1),), ge(x, 0)
        )
        assert not CegqiSolver()._applicable(inv.to_sygus())


class TestCegqiSolving:
    def test_max2_fast_with_large_solution(self):
        outcome = CegqiSolver(SynthConfig(timeout=30)).synthesize(
            _max_problem((x, y))
        )
        assert outcome.solved
        problem = _max_problem((x, y))
        ok, _ = problem.verify(outcome.solution.body)
        assert ok
        # The behavioural signature: cascades are big (Table 1).
        assert outcome.solution.time_seconds < 10

    def test_max3(self):
        outcome = CegqiSolver(SynthConfig(timeout=60)).synthesize(
            _max_problem((x, y, z))
        )
        assert outcome.solved
        ok, _ = _max_problem((x, y, z)).verify(outcome.solution.body)
        assert ok

    def test_conditional_reference(self):
        fun = SynthFun("f", (x, y), INT, clia_grammar((x, y)))
        spec = eq(fun.apply((x, y)), ite(lt(x, 0), y, x))
        problem = SygusProblem(fun, spec, (x, y))
        outcome = CegqiSolver(SynthConfig(timeout=30)).synthesize(problem)
        assert outcome.solved
        ok, _ = problem.verify(outcome.solution.body)
        assert ok

    def test_witness_harvesting_offsets(self):
        # The solution needs x + 1, which only appears via the +-1 offsets.
        fun = SynthFun("f", (x,), INT, clia_grammar((x,)))
        spec = and_(ge(fun.apply((x,)), add(x, 1)), le(fun.apply((x,)), add(x, 1)))
        problem = SygusProblem(fun, spec, (x,))
        outcome = CegqiSolver(SynthConfig(timeout=30)).synthesize(problem)
        assert outcome.solved
        assert evaluate(outcome.solution.body, {"x": 10}) == 11

    def test_fallback_on_general_grammar(self):
        fun = SynthFun("f", (x,), INT, qm_grammar((x,)))
        problem = SygusProblem(fun, eq(fun.apply((x,)), x), (x,))
        outcome = CegqiSolver(SynthConfig(timeout=30)).synthesize(problem)
        # The enumerative fallback finds the identity immediately.
        assert outcome.solved
        assert outcome.solution.body is x
