"""Tests for the EUSolver-style enumerative baseline."""

from repro.lang import (
    add,
    and_,
    eq,
    evaluate,
    ge,
    int_const,
    int_var,
    ite,
    or_,
    sub,
)
from repro.lang.sorts import INT
from repro.sygus.grammar import clia_grammar, qm_grammar
from repro.sygus.problem import SygusProblem, SynthFun
from repro.baselines.eusolver import (
    EnumerativeSolver,
    TermEnumerator,
    _compositions,
    spec_constants,
)
from repro.synth.config import SynthConfig

x, y = int_var("x"), int_var("y")


class TestCompositions:
    def test_single_part(self):
        assert list(_compositions(3, 1)) == [(3,)]

    def test_two_parts(self):
        assert list(_compositions(3, 2)) == [(1, 2), (2, 1)]

    def test_parts_exceed_total(self):
        assert list(_compositions(1, 2)) == []


class TestSpecConstants:
    def test_harvests_spec_literals(self):
        fun = SynthFun("f", (x,), INT, clia_grammar((x,)))
        spec = eq(fun.apply((x,)), add(x, 7))
        problem = SygusProblem(fun, spec, (x,))
        constants = spec_constants(problem)
        assert {0, 1, 6, 7, 8} <= set(constants)


class TestTermEnumerator:
    def test_size_one_terms(self):
        grammar = qm_grammar((x, y))
        enumerator = TermEnumerator(grammar, [0, 1], [], {})
        terms = enumerator.terms("S", 1)
        assert x in terms and y in terms and int_const(0) in terms

    def test_observational_equivalence_prunes(self):
        grammar = clia_grammar((x,))
        examples = [{"x": 0}, {"x": 1}, {"x": -2}]
        enumerator = TermEnumerator(grammar, [0, 1], examples, {})
        # x + 0 and 0 + x and x are observationally equal; only one survives
        # per signature per size class.
        size2 = enumerator.terms("S", 1)
        signatures = set()
        for term in size2:
            signature = tuple(evaluate(term, e) for e in examples)
            assert signature not in signatures
            signatures.add(signature)

    def test_compound_terms_appear_at_right_size(self):
        grammar = qm_grammar((x, y))
        enumerator = TermEnumerator(grammar, [0, 1], [], {})
        size3 = enumerator.terms("S", 3)
        assert any(t.kind.value == "+" for t in size3)


class TestEnumerativeSolver:
    def test_identity(self):
        fun = SynthFun("f", (x, y), INT, clia_grammar((x, y)))
        problem = SygusProblem(fun, eq(fun.apply((x, y)), x), (x, y))
        outcome = EnumerativeSolver(SynthConfig(timeout=30)).synthesize(problem)
        assert outcome.solved
        assert outcome.solution.body is x

    def test_max2_with_unification(self):
        fun = SynthFun("f", (x, y), INT, clia_grammar((x, y)))
        fx = fun.apply((x, y))
        spec = and_(ge(fx, x), ge(fx, y), or_(eq(fx, x), eq(fx, y)))
        problem = SygusProblem(fun, spec, (x, y), name="max2")
        outcome = EnumerativeSolver(SynthConfig(timeout=60)).synthesize(problem)
        assert outcome.solved
        ok, _ = problem.verify(outcome.solution.body)
        assert ok
        # Enumeration finds minimal solutions (Table 1's story).
        assert outcome.solution.size <= 6

    def test_qm_grammar_search(self):
        fun = SynthFun("f", (x,), INT, qm_grammar((x,)))
        # f(x) = qm(x, 0 - x) = |x|.
        spec = eq(fun.apply((x,)), ite(ge(x, 0), x, sub(0, x)))
        problem = SygusProblem(fun, spec, (x,), name="qm-abs")
        outcome = EnumerativeSolver(SynthConfig(timeout=60)).synthesize(problem)
        assert outcome.solved
        assert problem.synth_fun.grammar.generates(outcome.solution.body)

    def test_size_cap_gives_up(self):
        params = tuple(int_var(f"v{i}") for i in range(4))
        fun = SynthFun("f", params, INT, clia_grammar(params))
        fx = fun.apply(params)
        spec = and_(
            *(ge(fx, p) for p in params), or_(*(eq(fx, p) for p in params))
        )
        problem = SygusProblem(fun, spec, params, name="max4")
        solver = EnumerativeSolver(SynthConfig(timeout=20), max_size=3)
        outcome = solver.synthesize(problem)
        assert not outcome.solved
