"""Streaming SLO accounting (repro.serve.slo)."""

from repro.obs.metrics import MetricsRegistry
from repro.serve.slo import OVERFLOW_KEY, SloPolicy, SloTracker, _WindowRing


FAST = SloPolicy(objective_seconds=1.0, target=0.9,
                 fast_window=30.0, slow_window=300.0)


class TestPolicy:
    def test_error_budget(self):
        assert abs(SloPolicy(target=0.95).error_budget - 0.05) < 1e-9

    def test_perfect_target_budget_clamped_nonzero(self):
        assert SloPolicy(target=1.0).error_budget > 0


class TestWindowRing:
    def test_counts_inside_window(self):
        ring = _WindowRing(window=30.0, buckets=30)
        for second in range(10):
            ring.observe(100.0 + second, violated=(second % 2 == 0))
        rates = ring.rates(110.0)
        assert rates["total"] == 10
        assert rates["violations"] == 5
        assert rates["rate"] == 0.5

    def test_old_buckets_recycled(self):
        ring = _WindowRing(window=30.0, buckets=30)
        ring.observe(100.0, violated=True)
        # Far outside the window: the old slot no longer contributes.
        rates = ring.rates(100.0 + 120.0)
        assert rates["total"] == 0
        assert rates["rate"] == 0.0

    def test_empty_ring(self):
        ring = _WindowRing(window=30.0)
        assert ring.rates(0.0) == {"total": 0, "violations": 0, "rate": 0.0}


class TestTracker:
    def test_observe_classifies_violations(self):
        tracker = SloTracker(FAST)
        assert tracker.observe(0.5, "alice", 0, now=10.0) is False
        assert tracker.observe(2.0, "alice", 0, now=10.0) is True
        assert tracker.observed == 2
        assert tracker.violations == 1

    def test_burn_rate_normalized_by_budget(self):
        tracker = SloTracker(FAST)  # budget = 0.1
        for index in range(10):
            tracker.observe(2.0 if index == 0 else 0.1, "a", 0, now=50.0)
        # 1 violation / 10 = 0.1 violation rate = exactly the budget.
        assert abs(tracker.burn_rate(tracker.fast, 50.0) - 1.0) < 1e-9

    def test_budget_remaining_clamped(self):
        tracker = SloTracker(FAST)
        for _ in range(10):
            tracker.observe(5.0, "a", 0, now=50.0)  # all violations
        assert tracker.budget_remaining(50.0) == 0.0
        fresh = SloTracker(FAST)
        assert fresh.budget_remaining(0.0) == 1.0

    def test_per_client_and_priority_families(self):
        tracker = SloTracker(FAST)
        tracker.observe(0.2, "alice", 0, now=1.0)
        tracker.observe(0.4, "bob", 3, now=1.0)
        latency = tracker.latency_snapshot()
        assert set(latency["per_client"]) == {"alice", "bob"}
        assert set(latency["per_priority"]) == {"p0", "p3"}
        assert latency["overall"]["count"] == 2

    def test_client_cardinality_capped(self):
        tracker = SloTracker(FAST, max_keys=4)
        for index in range(10):
            tracker.observe(0.1, f"client-{index}", 0, now=1.0)
        assert len(tracker.per_client) == 5  # 4 real + overflow
        assert OVERFLOW_KEY in tracker.per_client
        assert tracker.per_client[OVERFLOW_KEY].count == 6

    def test_anonymous_default_client(self):
        tracker = SloTracker(FAST)
        tracker.observe(0.1, "", 0, now=1.0)
        assert "anonymous" in tracker.per_client

    def test_snapshot_shape(self):
        tracker = SloTracker(FAST)
        tracker.observe(2.0, "a", 0, now=10.0)
        snap = tracker.snapshot(10.0)
        assert snap["objective_seconds"] == 1.0
        assert snap["observed"] == 1
        assert snap["violations"] == 1
        assert snap["burn_rate_fast"] > 1.0
        assert 0.0 <= snap["budget_remaining"] <= 1.0
        assert snap["window_fast"]["total"] == 1

    def test_publish_mirrors_into_registry(self):
        registry = MetricsRegistry()
        tracker = SloTracker(FAST)
        tracker.observe(2.0, "a", 0, now=10.0, registry=registry)
        assert registry.counter("serve.slo_violations").value == 1
        assert registry.gauge("serve.slo_budget_remaining").value <= 1.0
        # The live sketch object is installed (not a copy): later
        # observations show up without another publish.
        tracker.observe(0.1, "a", 0, now=10.0)
        assert registry.sketch("serve.request_latency_seconds").count == 2
        text = registry.to_prometheus()
        assert "repro_serve_slo_budget_remaining" in text
        assert "repro_serve_request_latency_seconds_count 2" in text
