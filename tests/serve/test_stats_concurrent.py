"""Concurrent scrapes against a daemon under load.

``/metrics`` and ``/v1/stats`` are read paths that race the dispatcher and
pool threads mutating the metrics registry, the SLO tracker, and the recent
ring.  These tests hammer both endpoints from several threads while jobs
flow, asserting every response parses (no torn reads, no 500s), and
exercise the retried-scrape path ``_render_metrics`` takes when a dict
mutates mid-dump.
"""

import threading
import urllib.request

import pytest

from repro.obs.live import TelemetryServer

from tests.serve.test_daemon import get_json, post_json, stack, wait_terminal  # noqa: F401


class TestConcurrentScrapes:
    def test_scrapes_never_tear_while_jobs_flow(self, stack):  # noqa: F811
        daemon, server = stack(workers=2, solver="debug-sleep@0.05",
                               max_queue=32)
        errors = []
        stop = threading.Event()

        def scrape_stats():
            while not stop.is_set():
                try:
                    status, payload = get_json(server.url, "/v1/stats")
                    assert status == 200
                    # Torn reads would show up as inconsistent JSON or a
                    # missing always-present block.
                    assert "slo" in payload and "latency" in payload
                    assert payload["completed"] <= payload["accepted"]
                except Exception as exc:  # noqa: BLE001 - collected below
                    errors.append(exc)
                    return

        def scrape_metrics():
            while not stop.is_set():
                try:
                    with urllib.request.urlopen(
                        server.url + "/metrics", timeout=10.0
                    ) as response:
                        assert response.status == 200
                        body = response.read().decode()
                    for line in body.splitlines():
                        assert line.startswith("#") or " " in line
                except Exception as exc:  # noqa: BLE001 - collected below
                    errors.append(exc)
                    return

        scrapers = [threading.Thread(target=scrape_stats) for _ in range(2)]
        scrapers += [threading.Thread(target=scrape_metrics) for _ in range(2)]
        for thread in scrapers:
            thread.start()
        try:
            ids = []
            for index in range(12):
                status, _, payload = post_json(
                    server.url,
                    {"problem": f"p{index}", "client": f"c{index % 3}"},
                )
                if status == 202:
                    ids.append(payload["id"])
            for serve_id in ids:
                wait_terminal(server.url, serve_id)
        finally:
            stop.set()
            for thread in scrapers:
                thread.join(timeout=10.0)
        assert not errors, errors
        # The scraped surfaces saw the completed work.
        _, stats = get_json(server.url, "/v1/stats")
        assert stats["completed"] == len(ids)
        assert stats["latency"]["overall"]["count"] == len(ids)

    def test_stats_blocks_consistent_after_load(self, stack):  # noqa: F811
        daemon, server = stack(workers=2)
        for index in range(4):
            _, _, payload = post_json(
                server.url, {"problem": f"q{index}", "client": "alice"}
            )
            wait_terminal(server.url, payload["id"])
        _, stats = get_json(server.url, "/v1/stats")
        assert stats["slo"]["observed"] == 4
        assert stats["latency"]["per_client"]["alice"]["count"] == 4
        assert len(stats["recent"]) == 4
        assert {entry["state"] for entry in stats["recent"]} == {"done"}


class TestRetriedScrape:
    def test_render_metrics_retries_runtime_error(self):
        calls = {"n": 0}

        def flaky_metrics():
            calls["n"] += 1
            if calls["n"] < 3:
                raise RuntimeError("dictionary changed size during iteration")
            return "# ok\nrepro_up 1\n"

        server = TelemetryServer(port=0, metrics_fn=flaky_metrics)
        server.start()
        try:
            with urllib.request.urlopen(
                server.url + "/metrics", timeout=10.0
            ) as response:
                body = response.read().decode()
            assert "repro_up 1" in body
            assert calls["n"] == 3
        finally:
            server.stop()

    def test_render_metrics_gives_up_after_three(self):
        def always_flaky():
            raise RuntimeError("dictionary changed size during iteration")

        server = TelemetryServer(port=0, metrics_fn=always_flaky)
        server.start()
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(server.url + "/metrics", timeout=10.0)
            assert excinfo.value.code == 500
        finally:
            server.stop()
