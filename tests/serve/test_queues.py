"""Fair scheduling: WRR across clients, priorities within, load shedding."""

from repro.serve.queues import FairScheduler


def drain(scheduler):
    items = []
    while True:
        entry = scheduler.pop()
        if entry is None:
            return items
        items.append(entry.item)


class TestSingleClient:
    def test_fifo_among_equal_priorities(self):
        scheduler = FairScheduler()
        for name in ["a", "b", "c"]:
            scheduler.push(name)
        assert drain(scheduler) == ["a", "b", "c"]

    def test_higher_priority_first(self):
        scheduler = FairScheduler()
        scheduler.push("low", priority=0)
        scheduler.push("high", priority=5)
        scheduler.push("mid", priority=3)
        assert drain(scheduler) == ["high", "mid", "low"]

    def test_len_tracks_live_entries(self):
        scheduler = FairScheduler()
        assert len(scheduler) == 0
        scheduler.push("a")
        scheduler.push("b")
        assert len(scheduler) == 2
        scheduler.pop()
        assert len(scheduler) == 1


class TestFairnessAcrossClients:
    def test_round_robin_interleaves_clients(self):
        scheduler = FairScheduler()
        for i in range(3):
            scheduler.push(f"a{i}", client="alice")
        for i in range(3):
            scheduler.push(f"b{i}", client="bob")
        assert drain(scheduler) == ["a0", "b0", "a1", "b1", "a2", "b2"]

    def test_flooding_client_cannot_starve_others(self):
        scheduler = FairScheduler()
        for i in range(100):
            scheduler.push(f"flood{i}", client="flooder")
        scheduler.push("urgent", client="quiet")
        # The quiet client's single job is served after at most one
        # flooder turn, not after 100.
        first_three = [scheduler.pop().item for _ in range(3)]
        assert "urgent" in first_three

    def test_weights_skew_service_proportionally(self):
        scheduler = FairScheduler()
        for i in range(6):
            scheduler.push(f"h{i}", client="heavy", weight=2)
        for i in range(3):
            scheduler.push(f"l{i}", client="light", weight=1)
        served = [scheduler.pop().item for _ in range(6)]
        heavy = sum(1 for item in served if item.startswith("h"))
        light = sum(1 for item in served if item.startswith("l"))
        assert heavy == 4 and light == 2

    def test_priorities_are_per_client_not_global(self):
        scheduler = FairScheduler()
        scheduler.push("a-low", client="alice", priority=0)
        scheduler.push("b-high", client="bob", priority=9)
        # WRR turn order decides across clients; bob's high priority does
        # not preempt alice's turn.
        assert scheduler.pop().item == "a-low"
        assert scheduler.pop().item == "b-high"


class TestShedding:
    def test_shed_lowest_evicts_strictly_below(self):
        scheduler = FairScheduler()
        scheduler.push("p1", priority=1)
        scheduler.push("p2", priority=2)
        victim = scheduler.shed_lowest(below_priority=2)
        assert victim.item == "p1"
        assert len(scheduler) == 1
        assert drain(scheduler) == ["p2"]

    def test_shed_refuses_equal_priority(self):
        scheduler = FairScheduler()
        scheduler.push("p1", priority=1)
        assert scheduler.shed_lowest(below_priority=1) is None
        assert len(scheduler) == 1

    def test_shed_picks_newest_among_ties(self):
        scheduler = FairScheduler()
        scheduler.push("old", priority=0)
        scheduler.push("new", priority=0)
        victim = scheduler.shed_lowest(below_priority=5)
        assert victim.item == "new"
        assert drain(scheduler) == ["old"]

    def test_shed_spans_clients(self):
        scheduler = FairScheduler()
        scheduler.push("a", client="alice", priority=3)
        scheduler.push("b", client="bob", priority=1)
        victim = scheduler.shed_lowest(below_priority=9)
        assert victim.item == "b"

    def test_removed_entry_never_pops(self):
        scheduler = FairScheduler()
        entry = scheduler.push("doomed")
        scheduler.push("kept")
        assert scheduler.remove(entry) is True
        assert scheduler.remove(entry) is False  # idempotent
        assert drain(scheduler) == ["kept"]

    def test_empty_scheduler_sheds_nothing(self):
        scheduler = FairScheduler()
        assert scheduler.shed_lowest(below_priority=100) is None


class TestDepths:
    def test_depths_report_live_counts_per_client(self):
        scheduler = FairScheduler()
        scheduler.push("a1", client="alice")
        scheduler.push("a2", client="alice")
        scheduler.push("b1", client="bob")
        assert scheduler.depths() == {"alice": 2, "bob": 1}
        scheduler.pop()
        scheduler.pop()
        scheduler.pop()
        assert scheduler.depths() == {}
