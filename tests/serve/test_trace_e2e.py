"""One trace id, end to end: HTTP admission → audit log → worker spans.

This is the acceptance test for request-scoped tracing: a single submission's
``trace_id`` must be observable in (1) the admission audit record on the
structured log stream, (2) the ``/v1/stats`` recent-requests ring, (3) the
job view the client polls, and (4) the re-rooted span tree — ``serve.request``
→ ``serve.queue_wait`` + grafted ``worker.request`` worker tree — that
``dryadsynth explain`` renders.
"""

import json
import time
import urllib.request

import pytest

from repro import obs
from repro.obs.explain import build_explain, render_explain
from repro.obs.log import configure_json_logging, remove_json_logging
from repro.serve import ServeSettings, SynthesisDaemon, build_server

from tests.serve.test_daemon import get_json, post_json, wait_terminal


@pytest.fixture
def traced_stack(tmp_path):
    """Daemon with telemetry on, inside a recording, with a JSON log sink."""
    log_path = tmp_path / "daemon.jsonl"
    handler = configure_json_logging(str(log_path))
    with obs.recording() as recorder:
        daemon = SynthesisDaemon(
            ServeSettings(workers=2, solver="debug-solve", timeout=10.0,
                          telemetry=True)
        )
        server = build_server(daemon, port=0)
        server.start()
        try:
            yield daemon, server, recorder, log_path
        finally:
            daemon.stop(drain=False)
            server.stop()
            remove_json_logging(handler)


def read_log(path):
    return [json.loads(line) for line in path.read_text().splitlines()]


def wait_for_span(recorder, name, deadline=10.0):
    """The dispatcher thread records spans after _finish; poll briefly."""
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        spans = list(recorder.spans)
        if any(s.name == name for s in spans):
            return spans
        time.sleep(0.02)
    raise AssertionError(f"no span named {name} recorded")


class TestTraceEndToEnd:
    def test_trace_id_everywhere(self, traced_stack):
        daemon, server, recorder, log_path = traced_stack
        status, _, payload = post_json(
            server.url, {"problem": "p", "name": "max2", "client": "alice"}
        )
        assert status == 202
        trace_id = payload["trace_id"]
        assert trace_id and len(trace_id) == 32

        view = wait_terminal(server.url, payload["id"])
        assert view["trace_id"] == trace_id
        assert view["traceparent"].split("-")[1] == trace_id

        # (1) admission audit record on the structured log stream.
        audits = [r for r in read_log(log_path) if r["event"] == "serve.audit"]
        assert any(
            r["decision"] == "admitted" and r["trace_id"] == trace_id
            for r in audits
        )

        # (2) /v1/stats: the recent ring carries the trace id.
        _, stats = get_json(server.url, "/v1/stats")
        assert any(e["trace_id"] == trace_id for e in stats["recent"])

        # (3)+(4) the span tree: serve.request root carrying the trace id,
        # with the worker's re-rooted tree grafted underneath.
        spans = wait_for_span(recorder, "serve.request")
        request = next(s for s in spans if s.name == "serve.request")
        assert request.attrs["trace_id"] == trace_id
        assert request.attrs["client"] == "alice"
        children = [s for s in spans if s.parent_id == request.span_id]
        child_names = {s.name for s in children}
        assert "job" in child_names  # the grafted worker telemetry root
        worker_spans = [s for s in spans if s.name == "worker.request"]
        assert worker_spans, "worker did not re-root its tree under the trace"
        assert worker_spans[0].attrs["trace_id"] == trace_id
        # The worker minted its own span id under the same trace.
        assert worker_spans[0].attrs["trace_span_id"] != request.attrs[
            "trace_span_id"
        ]

        # ... and dryadsynth explain renders the request row.
        text = render_explain(
            build_explain(list(recorder.spans), list(recorder.events),
                          recorder.truncated)
        )
        assert trace_id in text
        assert "daemon requests" in text

    def test_caller_traceparent_is_continued(self, traced_stack):
        daemon, server, recorder, log_path = traced_stack
        caller_trace = "c" * 32
        caller_span = "d" * 16
        header = f"00-{caller_trace}-{caller_span}-01"
        request = urllib.request.Request(
            server.url + "/v1/jobs",
            data=json.dumps({"problem": "p2", "client": "mesh"}).encode(),
            headers={"Content-Type": "application/json",
                     "traceparent": header},
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=10.0) as response:
            payload = json.loads(response.read().decode())
        assert payload["trace_id"] == caller_trace
        wait_terminal(server.url, payload["id"])
        spans = wait_for_span(recorder, "serve.request")
        request_span = next(
            s for s in spans
            if s.name == "serve.request" and s.attrs["trace_id"] == caller_trace
        )
        # The daemon's span is a child of the caller's span: same trace,
        # caller's span id as parent.
        assert request_span.attrs["trace_parent_span_id"] == caller_span

    def test_malformed_traceparent_mints_fresh(self, traced_stack):
        daemon, server, recorder, log_path = traced_stack
        request = urllib.request.Request(
            server.url + "/v1/jobs",
            data=json.dumps({"problem": "p3"}).encode(),
            headers={"Content-Type": "application/json",
                     "traceparent": "junk-header"},
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=10.0) as response:
            payload = json.loads(response.read().decode())
        assert payload["trace_id"]
        assert len(payload["trace_id"]) == 32

    def test_queue_wait_span_recorded(self, traced_stack):
        daemon, server, recorder, log_path = traced_stack
        _, _, payload = post_json(server.url, {"problem": "q"})
        wait_terminal(server.url, payload["id"])
        spans = wait_for_span(recorder, "serve.request")
        waits = [s for s in spans if s.name == "serve.queue_wait"]
        assert waits
        assert waits[0].attrs["trace_id"] == payload["trace_id"]

    def test_cache_hit_audited_with_trace(self, tmp_path, traced_stack):
        from repro.service.cache import ResultCache

        daemon, server, recorder, log_path = traced_stack
        cached = SynthesisDaemon(
            ServeSettings(workers=1, solver="debug-solve", timeout=10.0,
                          cache=ResultCache(tmp_path / "cache"))
        )
        cached_server = build_server(cached, port=0)
        cached_server.start()
        try:
            _, _, first = post_json(cached_server.url, {"problem": "c"})
            wait_terminal(cached_server.url, first["id"])
            status, _, second = post_json(cached_server.url, {"problem": "c"})
            assert status == 200 and second["from_cache"]
            audits = [
                r for r in read_log(log_path) if r["event"] == "serve.audit"
            ]
            hits = [r for r in audits if r["decision"] == "cache_hit"]
            assert hits and hits[0]["trace_id"] == second["trace_id"]
            # A cache hit gets its own fresh trace, not the miss's.
            assert second["trace_id"] != first["trace_id"]
        finally:
            cached.stop(drain=False)
            cached_server.stop()

    def test_shed_audit_names_displacer(self, log_sink=None):
        log_path = None  # uses its own stack: needs tight queue settings
        import tempfile

        with tempfile.TemporaryDirectory() as tmp:
            log_path = tmp + "/log.jsonl"
            handler = configure_json_logging(log_path)
            daemon = SynthesisDaemon(
                ServeSettings(workers=1, solver="debug-sleep@0.5",
                              timeout=10.0, max_queue=2)
            )
            server = build_server(daemon, port=0)
            server.start()
            try:
                for index in range(3):
                    post_json(server.url,
                              {"problem": f"s{index}", "priority": 0})
                status, _, vip = post_json(
                    server.url, {"problem": "vip", "priority": 9}
                )
                assert status == 202 and vip.get("displaced")
                records = [
                    json.loads(line)
                    for line in open(log_path).read().splitlines()
                ]
                sheds = [
                    r for r in records
                    if r["event"] == "serve.audit" and r["decision"] == "shed"
                ]
                assert sheds
                assert sheds[0]["displaced_by"] == vip["id"]
                assert sheds[0]["trace_id"]
            finally:
                daemon.stop(drain=False)
                server.stop()
                remove_json_logging(handler)
