"""Submission parsing: JSON and raw SyGuS-IF bodies, validation errors."""

import json

import pytest

from repro.serve.protocol import BadRequest, parse_submission


def json_body(payload):
    return json.dumps(payload).encode(), "application/json"


class TestJsonSubmissions:
    def test_minimal(self):
        body, ctype = json_body({"problem": "(check-synth)"})
        request = parse_submission(body, ctype)
        assert request.problem_text == "(check-synth)"
        assert request.client == "default"
        assert request.priority == 0
        assert request.weight == 1
        assert request.solver is None

    def test_full(self):
        body, ctype = json_body({
            "problem": "(check-synth)", "name": "max2", "solver": "eusolver",
            "timeout": 5.5, "client": "alice", "priority": 3, "weight": 2,
            "labels": {"team": "blue"},
        })
        request = parse_submission(body, ctype)
        assert request.name == "max2"
        assert request.solver == "eusolver"
        assert request.timeout == 5.5
        assert request.client == "alice"
        assert request.priority == 3
        assert request.weight == 2
        assert request.labels == {"team": "blue"}

    @pytest.mark.parametrize("body", [b"", b"   ", b"not json", b"[1,2]",
                                      b'"just a string"'])
    def test_malformed_json_rejected(self, body):
        with pytest.raises(BadRequest):
            parse_submission(body, "application/json")

    def test_missing_problem_rejected(self):
        body, ctype = json_body({"name": "x"})
        with pytest.raises(BadRequest, match="problem"):
            parse_submission(body, ctype)

    @pytest.mark.parametrize("field,value", [
        ("priority", "nope"), ("priority", 10**9), ("weight", 0),
        ("weight", 101), ("timeout", -1), ("timeout", "fast"),
        ("name", 7), ("labels", {"k": 1}), ("labels", "x"),
    ])
    def test_out_of_range_fields_rejected(self, field, value):
        body, ctype = json_body({"problem": "p", field: value})
        with pytest.raises(BadRequest):
            parse_submission(body, ctype)


class TestRawTextSubmissions:
    def test_plain_text_with_query_params(self):
        request = parse_submission(
            b"(set-logic LIA)\n(check-synth)\n",
            "text/plain",
            query={"client": "bob", "priority": "2", "name": "inv1",
                   "timeout": "3"},
        )
        assert request.problem_text.startswith("(set-logic LIA)")
        assert request.client == "bob"
        assert request.priority == 2
        assert request.name == "inv1"
        assert request.timeout == 3.0

    def test_no_content_type_means_raw(self):
        request = parse_submission(b"(check-synth)", "")
        assert request.problem_text == "(check-synth)"

    def test_empty_body_rejected(self):
        with pytest.raises(BadRequest, match="empty"):
            parse_submission(b"", "text/plain")

    def test_non_utf8_rejected(self):
        with pytest.raises(BadRequest, match="UTF-8"):
            parse_submission(b"\xff\xfe\x00", "text/plain")

    def test_bad_query_param_rejected(self):
        with pytest.raises(BadRequest):
            parse_submission(b"p", "text/plain", query={"priority": "high"})


class TestTraceparent:
    def test_header_carried_through(self):
        body, ctype = json_body({"problem": "p"})
        header = "00-" + "a" * 32 + "-" + "b" * 16 + "-01"
        request = parse_submission(body, ctype, traceparent=header)
        assert request.traceparent == header

    def test_inline_field_wins_over_header(self):
        inline = "00-" + "c" * 32 + "-" + "d" * 16 + "-01"
        body, ctype = json_body({"problem": "p", "traceparent": inline})
        request = parse_submission(body, ctype, traceparent="00-header")
        assert request.traceparent == inline

    def test_query_param_accepted_for_raw_bodies(self):
        header = "00-" + "e" * 32 + "-" + "f" * 16 + "-01"
        request = parse_submission(
            b"(check-synth)", "text/plain", query={"traceparent": header}
        )
        assert request.traceparent == header

    def test_absent_is_none(self):
        body, ctype = json_body({"problem": "p"})
        assert parse_submission(body, ctype).traceparent is None
