"""The synthesis daemon end to end: admission, backpressure, drain.

These drive a real :class:`SynthesisDaemon` (real worker processes, debug
solvers) through the real HTTP layer — the same stack ``dryadsynth serve``
runs — and assert the service contract: cache hits bypass workers, a full
queue answers 429 with ``Retry-After`` or sheds the lowest-priority job,
``/healthz`` degrades to 503, and a drain finishes every accepted job.
"""

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.serve import ServeSettings, SynthesisDaemon, build_server
from repro.service.cache import ResultCache


def make_stack(tmp_path, **kwargs):
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("solver", "debug-solve")
    kwargs.setdefault("timeout", 10.0)
    daemon = SynthesisDaemon(ServeSettings(**kwargs))
    server = build_server(daemon, port=0)
    server.start()
    return daemon, server


@pytest.fixture
def stack(tmp_path):
    created = []

    def factory(**kwargs):
        daemon, server = make_stack(tmp_path, **kwargs)
        created.append((daemon, server))
        return daemon, server

    yield factory
    for daemon, server in created:
        daemon.stop(drain=False)
        server.stop()


def post_json(url, payload):
    request = urllib.request.Request(
        url + "/v1/jobs",
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=10.0) as response:
            return response.status, dict(response.headers), json.loads(
                response.read().decode()
            )
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers or {}), json.loads(
            exc.read().decode()
        )


def get_json(url, path):
    try:
        with urllib.request.urlopen(url + path, timeout=10.0) as response:
            return response.status, json.loads(response.read().decode())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode())


def wait_terminal(url, serve_id, deadline=30.0):
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        status, view = get_json(url, f"/v1/jobs/{serve_id}")
        assert status == 200
        if view["state"] in ("done", "shed"):
            return view
        time.sleep(0.02)
    raise AssertionError(f"{serve_id} never reached a terminal state")


class TestSubmitAndPoll:
    def test_json_submission_runs_to_done(self, stack):
        daemon, server = stack()
        status, _, payload = post_json(
            server.url, {"problem": "p", "name": "max2", "client": "alice"}
        )
        assert status == 202
        # The dispatcher races the response rendering: the job is accepted
        # as queued but may already be on (or past) a worker by the time
        # the view is built.
        assert payload["state"] in ("queued", "dispatched", "running", "done")
        view = wait_terminal(server.url, payload["id"])
        assert view["state"] == "done"
        assert view["result"]["status"] == "solved"
        assert view["from_cache"] is False
        assert view["latency"] >= 0

    def test_raw_sygus_body_with_query_params(self, stack):
        daemon, server = stack()
        request = urllib.request.Request(
            server.url + "/v1/jobs?client=bob&name=inv1&priority=2",
            data=b"(set-logic LIA)\n(check-synth)\n",
            headers={"Content-Type": "text/plain"},
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=10.0) as response:
            payload = json.loads(response.read().decode())
        assert payload["client"] == "bob"
        assert payload["name"] == "inv1"
        assert payload["priority"] == 2
        wait_terminal(server.url, payload["id"])

    def test_malformed_submission_is_400(self, stack):
        daemon, server = stack()
        status, _, payload = post_json(server.url, {"name": "no-problem"})
        assert status == 400
        assert "problem" in payload["error"]
        assert daemon.accepted == 0

    def test_unknown_job_is_404(self, stack):
        daemon, server = stack()
        status, payload = get_json(server.url, "/v1/jobs/sv-999")
        assert status == 404

    def test_job_view_can_inline_events(self, stack):
        daemon, server = stack()
        _, _, payload = post_json(server.url, {"problem": "p"})
        wait_terminal(server.url, payload["id"])
        _, view = get_json(server.url, f"/v1/jobs/{payload['id']}?events=1")
        states = [event["state"] for event in view["events"]]
        assert states == ["queued", "dispatched", "running", "done"]


class TestCacheAdmission:
    def test_cache_hit_completes_without_a_worker(self, stack, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        daemon, server = stack(cache=cache)
        _, _, first = post_json(server.url, {"problem": "p", "name": "n"})
        wait_terminal(server.url, first["id"])
        dispatched_before = daemon.pool.pool_stats()["jobs_dispatched"]

        status, _, second = post_json(server.url, {"problem": "p", "name": "n"})
        assert status == 200  # immediate, not 202-queued
        assert second["state"] == "done"
        assert second["from_cache"] is True
        assert second["result"]["status"] == "solved"
        # The fast path never touched the pool.
        assert daemon.pool.pool_stats()["jobs_dispatched"] == dispatched_before
        assert daemon.cache_admissions == 1

    def test_different_problems_miss(self, stack, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        daemon, server = stack(cache=cache)
        _, _, first = post_json(server.url, {"problem": "p1"})
        wait_terminal(server.url, first["id"])
        status, _, second = post_json(server.url, {"problem": "p2"})
        assert status == 202
        view = wait_terminal(server.url, second["id"])
        assert view["from_cache"] is False


class TestBackpressure:
    def test_full_queue_answers_429_with_retry_after(self, stack):
        daemon, server = stack(workers=1, solver="debug-sleep@0.5",
                               max_queue=2)
        accepted = []
        rejection = None
        for index in range(5):
            status, headers, payload = post_json(
                server.url, {"problem": f"p{index}"}
            )
            if status == 202:
                accepted.append(payload["id"])
            elif status == 429:
                rejection = (headers, payload)
        assert rejection is not None
        headers, payload = rejection
        assert int(headers["Retry-After"]) >= 1
        assert "queue full" in payload["error"]
        assert daemon.rejected >= 1
        for serve_id in accepted:
            assert wait_terminal(server.url, serve_id)["state"] == "done"

    def test_higher_priority_sheds_lowest(self, stack):
        daemon, server = stack(workers=1, solver="debug-sleep@0.5",
                               max_queue=2)
        ids = []
        for index in range(4):
            status, _, payload = post_json(
                server.url, {"problem": f"p{index}", "priority": 0}
            )
            if status == 202:
                ids.append(payload["id"])
        status, _, vip = post_json(
            server.url, {"problem": "vip", "priority": 9}
        )
        assert status == 202
        assert vip["displaced"] in ids
        shed_view = wait_terminal(server.url, vip["displaced"])
        assert shed_view["state"] == "shed"
        assert wait_terminal(server.url, vip["id"])["state"] == "done"
        assert daemon.shed == 1

    def test_equal_priority_cannot_shed(self, stack):
        daemon, server = stack(workers=1, solver="debug-sleep@0.5",
                               max_queue=1)
        statuses = [
            post_json(server.url, {"problem": f"p{i}", "priority": 5})[0]
            for i in range(4)
        ]
        assert 429 in statuses
        assert daemon.shed == 0


class TestHealth:
    def test_ok_when_idle(self, stack):
        daemon, server = stack()
        status, payload = get_json(server.url, "/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["state"] == "running"

    def test_ok_health_reports_untripped_conditions(self, stack):
        daemon, server = stack()
        _, payload = get_json(server.url, "/healthz")
        conditions = payload["conditions"]
        assert set(conditions) >= {"dead_workers", "queue_saturated",
                                   "draining"}
        assert not any(c["tripped"] for c in conditions.values())

    def test_saturated_queue_degrades_to_503(self, stack):
        daemon, server = stack(workers=1, solver="debug-sleep@0.5",
                               max_queue=1)
        for index in range(3):
            post_json(server.url, {"problem": f"p{index}"})
        status, payload = get_json(server.url, "/healthz")
        assert status == 503
        assert payload["status"] == "degraded"
        assert any("saturated" in reason for reason in payload["reasons"])
        # Machine-readable: the tripped condition names itself and carries
        # the numbers an alert needs, no string parsing.
        condition = payload["conditions"]["queue_saturated"]
        assert condition["tripped"] is True
        assert condition["queued"] >= condition["max_queue"]
        assert payload["conditions"]["draining"]["tripped"] is False

    def test_draining_is_degraded(self, stack):
        daemon, server = stack()
        daemon.request_drain()
        status, payload = get_json(server.url, "/healthz")
        assert status == 503
        assert any("not admitting" in r for r in payload["reasons"])
        condition = payload["conditions"]["draining"]
        assert condition["tripped"] is True
        assert condition["state"] in ("draining", "stopped")


class TestEventStream:
    def test_stream_delivers_lifecycle_and_closes(self, stack):
        daemon, server = stack()
        _, _, payload = post_json(server.url, {"problem": "p"})
        with urllib.request.urlopen(
            server.url + f"/v1/jobs/{payload['id']}/events", timeout=15.0
        ) as response:
            assert response.status == 200
            events = [
                json.loads(line)
                for line in response.read().decode().splitlines()
            ]
        events = [e for e in events if not e.get("keepalive")]
        assert [e["state"] for e in events] == [
            "queued", "dispatched", "running", "done"
        ]
        assert [e["seq"] for e in events] == [0, 1, 2, 3]

    def test_since_resumes_after_seq(self, stack):
        daemon, server = stack()
        _, _, payload = post_json(server.url, {"problem": "p"})
        wait_terminal(server.url, payload["id"])
        with urllib.request.urlopen(
            server.url + f"/v1/jobs/{payload['id']}/events?since=1",
            timeout=15.0,
        ) as response:
            events = [
                json.loads(line)
                for line in response.read().decode().splitlines()
                if not json.loads(line).get("keepalive")
            ]
        assert [e["seq"] for e in events] == [2, 3]

    def test_stream_for_unknown_job_is_404(self, stack):
        daemon, server = stack()
        status, _ = get_json(server.url, "/v1/jobs/sv-404/events")
        assert status == 404


class TestDrain:
    def test_drain_finishes_accepted_jobs_and_persists(self, stack, tmp_path):
        results_path = tmp_path / "results.jsonl"
        daemon, server = stack(workers=1, solver="debug-sleep@0.2",
                               max_queue=10, results_out=str(results_path))
        ids = []
        for index in range(4):
            status, _, payload = post_json(
                server.url, {"problem": f"p{index}"}
            )
            assert status == 202
            ids.append(payload["id"])
        daemon.request_drain()
        assert daemon.wait_stopped(timeout=30.0)
        for serve_id in ids:
            assert daemon.job_view(serve_id)["state"] == "done"
        with open(results_path) as handle:
            persisted = [json.loads(line) for line in handle]
        assert sorted(r["id"] for r in persisted) == sorted(ids)
        assert all(r["state"] == "done" for r in persisted)

    def test_submission_during_drain_is_503(self, stack):
        daemon, server = stack()
        daemon.request_drain()
        status, _, payload = post_json(server.url, {"problem": "p"})
        assert status == 503
        assert "draining" in payload["error"] or "stopped" in payload["error"]

    def test_drain_is_idempotent(self, stack):
        daemon, server = stack()
        daemon.request_drain()
        daemon.request_drain()
        assert daemon.wait_stopped(timeout=30.0)


class TestStats:
    def test_stats_shape(self, stack):
        daemon, server = stack()
        _, _, payload = post_json(
            server.url, {"problem": "p", "client": "alice"}
        )
        wait_terminal(server.url, payload["id"])
        status, stats = get_json(server.url, "/v1/stats")
        assert status == 200
        assert stats["accepted"] == 1
        assert stats["completed"] == 1
        assert stats["state"] == "running"
        assert stats["pool"]["workers"] == 2
        assert "jobs_dispatched" in stats["pool"]
        # The observability blocks added with the SLO layer.
        assert stats["latency"]["overall"]["count"] == 1
        assert stats["latency"]["per_client"]["alice"]["count"] == 1
        assert stats["slo"]["observed"] == 1
        assert 0.0 <= stats["slo"]["budget_remaining"] <= 1.0
        assert "hit_rate" in stats["memo"]
        recent = stats["recent"]
        assert len(recent) == 1
        assert recent[0]["client"] == "alice"
        assert recent[0]["trace_id"]

    def test_warm_workers_reused_across_jobs(self, stack):
        daemon, server = stack(workers=1)
        for index in range(5):
            _, _, payload = post_json(server.url, {"problem": f"p{index}"})
            wait_terminal(server.url, payload["id"])
        pool_stats = daemon.pool.pool_stats()
        assert pool_stats["jobs_dispatched"] == 5
        # One warm worker served all five jobs — no per-job respawn.
        assert pool_stats["workers_spawned"] == 1


class TestMemoryAccounting:
    """Tentpole: RSS visibility and the leak-watch health condition."""

    def test_stats_carry_memory_block(self, stack):
        daemon, server = stack()
        _, _, view = post_json(server.url, {"problem": "p"})
        wait_terminal(server.url, view["id"])
        status, stats = get_json(server.url, "/v1/stats")
        assert status == 200
        memory = stats["memory"]
        assert memory["daemon_rss_bytes"] > 1024 * 1024
        # ru_maxrss updates on kernel schedule, so it may trail the live
        # /proc reading by a page or two — only its magnitude is asserted.
        assert memory["daemon_peak_rss_bytes"] > 1024 * 1024
        assert memory["max_rss_mb"] is None
        # One completed request cannot fill the leak ring.
        assert memory["leak_slope_bytes_per_request"] is None
        assert memory["leak_window"] <= 1

    def test_max_rss_mb_threads_through_to_pool(self, stack):
        daemon, server = stack(max_rss_mb=512)
        _, stats = get_json(server.url, "/v1/stats")
        assert stats["memory"]["max_rss_mb"] == 512
        assert daemon.pool.max_rss_mb == 512

    def test_leak_slope_none_until_ring_full(self, stack):
        daemon, server = stack(leak_window=4)
        base = 100 * 1024 * 1024
        for request_number in range(3):
            daemon._rss_samples.append((request_number, base))
        assert daemon._leak_slope() is None
        daemon._rss_samples.append((3, base))
        assert daemon._leak_slope() == 0.0

    def test_flat_rss_does_not_trip(self, stack):
        daemon, server = stack(leak_window=4)
        for request_number in range(4):
            daemon._rss_samples.append((request_number, 100 * 1024 * 1024))
        status, payload = get_json(server.url, "/healthz")
        assert status == 200
        condition = payload["conditions"]["rss_leak"]
        assert condition["tripped"] is False
        assert condition["slope_bytes_per_request"] == 0.0

    def test_growing_rss_degrades_health(self, stack):
        daemon, server = stack(leak_window=4, leak_slope_mb=8.0)
        base = 100 * 1024 * 1024
        for request_number in range(4):
            # +16 MB per completed request: double the 8 MB/request limit.
            daemon._rss_samples.append(
                (request_number, base + request_number * 16 * 1024 * 1024)
            )
        status, payload = get_json(server.url, "/healthz")
        assert status == 503
        condition = payload["conditions"]["rss_leak"]
        assert condition["tripped"] is True
        assert condition["slope_bytes_per_request"] > 8 * 1024 * 1024
        assert condition["window"] == 4
        assert any("rss leak" in reason for reason in payload["reasons"])
        # The leak slope also shows in stats for `dryadsynth top`.
        _, stats = get_json(server.url, "/v1/stats")
        assert stats["memory"]["leak_slope_bytes_per_request"] > 0

    def test_spike_protection_window_resets(self, stack):
        # A deque(maxlen=window) forgets the pre-spike baseline: only the
        # last `window` requests can trip the condition.
        daemon, server = stack(leak_window=4)
        for request_number in range(8):
            rss = 100 * 1024 * 1024 + (64 * 1024 * 1024
                                       if request_number == 3 else 0)
            daemon._rss_samples.append((request_number, rss))
        assert daemon._leak_slope() == 0.0
