"""The ``dryadsynth top`` dashboard (repro.serve.top)."""

import io

from repro.serve.top import _bar, _fetch_json, main, render_dashboard, run_top

from tests.serve.test_daemon import post_json, stack, wait_terminal  # noqa: F401


SAMPLE_STATS = {
    "state": "running",
    "uptime_seconds": 12.5,
    "accepted": 5,
    "completed": 4,
    "inflight": 1,
    "queued": 0,
    "max_queue": 16,
    "shed": 0,
    "rejected": 1,
    "pool": {"workers": 2, "workers_alive": 2, "workers_spawned": 2,
             "jobs_dispatched": 4},
    "cache": {"hit_rate": 0.5},
    "memo": {"hit_rate": 0.25},
    "slo": {"objective_seconds": 5.0, "target": 0.95, "observed": 4,
            "violations": 1, "burn_rate_fast": 2.0, "burn_rate_slow": 0.5,
            "budget_remaining": 0.5},
    "latency": {
        "overall": {"p50": 0.1, "p90": 0.2, "p95": 0.3, "p99": 0.4,
                    "count": 4, "mean": 0.15},
        "per_client": {"alice": {"p50": 0.1, "p90": 0.2, "p95": 0.3,
                                 "p99": 0.4, "count": 4, "mean": 0.15}},
        "per_priority": {},
    },
    "queue_depths": {"alice": 2},
    "recent": [
        {"id": "sv-1", "trace_id": "a" * 32, "client": "alice",
         "state": "done", "status": "solved", "latency": 0.12},
    ],
}

SAMPLE_HEALTH = {
    "status": "degraded",
    "conditions": {
        "queue_saturated": {"tripped": True, "queued": 16, "max_queue": 16},
        "dead_workers": {"tripped": False},
    },
}


class TestRenderDashboard:
    def test_full_frame(self):
        frame = render_dashboard(SAMPLE_STATS, SAMPLE_HEALTH,
                                 url="http://h:1")
        assert "http://h:1" in frame
        assert "DEGRADED" in frame
        assert "!! queue_saturated" in frame
        assert "dead_workers" not in frame  # untripped conditions are quiet
        assert "accepted=5" in frame
        assert "cache_hit_rate=0.50" in frame
        assert "burn fast=2.00" in frame
        assert "50.0% remaining" in frame
        assert "alice" in frame
        assert "a" * 32 in frame  # trace id column

    def test_unreachable_daemon(self):
        frame = render_dashboard(None, None, url="http://gone")
        assert "unreachable" in frame

    def test_partial_payload_tolerated(self):
        frame = render_dashboard({"state": "running"}, None)
        assert "state=running" in frame
        assert "health=UNKNOWN" in frame

    def test_color_codes_only_when_asked(self):
        plain = render_dashboard(SAMPLE_STATS, SAMPLE_HEALTH)
        assert "\x1b[" not in plain
        colored = render_dashboard(SAMPLE_STATS, SAMPLE_HEALTH, color=True)
        assert "\x1b[" in colored

    def test_bar_clamps(self):
        assert _bar(1.5, width=4) == "####"
        assert _bar(-1.0, width=4) == "...."
        assert _bar(0.5, width=4) == "##.."


class TestAgainstLiveDaemon:
    def test_once_probe_renders_real_stats(self, stack):  # noqa: F811
        daemon, server = stack()
        _, _, payload = post_json(
            server.url, {"problem": "p", "client": "alice"}
        )
        wait_terminal(server.url, payload["id"])
        out = io.StringIO()
        code = run_top(server.url, once=True, stream=out)
        assert code == 0
        frame = out.getvalue()
        assert "completed=1" in frame
        assert payload["trace_id"] in frame
        assert "\x1b[2J" not in frame  # --once never clears the screen

    def test_unreachable_probe_exits_nonzero(self):
        out = io.StringIO()
        code = run_top("http://127.0.0.1:1", once=True, stream=out)
        assert code == 1
        assert "unreachable" in out.getvalue()

    def test_main_once(self, stack, capsys):  # noqa: F811
        daemon, server = stack()
        code = main([server.url, "--once"])
        assert code == 0
        assert "dryadsynth top" in capsys.readouterr().out

    def test_fetch_json_reads_503_body(self, stack):  # noqa: F811
        daemon, server = stack()
        daemon.request_drain()
        payload = _fetch_json(server.url + "/healthz")
        assert payload is not None
        assert payload["status"] == "degraded"


class TestStrippedStatsPayload:
    """Satellite regression: a stripped or older daemon may omit any key
    (or send explicit nulls); every such hole renders as ``-``, never a
    KeyError/TypeError crash."""

    def _strip(self, payload):
        """Null out every leaf of a nested payload, keeping the shape."""
        if isinstance(payload, dict):
            return {k: self._strip(v) for k, v in payload.items()}
        if isinstance(payload, list):
            return [self._strip(v) for v in payload]
        return None

    def test_all_values_nulled_renders_dashes(self):
        stats = self._strip(SAMPLE_STATS)
        stats["state"] = "running"  # keep the banner recognizable
        frame = render_dashboard(stats, self._strip(SAMPLE_HEALTH))
        assert "state=running" in frame
        assert "health=UNKNOWN" in frame
        assert "uptime=-s" in frame
        assert "cache_hit_rate=-" in frame
        # Latency needs a count to be worth a section; nulled = omitted.
        assert "p50=" not in frame
        assert "\x1b[" not in frame

    def test_blocks_missing_entirely(self):
        # Nothing but a state: no latency, slo, memory, pool... blocks.
        frame = render_dashboard({"state": "draining"}, {})
        assert "state=draining" in frame
        assert "cache_hit_rate=-" in frame

    def test_latency_block_missing_keys(self):
        stats = dict(SAMPLE_STATS)
        stats["latency"] = {"overall": {"count": 4}}  # no percentiles
        frame = render_dashboard(stats, SAMPLE_HEALTH)
        assert "p50=       -" in frame
        assert "n=4" in frame

    def test_non_numeric_garbage_renders_dashes(self):
        stats = dict(SAMPLE_STATS)
        stats["uptime_seconds"] = "soon"
        stats["memory"] = {"daemon_rss_bytes": "lots",
                           "max_rss_mb": None,
                           "leak_slope_bytes_per_request": True}
        frame = render_dashboard(stats, SAMPLE_HEALTH)
        assert "uptime=-s" in frame
        assert "daemon=-" in frame
        assert "leak=-/req" in frame

    def test_memory_line(self):
        stats = dict(SAMPLE_STATS)
        stats["memory"] = {
            "daemon_rss_bytes": 100 * 1024 * 1024,
            "daemon_peak_rss_bytes": 150 * 1024 * 1024,
            "children_peak_rss_bytes": 220 * 1024 * 1024,
            "pool_peak_rss_bytes": 210 * 1024 * 1024,
            "max_rss_mb": 512,
            "leak_slope_bytes_per_request": 2.5 * 1024 * 1024,
            "leak_window": 16,
        }
        frame = render_dashboard(stats, SAMPLE_HEALTH)
        assert "daemon=100MB" in frame
        assert "peak=150MB" in frame
        assert "children_peak=220MB" in frame
        assert "budget=512MB" in frame
        assert "leak=2MB/req" in frame

    def test_memory_line_absent_without_block(self):
        frame = render_dashboard(SAMPLE_STATS, SAMPLE_HEALTH)
        assert "memory    " not in frame
