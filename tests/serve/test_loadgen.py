"""The load generator against a live in-process daemon."""

import json

import pytest

from repro.serve import ServeSettings, SynthesisDaemon, build_server
from repro.serve.loadgen import run_loadgen
from repro.service.cache import ResultCache


@pytest.fixture
def stack(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    daemon = SynthesisDaemon(
        ServeSettings(workers=2, solver="debug-solve", timeout=10.0,
                      cache=cache, max_queue=64)
    )
    server = build_server(daemon, port=0)
    server.start()
    yield daemon, server
    daemon.stop(drain=False)
    server.stop()


def test_concurrent_clients_complete_everything(stack):
    daemon, server = stack
    problems = [(f"p{i}", f"text {i}") for i in range(12)]
    report = run_loadgen(server.url, problems, clients=4, deadline=60.0)
    assert report["clients"] == 4
    assert report["requests"] == 12
    assert report["completed"] == 12
    assert report["errors"] == 0
    assert report["latency"]["p50"] > 0
    assert report["latency"]["p99"] >= report["latency"]["p50"]
    # debug-solve always solves, so the solved set is the full stream.
    assert report["solved"] == sorted({name for name, _ in problems})


def test_repeat_round_hits_the_cache(stack):
    daemon, server = stack
    problems = [(f"p{i}", f"text {i}") for i in range(6)]
    report = run_loadgen(server.url, problems, clients=3, repeat=2,
                         deadline=60.0)
    assert report["requests"] == 12
    assert report["completed"] == 12
    assert report["cache_hits"] >= 6  # the whole second round
    assert daemon.cache_admissions >= 6


def test_backpressure_retries_are_honored_not_errors(tmp_path):
    daemon = SynthesisDaemon(
        ServeSettings(workers=1, solver="debug-sleep@0.2", timeout=10.0,
                      max_queue=2)
    )
    server = build_server(daemon, port=0)
    server.start()
    try:
        problems = [(f"p{i}", f"text {i}") for i in range(8)]
        report = run_loadgen(server.url, problems, clients=4, deadline=120.0)
        assert report["errors"] == 0
        assert report["completed"] == 8
        # With 1 worker, queue 2 and 4 concurrent clients the daemon must
        # have pushed back at least once — and every 429 was retried.
        assert report["rejected_retries"] >= 1
    finally:
        daemon.stop(drain=False)
        server.stop()


def test_report_is_json_serializable(stack):
    daemon, server = stack
    report = run_loadgen(server.url, [("p", "text")], clients=1,
                         deadline=30.0)
    json.dumps(report)


def test_latency_from_sketch_with_trace_ids(stack):
    daemon, server = stack
    problems = [(f"p{i}", f"text {i}") for i in range(8)]
    report = run_loadgen(server.url, problems, clients=2, deadline=60.0)
    latency = report["latency"]
    # The aggregate comes from the shared bounded-memory sketch, so its
    # count must equal the completed requests and the percentiles must
    # bracket the raw per-record latencies within the sketch's tolerance.
    assert latency["count"] == report["completed"]
    raw = sorted(r["latency"] for r in report["records"]
                 if r.get("state") == "done")
    assert raw[0] * 0.9 <= latency["p50"] <= raw[-1] * 1.1
    assert latency["mean"] > 0
    # Every completed record carries the daemon-minted trace id.
    for record in report["records"]:
        if record.get("state") == "done":
            assert record["trace_id"] and len(record["trace_id"]) == 32
