"""Tests for the normalized problem fingerprint."""

from repro.bench.suite import find_benchmark
from repro.service.fingerprint import (
    canonical_config,
    canonical_problem_text,
    problem_fingerprint,
)
from repro.synth.config import SynthConfig

MAX2 = """
(set-logic LIA)
(synth-fun f ((x Int) (y Int)) Int)
(declare-var x Int)
(declare-var y Int)
(constraint (>= (f x y) x))
(constraint (>= (f x y) y))
(constraint (or (= (f x y) x) (= (f x y) y)))
(check-synth)
"""

# Same problem: comment, blank lines and spacing jitter.
MAX2_REFORMATTED = """
; a max of two values
(set-logic LIA)

(synth-fun f ((x Int) (y Int)) Int)
(declare-var x Int)
(declare-var y Int)
(constraint (>=   (f x y) x))
(constraint (>= (f x y)   y))
(constraint (or (= (f x y) x) (= (f x y) y)))
(check-synth)
"""


class TestCanonicalization:
    def test_formatting_does_not_change_canonical_text(self):
        assert canonical_problem_text(MAX2) == canonical_problem_text(
            MAX2_REFORMATTED
        )

    def test_problem_object_and_text_agree(self):
        problem = find_benchmark("max2").problem()
        from repro.sygus.serializer import problem_to_sygus

        assert canonical_problem_text(problem) == canonical_problem_text(
            problem_to_sygus(problem)
        )

    def test_unparsable_text_falls_back_to_whitespace_normalization(self):
        assert canonical_problem_text("not sygus\n at  all") == "not sygus at all"

    def test_config_rendering_is_stable(self):
        assert canonical_config(SynthConfig()) == canonical_config(SynthConfig())
        assert canonical_config(None) == canonical_config(SynthConfig())


class TestFingerprint:
    def test_identical_problems_same_fingerprint(self):
        assert problem_fingerprint(MAX2, "dryadsynth") == problem_fingerprint(
            MAX2_REFORMATTED, "dryadsynth"
        )

    def test_solver_changes_fingerprint(self):
        assert problem_fingerprint(MAX2, "dryadsynth") != problem_fingerprint(
            MAX2, "cegqi"
        )

    def test_config_changes_fingerprint(self):
        fast = problem_fingerprint(MAX2, "dryadsynth", SynthConfig(timeout=1))
        slow = problem_fingerprint(MAX2, "dryadsynth", SynthConfig(timeout=9))
        assert fast != slow

    def test_different_problems_differ(self):
        other = MAX2.replace(">=", "<=")
        assert problem_fingerprint(MAX2, "s") != problem_fingerprint(other, "s")

    def test_fingerprint_is_hex_sha256(self):
        fp = problem_fingerprint(MAX2, "dryadsynth")
        assert len(fp) == 64
        int(fp, 16)
