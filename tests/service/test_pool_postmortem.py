"""Pool failure paths with flight recorders: killed workers leave post-mortems.

The satellite contract from the issue: a SIGKILLed worker and a
deadline-terminated worker must each yield a non-empty
``JobResult.postmortem`` recovered from the flight journal the dead worker
left behind, and the parent's merged registries must count the recoveries
deterministically.
"""

import os
import signal
import threading
import time

from repro import obs
from repro.service.jobs import CRASHED, TIMEOUT, UNSOLVED, SynthesisJob
from repro.service.pool import WorkerPool


def _job(solver, **kwargs):
    kwargs.setdefault("hard_timeout", 60)
    return SynthesisJob(problem_text="", solver=solver, **kwargs)


class TestSigkilledWorker:
    def test_postmortem_recovered_after_sigkill(self, tmp_path):
        """SIGKILL mid-job: the retried job still carries the post-mortem."""
        flight_dir = str(tmp_path / "flights")
        pool = WorkerPool(workers=1, max_retries=1, flight_dir=flight_dir)
        try:
            killed = {"pid": None}

            def killer():
                deadline = time.monotonic() + 10
                while time.monotonic() < deadline:
                    pids = pool.worker_pids()
                    if pids:
                        killed["pid"] = pids[0]
                        # Give the worker a beat to open its journal and
                        # write the job.start note before the kill lands.
                        time.sleep(0.3)
                        os.kill(pids[0], signal.SIGKILL)
                        return
                    time.sleep(0.02)

            thread = threading.Thread(target=killer)
            thread.start()
            with obs.recording() as recorder:
                results = pool.run([_job("debug-sleep@1.5", name="victim")])
            thread.join()
        finally:
            pool.close()
        assert killed["pid"] is not None
        (result,) = results
        assert result.status == UNSOLVED  # retry completed cleanly
        if result.attempts == 1:
            return  # rare: the kill landed before the first assignment
        assert result.postmortem is not None
        assert result.postmortem["meta"]["name"] == "victim"
        assert [n["name"] for n in result.postmortem["notes"]] == [
            "job.start"
        ]
        # No job.end note: the journal proves the worker died mid-job.
        counters = recorder.metrics.snapshot()["counters"]
        assert counters["pool.postmortems_recovered"] == 1

    def test_exhausted_retries_keep_the_postmortem(self, tmp_path):
        flight_dir = str(tmp_path / "flights")
        with WorkerPool(
            workers=1, max_retries=0, flight_dir=flight_dir
        ) as pool:
            (result,) = pool.run([_job("debug-exit@13", name="dying")])
        assert result.status == CRASHED
        assert result.postmortem is not None
        assert result.postmortem["meta"]["solver"] == "debug-exit@13"
        # The journal outlives the run for `dryadsynth postmortem`.
        kept = os.listdir(flight_dir)
        assert len(kept) == 1 and kept[0].endswith(".flight.jsonl")


class TestDeadlineTerminatedWorker:
    def test_hung_worker_yields_postmortem(self, tmp_path):
        flight_dir = str(tmp_path / "flights")
        job = _job("debug-hang", name="stuck", hard_timeout=1.0)
        with obs.recording() as recorder:
            with WorkerPool(
                workers=1, max_retries=0, flight_dir=flight_dir
            ) as pool:
                (result,) = pool.run([job])
        assert result.status == TIMEOUT
        assert result.postmortem is not None
        assert result.postmortem["meta"]["name"] == "stuck"
        notes = [n["name"] for n in result.postmortem["notes"]]
        assert notes == ["job.start"]  # hung before any further record
        counters = recorder.metrics.snapshot()["counters"]
        assert counters["pool.postmortems_recovered"] == 1

    def test_registry_merge_is_deterministic(self, tmp_path):
        """Two identical failing runs produce identical merged counters."""

        def run_once(flight_dir):
            with obs.recording() as recorder:
                with WorkerPool(
                    workers=1, max_retries=0, flight_dir=str(flight_dir)
                ) as pool:
                    pool.run([
                        _job("debug-hang", name="stuck", hard_timeout=1.0),
                        _job("debug-solve", name="fine"),
                    ])
            counters = recorder.metrics.snapshot()["counters"]
            return {
                name: value
                for name, value in counters.items()
                if name.startswith("pool.")
            }

        first = run_once(tmp_path / "a")
        second = run_once(tmp_path / "b")
        assert first == second
        assert first["pool.postmortems_recovered"] == 1
        assert first["pool.jobs_completed"] == 2


class TestJournalLifecycle:
    def test_clean_jobs_leave_no_journals(self, tmp_path):
        flight_dir = str(tmp_path / "flights")
        with WorkerPool(workers=2, flight_dir=flight_dir) as pool:
            results = pool.run(
                [_job("debug-solve", name=f"ok{i}") for i in range(4)]
            )
        assert all(r.postmortem is None for r in results)
        assert os.listdir(flight_dir) == []

    def test_without_flight_dir_no_postmortem(self):
        with WorkerPool(workers=1, max_retries=0) as pool:
            (result,) = pool.run([_job("debug-exit@13")])
        assert result.status == CRASHED
        assert result.postmortem is None


class TestDeadlineKilledSolverFrontier:
    """Satellite: a deadline-killed *real* solver run leaves a post-mortem
    whose forensics frontier names the last active subproblem-graph node."""

    def test_postmortem_names_last_graph_node(self, tmp_path):
        from repro.bench.quick_bench import demo_subset
        from repro.sygus.serializer import problem_to_sygus

        bench = next(b for b in demo_subset() if b.name == "qm-max3")
        job = SynthesisJob(
            problem_text=problem_to_sygus(bench.problem()),
            solver="dryadsynth",
            timeout=60.0,  # soft budget far beyond the hard deadline
            hard_timeout=2.0,
            name="qm-max3",
        )
        flight_dir = str(tmp_path / "flights")
        with WorkerPool(
            workers=1, max_retries=0, flight_dir=flight_dir
        ) as pool:
            (result,) = pool.run([job])
        assert result.status == TIMEOUT
        postmortem = result.postmortem
        assert postmortem is not None
        frontier = postmortem["frontier"]
        assert frontier is not None, (
            "a killed solver run must name the node it was working on"
        )
        assert len(frontier["node"]) == 12
        assert frontier.get("via")
