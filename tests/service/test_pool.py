"""Tests for the crash-tolerant worker pool.

These exercise the pool's contract from the issue: a worker that raises, a
worker that hangs past its deadline (parent terminates and retries), a
worker killed mid-job (crashed-then-retried, never a hung pool or a lost
job), first-finisher-wins cancellation, and cache hit/miss keyed by
fingerprint.
"""

import os
import signal
import threading
import time

import pytest

from repro.service.cache import ResultCache
from repro.service.jobs import (
    CANCELLED,
    CRASHED,
    SOLVED,
    TIMEOUT,
    UNSOLVED,
    SynthesisJob,
)
from repro.service.pool import PoolError, WorkerPool

MAX2_SL = """
(set-logic LIA)
(synth-fun f ((x Int) (y Int)) Int)
(declare-var x Int)
(declare-var y Int)
(constraint (>= (f x y) x))
(constraint (>= (f x y) y))
(constraint (or (= (f x y) x) (= (f x y) y)))
(check-synth)
"""


def _job(solver, **kwargs):
    kwargs.setdefault("hard_timeout", 60)
    return SynthesisJob(problem_text="", solver=solver, **kwargs)


class TestBasicExecution:
    def test_runs_real_jobs_in_submission_order(self):
        jobs = [
            SynthesisJob(problem_text=MAX2_SL, solver="dryadsynth", timeout=30,
                         name="a"),
            _job("debug-solve", name="b"),
        ]
        with WorkerPool(workers=2) as pool:
            results = pool.run(jobs)
        assert [r.name for r in results] == ["a", "b"]
        assert all(r.status == SOLVED for r in results)
        assert all(r.attempts == 1 for r in results)

    def test_more_jobs_than_workers(self):
        jobs = [_job("debug-solve", name=f"j{i}") for i in range(7)]
        with WorkerPool(workers=2, queue_size=3) as pool:
            results = pool.run(jobs)
        assert len(results) == 7
        assert all(r.status == SOLVED for r in results)

    def test_pool_reusable_until_closed(self):
        pool = WorkerPool(workers=1)
        try:
            assert pool.run([_job("debug-solve")])[0].status == SOLVED
            assert pool.run([_job("debug-sleep@0")])[0].status == UNSOLVED
        finally:
            pool.close()
        with pytest.raises(PoolError):
            pool.run([_job("debug-solve")])

    def test_progress_callback_sees_every_result(self):
        seen = []
        jobs = [_job("debug-solve", name=f"j{i}") for i in range(3)]
        with WorkerPool(workers=2) as pool:
            pool.run(jobs, progress=seen.append)
        assert sorted(r.name for r in seen) == ["j0", "j1", "j2"]


class TestCrashTolerance:
    def test_in_worker_exception_is_retried_then_reported(self):
        with WorkerPool(workers=1, max_retries=1) as pool:
            result = pool.run([_job("debug-raise")])[0]
        assert result.status == CRASHED
        assert result.attempts == 2
        assert len(result.failures) >= 1
        # Even a crashed job reports how long it queued before its (final)
        # assignment.
        assert result.queue_wait >= 0.0

    def test_hard_crash_is_retried(self, tmp_path):
        marker = str(tmp_path / "attempt.marker")
        with WorkerPool(workers=1, max_retries=1) as pool:
            result = pool.run([_job(f"debug-crash-once@{marker}")])[0]
        # First attempt os._exit()s the worker; the retry succeeds.
        assert result.status == UNSOLVED
        assert result.attempts == 2
        assert result.failures and "crashed" in result.failures[0]

    def test_persistent_hard_crash_reports_crashed(self):
        with WorkerPool(workers=1, max_retries=1) as pool:
            result = pool.run([_job("debug-exit@7")])[0]
        assert result.status == CRASHED
        assert result.attempts == 2
        assert len(result.failures) == 2

    def test_killing_worker_mid_job_crashed_then_retried(self):
        """SIGKILL a busy worker: the job must be retried, never lost."""
        pool = WorkerPool(workers=1, max_retries=1)
        try:
            killed = {"pid": None}

            def killer():
                deadline = time.monotonic() + 10
                while time.monotonic() < deadline:
                    pids = pool.worker_pids()
                    if pids:
                        killed["pid"] = pids[0]
                        os.kill(pids[0], signal.SIGKILL)
                        return
                    time.sleep(0.02)

            thread = threading.Thread(target=killer)
            thread.start()
            results = pool.run([_job("debug-sleep@1.0", name="victim")])
            thread.join()
        finally:
            pool.close()
        assert killed["pid"] is not None
        (result,) = results
        # Either the kill landed mid-job (crashed once, then retried and
        # completed) or — rarely — before assignment (clean first run).
        assert result.status == UNSOLVED
        if result.attempts == 2:
            assert any("crashed" in f for f in result.failures)

    def test_crash_does_not_lose_sibling_jobs(self):
        jobs = [_job("debug-exit@9", name="bad")] + [
            _job("debug-solve", name=f"ok{i}") for i in range(4)
        ]
        with WorkerPool(workers=2, max_retries=0) as pool:
            results = pool.run(jobs)
        assert len(results) == 5
        assert results[0].status == CRASHED
        assert all(r.status == SOLVED for r in results[1:])


class TestDeadlines:
    def test_hung_worker_terminated_and_retried(self):
        start = time.monotonic()
        with WorkerPool(workers=1, max_retries=1) as pool:
            result = pool.run(
                [SynthesisJob(problem_text="", solver="debug-hang",
                              hard_timeout=0.4)]
            )[0]
        elapsed = time.monotonic() - start
        assert result.status == TIMEOUT
        assert result.attempts == 2
        assert len(result.failures) == 2
        assert all("deadline" in f for f in result.failures)
        assert result.queue_wait >= 0.0
        assert elapsed < 30  # two deadlines plus termination overhead

    def test_no_retry_when_disabled(self):
        with WorkerPool(workers=1, max_retries=0) as pool:
            result = pool.run(
                [SynthesisJob(problem_text="", solver="debug-hang",
                              hard_timeout=0.3)]
            )[0]
        assert result.status == TIMEOUT
        assert result.attempts == 1


class TestRace:
    def test_first_finisher_wins_and_losers_cancelled(self):
        jobs = [
            _job("debug-sleep@30", name="slow"),
            _job("debug-solve@0.1", name="fast"),
        ]
        start = time.monotonic()
        with WorkerPool(workers=2) as pool:
            winner, results = pool.race(jobs)
        elapsed = time.monotonic() - start
        assert winner is not None and winner.name == "fast"
        statuses = {r.name: r.status for r in results}
        assert statuses == {"slow": CANCELLED, "fast": SOLVED}
        # Both jobs were assigned to workers, so both carry a queue wait —
        # including the cancelled loser.
        assert all(r.queue_wait >= 0.0 for r in results)
        assert elapsed < 10  # the 30s sleeper was terminated, not awaited

    def test_race_with_no_winner(self):
        jobs = [_job("debug-sleep@0", name=f"j{i}") for i in range(3)]
        with WorkerPool(workers=2) as pool:
            winner, results = pool.race(jobs)
        assert winner is None
        assert all(r.status == UNSOLVED for r in results)

    def test_queued_jobs_cancelled_on_win(self):
        jobs = [_job("debug-solve@0.1", name="fast")] + [
            _job("debug-sleep@30", name=f"queued{i}") for i in range(5)
        ]
        with WorkerPool(workers=1) as pool:
            winner, results = pool.race(jobs)
        assert winner.name == "fast"
        assert all(r.status == CANCELLED for r in results[1:])


class TestPoolCache:
    def test_cache_hit_skips_execution(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        job = SynthesisJob(problem_text=MAX2_SL, solver="debug-solve",
                           hard_timeout=60)
        with WorkerPool(workers=1, cache=cache) as pool:
            first = pool.run([job])[0]
        assert not first.from_cache
        again = SynthesisJob(problem_text=MAX2_SL, solver="debug-solve",
                             hard_timeout=60)
        with WorkerPool(workers=1, cache=cache) as pool:
            second = pool.run([again])[0]
        assert second.from_cache
        assert second.solution_text == first.solution_text
        assert cache.hits == 1

    def test_invalidation_forces_rerun(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        job = SynthesisJob(problem_text=MAX2_SL, solver="debug-solve",
                           hard_timeout=60)
        with WorkerPool(workers=1, cache=cache) as pool:
            pool.run([job])
            cache.invalidate(job.fingerprint())
            rerun = pool.run(
                [SynthesisJob(problem_text=MAX2_SL, solver="debug-solve",
                              hard_timeout=60)]
            )[0]
        assert not rerun.from_cache

    def test_different_solver_or_config_misses(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        with WorkerPool(workers=1, cache=cache) as pool:
            pool.run([SynthesisJob(problem_text=MAX2_SL, solver="debug-solve",
                                   hard_timeout=60)])
            other = pool.run(
                [SynthesisJob(problem_text=MAX2_SL, solver="debug-sleep@0",
                              hard_timeout=60)]
            )[0]
        assert not other.from_cache

    def test_crashed_results_not_cached(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        job = SynthesisJob(problem_text=MAX2_SL, solver="debug-raise",
                           hard_timeout=60)
        with WorkerPool(workers=1, cache=cache, max_retries=0) as pool:
            result = pool.run([job])[0]
        assert result.status == CRASHED
        assert len(cache) == 0


class TestSubmitAPI:
    def test_submit_returns_ticket_that_waits(self):
        with WorkerPool(workers=1) as pool:
            ticket = pool.submit(_job("debug-solve", name="t"))
            result = ticket.wait(timeout=30)
        assert result is not None
        assert result.status == SOLVED
        assert ticket.done

    def test_tickets_resolve_out_of_order(self):
        with WorkerPool(workers=2) as pool:
            slow = pool.submit(_job("debug-sleep@0.4", name="slow"))
            fast = pool.submit(_job("debug-solve", name="fast"))
            fast_result = fast.wait(timeout=30)
            assert fast_result.status == SOLVED
            assert not slow.done  # still running while fast already finished
            assert slow.wait(timeout=30).status == UNSOLVED

    def test_on_complete_fires_per_ticket(self):
        seen = []
        with WorkerPool(workers=1) as pool:
            tickets = [
                pool.submit(_job("debug-solve", name=f"j{i}"),
                            on_complete=lambda r: seen.append(r.name))
                for i in range(3)
            ]
            for ticket in tickets:
                ticket.wait(timeout=30)
        assert sorted(seen) == ["j0", "j1", "j2"]

    def test_warm_workers_reused_across_run_calls(self):
        with WorkerPool(workers=1) as pool:
            first = pool.run([_job("debug-solve", name="a")])
            second = pool.run([_job("debug-solve", name="b")])
            stats = pool.pool_stats()
        assert first[0].status == SOLVED and second[0].status == SOLVED
        assert stats["jobs_dispatched"] == 2
        assert stats["workers_spawned"] == 1  # same process served both runs


class TestLiveViewBounded:
    """The `/jobs` live view must not grow without bound (satellite fix)."""

    def _fake_job(self, index):
        return SynthesisJob(problem_text="", solver="debug-solve",
                            job_id=f"job-{index}", name=f"j{index}",
                            hard_timeout=60)

    def test_live_view_bounded_across_10k_jobs(self):
        pool = WorkerPool(workers=1, live_cap=100)
        try:
            for index in range(10_000):
                job = self._fake_job(index)
                pool._live_update(job)
                pool._live_update(job, state="done", status=SOLVED,
                                  _done_at=time.monotonic())
            snapshot = pool.jobs_snapshot()
            assert len(snapshot) <= 100
            # The survivors are the *recent* history, not the oldest.
            names = {entry["job_id"] for entry in snapshot}
            assert "job-9999" in names
            assert "job-0" not in names
        finally:
            pool.close()

    def test_ttl_expires_done_entries(self):
        pool = WorkerPool(workers=1, live_ttl=0.05)
        try:
            job = self._fake_job(0)
            pool._live_update(job)
            pool._live_update(job, state="done", status=SOLVED,
                              _done_at=time.monotonic())
            time.sleep(0.1)
            # Eviction runs on the next insert.
            pool._live_update(self._fake_job(1))
            names = {entry["job_id"] for entry in pool.jobs_snapshot()}
            assert "job-0" not in names
            assert "job-1" in names
        finally:
            pool.close()

    def test_running_jobs_never_evicted(self):
        pool = WorkerPool(workers=1, live_cap=5)
        try:
            running = self._fake_job(0)
            pool._live_update(running, state="running")
            for index in range(1, 50):
                job = self._fake_job(index)
                pool._live_update(job, state="done", status=SOLVED,
                                  _done_at=time.monotonic())
            names = {entry["job_id"] for entry in pool.jobs_snapshot()}
            assert "job-0" in names  # live work survives any cap pressure
            assert len(names) <= 6
        finally:
            pool.close()

    def test_real_jobs_respect_cap(self):
        with WorkerPool(workers=2, live_cap=10) as pool:
            results = pool.run(
                [_job("debug-solve", name=f"j{i}") for i in range(30)]
            )
            assert len(results) == 30
            assert len(pool.jobs_snapshot()) <= 10


class TestShutdown:
    def test_close_reaps_all_workers(self):
        pool = WorkerPool(workers=3)
        pool.run([_job("debug-solve", name=f"j{i}") for i in range(3)])
        pids = pool.worker_pids()
        assert pids
        pool.close()
        deadline = time.monotonic() + 5
        while time.monotonic() < deadline:
            alive = [pid for pid in pids if _pid_alive(pid)]
            if not alive:
                break
            time.sleep(0.05)
        assert not [pid for pid in pids if _pid_alive(pid)]


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True
