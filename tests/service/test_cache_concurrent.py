"""Concurrent ResultCache access from multiple processes.

The daemon shares one on-disk cache between its own admission path and any
number of sibling processes (a second daemon, a batch run).  The contract
under concurrent ``put``/``get`` of the *same* fingerprint: readers never
observe a torn entry (half of writer A, half of writer B, or a partial
file), and after the dust settles the entry is the last writer's payload
in full.  Both properties come from the atomic tmp-file + ``os.replace``
write; these tests are the regression net around that mechanism.
"""

import json
import multiprocessing
import os
import time

from repro.service.cache import ResultCache
from repro.service.jobs import SOLVED, JobResult

FINGERPRINT = "ab" + "0" * 62

#: Payloads big enough that a torn write would be observable: a reader
#: that saw part of one and part of the other could not json-decode a
#: consistent record.
PAYLOAD_SIZE = 64 * 1024


def make_result(tag: str) -> JobResult:
    return JobResult(
        job_id=f"job-{tag}",
        name=f"writer-{tag}",
        solver="debug-solve",
        status=SOLVED,
        solution_text=tag * PAYLOAD_SIZE,
        wall_time=1.0,
    )


def hammer_writer(root: str, tag: str, rounds: int, barrier) -> None:
    cache = ResultCache(root)
    result = make_result(tag)
    barrier.wait()
    for _ in range(rounds):
        cache.put(FINGERPRINT, result)


def hammer_reader(root: str, rounds: int, barrier, failures) -> None:
    cache = ResultCache(root)
    barrier.wait()
    for _ in range(rounds):
        result = cache.get(FINGERPRINT)
        if result is None:
            continue  # not written yet - a miss, never a torn read
        tag = result.name.split("-", 1)[1]
        if result.solution_text != tag * PAYLOAD_SIZE:
            failures.put(f"torn read: name={result.name} "
                         f"len={len(result.solution_text)}")
            return


class TestConcurrentAccess:
    def test_two_processes_put_and_get_same_fingerprint(self, tmp_path):
        """Writers A and B race; readers must always see one whole entry."""
        root = str(tmp_path / "cache")
        ctx = multiprocessing.get_context("fork")
        barrier = ctx.Barrier(4)
        failures = ctx.Queue()
        processes = [
            ctx.Process(target=hammer_writer, args=(root, "A", 200, barrier)),
            ctx.Process(target=hammer_writer, args=(root, "B", 200, barrier)),
            ctx.Process(target=hammer_reader,
                        args=(root, 400, barrier, failures)),
            ctx.Process(target=hammer_reader,
                        args=(root, 400, barrier, failures)),
        ]
        for process in processes:
            process.start()
        for process in processes:
            process.join(timeout=120)
            assert process.exitcode == 0
        assert failures.empty(), failures.get()
        # The surviving entry is one writer's payload, complete.
        final = ResultCache(root).get(FINGERPRINT)
        assert final is not None
        tag = final.name.split("-", 1)[1]
        assert tag in ("A", "B")
        assert final.solution_text == tag * PAYLOAD_SIZE

    def test_last_writer_wins(self, tmp_path):
        root = str(tmp_path / "cache")
        ctx = multiprocessing.get_context("fork")
        barrier = ctx.Barrier(2)
        first = ctx.Process(target=hammer_writer,
                            args=(root, "A", 50, barrier))
        second = ctx.Process(target=hammer_writer,
                             args=(root, "B", 50, barrier))
        first.start()
        second.start()
        first.join(timeout=60)
        second.join(timeout=60)
        assert first.exitcode == 0 and second.exitcode == 0
        # Sequential final write from this process is the definitive last
        # writer; the entry must be exactly its payload.
        cache = ResultCache(root)
        cache.put(FINGERPRINT, make_result("C"))
        final = cache.get(FINGERPRINT)
        assert final.name == "writer-C"
        assert final.solution_text == "C" * PAYLOAD_SIZE

    def test_no_tmp_litter_after_concurrent_writes(self, tmp_path):
        root = str(tmp_path / "cache")
        ctx = multiprocessing.get_context("fork")
        barrier = ctx.Barrier(2)
        writers = [
            ctx.Process(target=hammer_writer,
                        args=(root, tag, 100, barrier))
            for tag in ("A", "B")
        ]
        for writer in writers:
            writer.start()
        for writer in writers:
            writer.join(timeout=60)
            assert writer.exitcode == 0
        shard = os.path.join(root, FINGERPRINT[:2])
        leftovers = [name for name in os.listdir(shard)
                     if name.startswith(".tmp-")]
        assert leftovers == []
