"""Tests for the persistent fingerprint-keyed result cache."""

import json
import os

from repro.service.cache import CACHE_SCHEMA, ResultCache
from repro.service.jobs import CANCELLED, CRASHED, SOLVED, UNSOLVED, JobResult


def _result(status=SOLVED, **kwargs):
    defaults = dict(
        job_id="j1",
        name="max2",
        solver="dryadsynth",
        status=status,
        solution_text="(define-fun f ((x Int)) Int x)",
        wall_time=0.25,
        stats={"smt_checks": 2},
    )
    defaults.update(kwargs)
    return JobResult(**defaults)


FP = "ab" + "0" * 62
FP2 = "cd" + "1" * 62


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        assert cache.get(FP) is None
        cache.put(FP, _result())
        hit = cache.get(FP)
        assert hit is not None
        assert hit.status == SOLVED
        assert hit.fingerprint == FP
        assert cache.misses == 1 and cache.hits == 1

    def test_persists_across_instances(self, tmp_path):
        root = str(tmp_path / "cache")
        ResultCache(root).put(FP, _result())
        reloaded = ResultCache(root)
        assert reloaded.get(FP).solution_text.startswith("(define-fun")

    def test_sharded_layout(self, tmp_path):
        root = tmp_path / "cache"
        cache = ResultCache(str(root))
        cache.put(FP, _result())
        assert (root / "ab" / f"{FP}.json").exists()

    def test_unsolved_and_timeout_are_cacheable(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        cache.put(FP, _result(status=UNSOLVED, solution_text=None))
        cache.put(FP2, _result(status="timeout", solution_text=None))
        assert cache.get(FP).status == UNSOLVED
        assert cache.get(FP2).status == "timeout"

    def test_crashed_and_cancelled_are_not_cached(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        cache.put(FP, _result(status=CRASHED))
        cache.put(FP2, _result(status=CANCELLED))
        assert FP not in cache
        assert FP2 not in cache

    def test_invalidate(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        cache.put(FP, _result())
        assert cache.invalidate(FP)
        assert cache.get(FP) is None
        assert not cache.invalidate(FP)

    def test_schema_mismatch_reads_as_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        cache.put(FP, _result())
        path = cache._path(FP)
        with open(path) as handle:
            data = json.load(handle)
        data["schema"] = CACHE_SCHEMA + 1
        with open(path, "w") as handle:
            json.dump(data, handle)
        assert cache.get(FP) is None

    def test_torn_entry_reads_as_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        cache.put(FP, _result())
        with open(cache._path(FP), "w") as handle:
            handle.write('{"schema": 1, "result": {tru')
        assert cache.get(FP) is None

    def test_len_contains_and_clear(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        cache.put(FP, _result())
        cache.put(FP2, _result())
        assert len(cache) == 2
        assert FP in cache
        assert sorted(cache.fingerprints()) == sorted([FP, FP2])
        cache.clear()
        assert len(cache) == 0

    def test_default_dir_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE_CACHE", str(tmp_path / "envcache"))
        cache = ResultCache()
        assert cache.root == str(tmp_path / "envcache")
