"""Tests for SynthesisJob / JobResult and worker-side execution."""

import json

import pytest

from repro.bench.suite import find_benchmark
from repro.service.jobs import (
    CRASHED,
    SOLVED,
    TIMEOUT,
    UNSOLVED,
    JobResult,
    SynthesisJob,
    execute_job,
    parse_solution_text,
)
from repro.synth.config import SynthConfig

MAX2_SL = """
(set-logic LIA)
(synth-fun f ((x Int) (y Int)) Int)
(declare-var x Int)
(declare-var y Int)
(constraint (>= (f x y) x))
(constraint (>= (f x y) y))
(constraint (or (= (f x y) x) (= (f x y) y)))
(check-synth)
"""


class TestSynthesisJob:
    def test_from_problem_round_trips_as_text(self):
        problem = find_benchmark("max2").problem()
        job = SynthesisJob.from_problem(problem, solver="cegqi", timeout=5)
        assert "(synth-fun" in job.problem_text
        assert job.name == "max2"
        assert job.effective_timeout == 5

    def test_effective_hard_timeout_derived_from_soft(self):
        job = SynthesisJob(problem_text="", timeout=10)
        assert job.effective_hard_timeout == 10 * 1.5 + 5.0
        explicit = SynthesisJob(problem_text="", timeout=10, hard_timeout=2)
        assert explicit.effective_hard_timeout == 2
        unlimited = SynthesisJob(problem_text="")
        assert unlimited.effective_hard_timeout is None

    def test_run_config_applies_soft_timeout(self):
        job = SynthesisJob(
            problem_text="", config=SynthConfig(max_height=2), timeout=3
        )
        config = job.run_config()
        assert config.timeout == 3
        assert config.max_height == 2

    def test_job_is_picklable(self):
        import pickle

        job = SynthesisJob(problem_text=MAX2_SL, solver="dryadsynth", timeout=1)
        clone = pickle.loads(pickle.dumps(job))
        assert clone.problem_text == job.problem_text
        assert clone.config == job.config


class TestJobResult:
    def test_json_round_trip(self):
        result = JobResult(
            "j1",
            "max2",
            "dryadsynth",
            SOLVED,
            solution_text="(define-fun f ((x Int)) Int x)",
            solution_size=1,
            wall_time=0.5,
            stats={"smt_checks": 3},
            attempts=2,
            failures=["crashed: boom"],
        )
        data = json.loads(json.dumps(result.to_json()))
        clone = JobResult.from_json(data)
        assert clone == result
        assert clone.solved


class TestExecuteJob:
    def test_solves_real_problem(self):
        job = SynthesisJob(problem_text=MAX2_SL, solver="dryadsynth", timeout=30)
        result = execute_job(job)
        assert result.status == SOLVED
        assert result.solution_text.startswith("(define-fun f")
        assert result.solution_size >= 1
        assert result.stats["smt_checks"] >= 0

    def test_solution_text_parses_back_and_verifies(self):
        from repro.sygus.parser import parse_sygus_text

        problem = parse_sygus_text(MAX2_SL)
        job = SynthesisJob(problem_text=MAX2_SL, solver="dryadsynth", timeout=30)
        result = execute_job(job)
        body = parse_solution_text(problem, result.solution_text)
        ok, _ = problem.verify(body)
        assert ok

    def test_unparsable_problem_is_crashed_not_raised(self):
        job = SynthesisJob(problem_text="(this is not sygus", solver="dryadsynth")
        result = execute_job(job)
        assert result.status == CRASHED
        assert result.error

    def test_timeout_reported(self):
        job = SynthesisJob(
            problem_text=MAX2_SL,
            solver="height-enum",
            timeout=0.0001,
        )
        result = execute_job(job)
        assert result.status in (TIMEOUT, UNSOLVED)

    def test_fixed_height_solver(self):
        job = SynthesisJob(
            problem_text=MAX2_SL, solver="fixed-height@2", timeout=30
        )
        result = execute_job(job)
        assert result.status == SOLVED
        assert result.stats["heights_tried"] == 1

    def test_debug_raise_is_contained(self):
        result = execute_job(SynthesisJob(problem_text="", solver="debug-raise"))
        assert result.status == CRASHED
        assert "debug-raise" in result.error

    def test_multi_function_problem(self):
        multi = """
(set-logic LIA)
(synth-fun f ((x Int)) Int)
(synth-fun g ((x Int)) Int)
(declare-var x Int)
(constraint (= (f x) (+ x 2)))
(constraint (= (g x) (- x 2)))
(check-synth)
"""
        result = execute_job(
            SynthesisJob(problem_text=multi, solver="dryadsynth", timeout=30)
        )
        assert result.status == SOLVED
        assert "(define-fun f" in result.solution_text
        assert "(define-fun g" in result.solution_text


class TestParseSolutionText:
    def test_rejects_non_define_fun(self):
        from repro.sygus.parser import SygusParseError, parse_sygus_text

        problem = parse_sygus_text(MAX2_SL)
        with pytest.raises(SygusParseError):
            parse_solution_text(problem, "(constraint true)")

    def test_keeps_interpreted_operators(self):
        problem = find_benchmark("double-2").problem()
        text = "(define-fun f ((x Int)) Int (double (double x)))"
        body = parse_solution_text(problem, text)
        ok, _ = problem.verify(body)
        assert ok
