"""End-to-end RSS-budget enforcement: over-budget workers die, pools don't.

The acceptance contract from the issue: a job that exceeds ``max_rss_mb``
is terminated *by the parent*, comes back with status ``oom_budget`` (not
a pool crash), and its post-mortem names the last active node — exercised
with the deliberately-allocating ``debug-alloc`` solver stub.
"""

import os

from repro import obs
from repro.obs.flight import render_postmortem
from repro.service.jobs import OOM_BUDGET, SOLVED, UNSOLVED, SynthesisJob
from repro.service.pool import WorkerPool


def _job(solver, **kwargs):
    kwargs.setdefault("hard_timeout", 60)
    return SynthesisJob(problem_text="", solver=solver, **kwargs)


def _budget_mb(headroom_mb):
    """An RSS budget ``headroom_mb`` above the *current* process's RSS.

    A forked worker starts at its parent's resident size, so an absolute
    budget that looks generous in isolation is already blown when the
    whole suite's parent has grown — the budget must be relative.
    """
    from repro.obs import rusage

    return rusage.process_rss_bytes() / (1024 * 1024) + headroom_mb


class TestOomBudgetKill:
    def test_over_budget_job_is_killed_not_the_pool(self, tmp_path):
        flight_dir = str(tmp_path / "flights")
        budget = _budget_mb(100)
        with obs.recording() as recorder:
            with WorkerPool(
                workers=1,
                max_retries=0,
                max_rss_mb=budget,
                rss_poll_interval=0.1,
                flight_dir=flight_dir,
            ) as pool:
                # 400 MB against a (current + 100) MB budget: the worker
                # must journal its node and balloon well past the line,
                # held long enough that the RSS poll (every 0.1s) is what
                # ends the job.
                (victim,) = pool.run([
                    _job("debug-alloc@400:30", name="balloon")
                ])
                # The pool survives: a follow-up job on the same pool
                # completes normally on a respawned worker.
                (survivor,) = pool.run([_job("debug-solve", name="after")])

        assert victim.status == OOM_BUDGET
        assert any("oom_budget" in f for f in victim.failures)
        assert survivor.status == SOLVED

        # Post-mortem: recovered journal, kill cause, and the frontier
        # naming the node the solver was ballooning under (400 = 0x190).
        postmortem = victim.postmortem
        assert postmortem is not None
        kill = postmortem["kill"]
        assert kill["cause"] == "oom_budget"
        assert kill["last_rss_bytes"] > budget * 1024 * 1024
        assert postmortem["frontier"]["node"] == "alloc00000190"
        rendered = render_postmortem(postmortem)
        assert "RSS budget exceeded; parent terminated worker" in rendered

        counters = recorder.metrics.snapshot()["counters"]
        assert counters["pool.oom_budget_kills"] == 1
        assert counters["pool.postmortems_recovered"] == 1

    def test_within_budget_job_is_untouched(self):
        with WorkerPool(
            workers=1, max_retries=0, max_rss_mb=4096,
            rss_poll_interval=0.1,
        ) as pool:
            (result,) = pool.run([
                _job("debug-alloc@16:0.3", name="small")
            ])
        assert result.status == UNSOLVED

    def test_no_budget_means_no_kill(self):
        # Gauges-only mode: polling without a budget must never terminate.
        with obs.recording() as recorder:
            with WorkerPool(
                workers=1, max_retries=0, rss_poll_interval=0.1
            ) as pool:
                (result,) = pool.run([
                    _job("debug-alloc@128:0.5", name="unbudgeted")
                ])
        assert result.status == UNSOLVED
        counters = recorder.metrics.snapshot()["counters"]
        assert "pool.oom_budget_kills" not in counters


class TestRssGauges:
    def test_worker_rss_gauges_published(self):
        with obs.recording() as recorder:
            with WorkerPool(workers=1, rss_poll_interval=0.05) as pool:
                pool.run([_job("debug-sleep@0.5", name="watched")])
                stats = pool.pool_stats()
        gauges = recorder.metrics.snapshot()["gauges"]
        assert gauges.get("pool.worker.0.rss_bytes", 0) > 1024 * 1024
        assert gauges.get("pool.peak_rss_bytes", 0) > 1024 * 1024
        # pool_stats mirrors the same numbers for /v1/stats.
        assert stats["max_rss_mb"] is None
        assert all(
            rss > 1024 * 1024 for rss in stats["worker_rss_bytes"].values()
        )

    def test_oom_status_is_not_cached(self, tmp_path):
        """An oom_budget result is budget-dependent, so it must never be
        served from the result cache to a later (differently-budgeted) run."""
        from repro.service.cache import ResultCache
        from repro.service.jobs import TERMINAL_STATUSES

        assert OOM_BUDGET not in TERMINAL_STATUSES
        cache = ResultCache(str(tmp_path / "cache"))
        job = SynthesisJob(
            problem_text="(check-synth)", solver="debug-alloc@400:30",
            hard_timeout=60,
        )
        with WorkerPool(
            workers=1, max_retries=0, max_rss_mb=_budget_mb(100),
            rss_poll_interval=0.1, cache=cache,
        ) as pool:
            (result,) = pool.run([job])
        assert result.status == OOM_BUDGET
        assert cache.get(job.fingerprint()) is None
