"""Tests for SyGuS problem objects and invariant problems."""

from repro.lang import (
    add,
    and_,
    eq,
    ge,
    implies,
    int_var,
    ite,
    lt,
    not_,
    or_,
    sub,
)
from repro.lang.sorts import BOOL, INT
from repro.sygus.grammar import clia_grammar, qm_grammar
from repro.sygus.problem import InvariantProblem, Solution, SygusProblem, SynthFun

x, y = int_var("x"), int_var("y")


def _max2_problem():
    fun = SynthFun("f", (x, y), INT, clia_grammar((x, y)))
    fx = fun.apply((x, y))
    spec = and_(ge(fx, x), ge(fx, y), or_(eq(fx, x), eq(fx, y)))
    return SygusProblem(fun, spec, (x, y), track="CLIA", name="max2")


class TestSygusProblem:
    def test_invocations(self):
        problem = _max2_problem()
        assert len(problem.invocations()) == 1
        assert problem.is_single_invocation()

    def test_multi_invocation_detection(self):
        fun = SynthFun("f", (x, y), INT, clia_grammar((x, y)))
        spec = eq(fun.apply((x, y)), fun.apply((y, x)))
        problem = SygusProblem(fun, spec, (x, y))
        assert not problem.is_single_invocation()

    def test_instantiate(self):
        problem = _max2_problem()
        body = ite(ge(x, y), x, y)
        instantiated = problem.instantiate(body)
        from repro.lang.traversal import contains_app

        assert not contains_app(instantiated, "f")

    def test_spec_holds_concrete(self):
        problem = _max2_problem()
        good = ite(ge(x, y), x, y)
        bad = x
        assert problem.spec_holds(good, {"x": 1, "y": 5})
        assert not problem.spec_holds(bad, {"x": 1, "y": 5})

    def test_verify_accepts_correct_solution(self):
        problem = _max2_problem()
        ok, cex = problem.verify(ite(ge(x, y), x, y))
        assert ok and cex is None

    def test_verify_rejects_with_counterexample(self):
        problem = _max2_problem()
        ok, cex = problem.verify(x)
        assert not ok
        assert cex["y"] > cex["x"]
        assert set(cex) >= {"x", "y"}

    def test_verify_inlines_interpreted_functions(self):
        from repro.lang import apply_fn

        fun = SynthFun("f", (x, y), INT, qm_grammar((x, y)))
        fx = fun.apply((x, y))
        spec = eq(fx, ite(ge(x, y), x, y))
        problem = SygusProblem(fun, spec, (x, y))
        body = add(x, apply_fn("qm", (sub(y, x), 0), INT))
        ok, _ = problem.verify(body)
        assert ok

    def test_with_spec_preserves_identity_fields(self):
        problem = _max2_problem()
        derived = problem.with_spec(ge(fun_apply(problem), x), "/sub")
        assert derived.name == "max2/sub"
        assert derived.synth_fun is problem.synth_fun


def fun_apply(problem):
    return problem.synth_fun.apply(problem.synth_fun.params)


class TestSolution:
    def test_metrics_and_rendering(self):
        problem = _max2_problem()
        body = ite(ge(x, y), x, y)
        solution = Solution(problem, body, engine="test", time_seconds=0.5)
        assert solution.size == 6
        assert solution.height == 3
        assert solution.define_fun() == (
            "(define-fun f ((x Int) (y Int)) Int (ite (>= x y) x y))"
        )


class TestInvariantProblem:
    def test_from_updates_builds_relational_trans(self):
        inv = InvariantProblem.from_updates(
            (x,),
            eq(x, 0),
            (add(x, 1),),
            ge(x, 0),
        )
        primed = InvariantProblem.primed(x)
        assert inv.trans is eq(primed, add(x, 1))

    def test_to_sygus_structure(self):
        inv = InvariantProblem.from_updates(
            (x,),
            eq(x, 0),
            (ite(lt(x, 10), add(x, 1), x),),
            implies(not_(lt(x, 10)), eq(x, 10)),
        )
        problem = inv.to_sygus()
        assert problem.track == "INV"
        assert problem.synth_fun.return_sort is BOOL
        assert problem.invariant is inv
        assert len(problem.invocations()) == 2  # inv(x) and inv(x!)

    def test_good_invariant_verifies(self):
        from repro.lang import le

        inv = InvariantProblem.from_updates(
            (x,),
            eq(x, 0),
            (ite(lt(x, 10), add(x, 1), x),),
            implies(not_(lt(x, 10)), eq(x, 10)),
        )
        problem = inv.to_sygus()
        # A precise invariant: 0 <= x <= 10.
        ok, _ = problem.verify(and_(ge(x, 0), le(x, 10)))
        assert ok

    def test_bad_invariant_rejected(self):
        from repro.lang import le

        inv = InvariantProblem.from_updates(
            (x,),
            eq(x, 0),
            (ite(lt(x, 10), add(x, 1), x),),
            implies(not_(lt(x, 10)), eq(x, 10)),
        )
        problem = inv.to_sygus()
        ok, cex = problem.verify(le(x, 100))  # not strong enough for post
        assert not ok and cex is not None
