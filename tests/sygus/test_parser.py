"""Tests for the SyGuS-IF parser."""

import pytest

from repro.lang import Kind, evaluate
from repro.lang.sorts import BOOL, INT
from repro.sygus.parser import SygusParseError, parse_sygus_text

MAX2_NO_GRAMMAR = """
(set-logic LIA)
(synth-fun max2 ((x Int) (y Int)) Int)
(declare-var x Int)
(declare-var y Int)
(constraint (>= (max2 x y) x))
(constraint (>= (max2 x y) y))
(constraint (or (= (max2 x y) x) (= (max2 x y) y)))
(check-synth)
"""

MAX2_WITH_GRAMMAR_V1 = """
(set-logic LIA)
(synth-fun max2 ((x Int) (y Int)) Int
  ((Start Int (x y 0 1 (+ Start Start) (- Start Start)
               (ite StartBool Start Start)))
   (StartBool Bool ((and StartBool StartBool) (not StartBool)
                    (<= Start Start) (>= Start Start)))))
(declare-var x Int)
(declare-var y Int)
(constraint (>= (max2 x y) x))
(constraint (>= (max2 x y) y))
(constraint (or (= (max2 x y) x) (= (max2 x y) y)))
(check-synth)
"""

MAX2_WITH_GRAMMAR_V2 = """
(set-logic LIA)
(synth-fun max2 ((x Int) (y Int)) Int
  ((Start Int) (StartBool Bool))
  ((Start Int (x y (Constant Int) (+ Start Start) (ite StartBool Start Start)))
   (StartBool Bool ((>= Start Start)))))
(declare-var x Int)
(declare-var y Int)
(constraint (>= (max2 x y) x))
(check-synth)
"""

INV_PROBLEM = """
(set-logic LIA)
(synth-inv inv_fun ((x Int)))
(define-fun pre_fun ((x Int)) Bool (= x 0))
(define-fun trans_fun ((x Int) (x! Int)) Bool (= x! (ite (< x 100) (+ x 1) x)))
(define-fun post_fun ((x Int)) Bool (=> (not (< x 100)) (= x 100)))
(inv-constraint inv_fun pre_fun trans_fun post_fun)
(check-synth)
"""

WITH_DEFINE_FUN = """
(set-logic LIA)
(define-fun double ((a Int)) Int (+ a a))
(synth-fun f ((x Int)) Int)
(declare-var x Int)
(constraint (= (f x) (double (double x))))
(check-synth)
"""


class TestBasicParsing:
    def test_default_grammar_problem(self):
        problem = parse_sygus_text(MAX2_NO_GRAMMAR, name="max2")
        assert problem.fun_name == "max2"
        assert problem.track == "CLIA"
        assert len(problem.synth_fun.params) == 2
        assert problem.synth_fun.return_sort is INT
        assert problem.spec.kind is Kind.AND

    def test_v1_grammar(self):
        problem = parse_sygus_text(MAX2_WITH_GRAMMAR_V1)
        assert problem.track == "General"
        grammar = problem.synth_fun.grammar
        assert grammar.start == "Start"
        assert grammar.nonterminals == {"Start": INT, "StartBool": BOOL}
        from repro.lang import int_var, ite, ge

        x, y = int_var("x"), int_var("y")
        assert grammar.generates(ite(ge(x, y), x, y))

    def test_v2_grammar(self):
        problem = parse_sygus_text(MAX2_WITH_GRAMMAR_V2)
        grammar = problem.synth_fun.grammar
        from repro.lang import int_const

        assert grammar.generates(int_const(17))  # via (Constant Int)

    def test_solution_round_trip(self):
        from repro.lang import int_var, ite, ge

        problem = parse_sygus_text(MAX2_NO_GRAMMAR)
        x, y = int_var("x"), int_var("y")
        ok, _ = problem.verify(ite(ge(x, y), x, y))
        assert ok


class TestInvTrack:
    def test_inv_constraint_expansion(self):
        problem = parse_sygus_text(INV_PROBLEM)
        assert problem.track == "INV"
        assert problem.invariant is not None
        assert problem.synth_fun.return_sort is BOOL
        assert len(problem.invocations()) == 2

    def test_invariant_components(self):
        problem = parse_sygus_text(INV_PROBLEM)
        inv = problem.invariant
        assert evaluate(inv.pre, {"x": 0}) is True
        assert evaluate(inv.pre, {"x": 1}) is False
        assert evaluate(inv.post, {"x": 100}) is True
        assert evaluate(inv.post, {"x": 101}) is False
        assert evaluate(inv.trans, {"x": 3, "x!": 4}) is True
        assert evaluate(inv.trans, {"x": 3, "x!": 5}) is False

    def test_known_invariant_verifies(self):
        from repro.lang import and_, ge, le, int_var

        problem = parse_sygus_text(INV_PROBLEM)
        x = int_var("x")
        ok, _ = problem.verify(and_(ge(x, 0), le(x, 100)))
        assert ok


class TestDefineFun:
    def test_macros_inlined(self):
        problem = parse_sygus_text(WITH_DEFINE_FUN)
        from repro.lang.traversal import contains_app

        assert not contains_app(problem.spec, "double")
        # f(x) = double(double(x)) = 4x; check with the solution x+x+x+x.
        from repro.lang import add, int_var

        x = int_var("x")
        ok, _ = problem.verify(add(x, x, x, x))
        assert ok


class TestErrors:
    def test_let_rejected(self):
        text = """
        (set-logic LIA)
        (synth-fun f ((x Int)) Int)
        (declare-var x Int)
        (constraint (= (f x) (let ((y 1)) (+ x y))))
        """
        with pytest.raises(SygusParseError):
            parse_sygus_text(text)

    def test_unknown_symbol_rejected(self):
        text = """
        (set-logic LIA)
        (synth-fun f ((x Int)) Int)
        (constraint (= (f nonexistent) 0))
        """
        with pytest.raises(SygusParseError):
            parse_sygus_text(text)

    def test_missing_synth_fun_rejected(self):
        with pytest.raises(SygusParseError):
            parse_sygus_text("(set-logic LIA) (check-synth)")

    def test_unsupported_command_rejected(self):
        with pytest.raises(SygusParseError):
            parse_sygus_text("(synth-fun f ((x Int)) Int) (pop 1)")

    def test_unsupported_sort_rejected(self):
        with pytest.raises(SygusParseError):
            parse_sygus_text("(synth-fun f ((x Real)) Real)")


class TestDeclarePrimedVar:
    def test_primed_vars_declared(self):
        text = """
        (set-logic LIA)
        (synth-fun f ((x Int)) Int)
        (declare-primed-var x Int)
        (constraint (= (f x) x))
        """
        problem = parse_sygus_text(text)
        names = {v.payload for v in problem.variables}
        assert names == {"x", "x!"}
