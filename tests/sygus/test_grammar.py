"""Tests for expression grammars and membership."""

from repro.lang import add, apply_fn, eq, ge, int_const, int_var, ite, lt, sub
from repro.lang.sorts import BOOL, INT
from repro.sygus.grammar import (
    Grammar,
    InterpretedFunction,
    any_const,
    clia_grammar,
    expand_interpreted,
    nonterminal,
    qm_grammar,
    qm_function,
)

x, y = int_var("x"), int_var("y")


class TestCliaGrammar:
    def test_membership_of_params_and_constants(self):
        grammar = clia_grammar((x, y))
        assert grammar.generates(x)
        assert grammar.generates(int_const(42))  # via (Constant Int)
        assert grammar.generates(add(x, y))
        assert grammar.generates(sub(x, 1))

    def test_membership_of_ite(self):
        grammar = clia_grammar((x, y))
        assert grammar.generates(ite(ge(x, y), x, y))

    def test_non_member_rejected(self):
        grammar = clia_grammar((x, y))
        z = int_var("z")
        assert not grammar.generates(z)
        assert not grammar.generates(apply_fn("mystery", [x], INT))

    def test_bool_start_for_inv_track(self):
        grammar = clia_grammar((x,), start_sort=BOOL)
        assert grammar.start_sort is BOOL
        assert grammar.generates(ge(x, 0))
        assert not grammar.generates(x)

    def test_nary_flattened_terms_still_members(self):
        # The builders flatten x + y + 1 into a 3-ary node; the binary
        # production S + S must still match.
        grammar = clia_grammar((x, y))
        assert grammar.generates(add(x, y, 1))


class TestQmGrammar:
    def test_qm_membership(self):
        grammar = qm_grammar((x, y))
        solution = add(x, apply_fn("qm", (sub(y, x), int_const(0)), INT))
        assert grammar.generates(solution)

    def test_ite_not_in_qm_grammar(self):
        grammar = qm_grammar((x, y))
        assert not grammar.generates(ite(ge(x, y), x, y))

    def test_constants_restricted(self):
        grammar = qm_grammar((x,))
        assert grammar.generates(int_const(0))
        assert grammar.generates(int_const(1))
        assert not grammar.generates(int_const(5))

    def test_qm_semantics(self):
        qm = qm_function()
        assert qm.instantiate((int_const(-1), int_const(9))) is ite(
            lt(int_const(-1), 0), int_const(9), int_const(-1)
        )


class TestGrammarExtension:
    def test_with_interpreted_adds_production(self):
        grammar = qm_grammar((x, y))
        x1, x2 = int_var("x1"), int_var("x2")
        aux = InterpretedFunction(
            "aux", (x1, x2), add(x1, apply_fn("qm", (sub(x2, x1), int_const(0)), INT))
        )
        extended = grammar.with_interpreted(aux)
        assert "aux" in extended.interpreted
        assert extended.generates(apply_fn("aux", (x, y), INT))
        # The original grammar is unchanged.
        assert not grammar.generates(apply_fn("aux", (x, y), INT))

    def test_with_extra_production(self):
        grammar = qm_grammar((x,))
        extended = grammar.with_extra_production("S", int_const(7))
        assert extended.generates(int_const(7))
        assert not grammar.generates(int_const(7))


class TestExpandInterpreted:
    def test_nested_expansion(self):
        x1, x2 = int_var("x1"), int_var("x2")
        qm = qm_function()
        aux = InterpretedFunction(
            "aux", (x1, x2), add(x1, apply_fn("qm", (sub(x2, x1), int_const(0)), INT))
        )
        term = apply_fn("aux", (x, y), INT)
        expanded = expand_interpreted(term, {"qm": qm, "aux": aux})
        from repro.lang.traversal import contains_app

        assert not contains_app(expanded, "aux")
        assert not contains_app(expanded, "qm")

    def test_expansion_preserves_semantics(self):
        from repro.lang import evaluate

        x1, x2 = int_var("x1"), int_var("x2")
        qm = qm_function()
        aux = InterpretedFunction(
            "aux", (x1, x2), add(x1, apply_fn("qm", (sub(x2, x1), int_const(0)), INT))
        )
        funcs = {"qm": (qm.params, qm.body), "aux": (aux.params, aux.body)}
        term = apply_fn("aux", (x, y), INT)
        expanded = expand_interpreted(term, {"qm": qm, "aux": aux})
        for a in range(-3, 4):
            for b in range(-3, 4):
                env = {"x": a, "y": b}
                assert evaluate(expanded, env) == evaluate(term, env, funcs) == max(a, b)


class TestStructure:
    def test_unknown_start_symbol_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            Grammar({"S": INT}, "T", {"S": [x]})

    def test_signature_rendering(self):
        grammar = qm_grammar((x,))
        signature = grammar.production_signature()
        assert "S ->" in signature and "qm" in signature
