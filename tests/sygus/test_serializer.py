"""Round-trip tests: problem -> SyGuS-IF text -> parsed problem."""

import os

import pytest

from repro.bench.suite import full_suite, find_benchmark
from repro.sygus.parser import parse_sygus_text
from repro.sygus.serializer import export_suite, problem_to_sygus


class TestRoundTrip:
    @pytest.mark.parametrize(
        "name",
        ["max2", "max3", "abs", "clamp", "array_search_2", "linear-comb"],
    )
    def test_clia_benchmarks_round_trip_spec(self, name):
        problem = find_benchmark(name).problem()
        text = problem_to_sygus(problem)
        reparsed = parse_sygus_text(text, name=name)
        # Hash-consing makes structural equality a pointer check.
        assert reparsed.spec is problem.spec
        assert reparsed.synth_fun.params == problem.synth_fun.params

    @pytest.mark.parametrize("name", ["count-up-8", "crossing-8", "hold-8"])
    def test_inv_benchmarks_round_trip(self, name):
        problem = find_benchmark(name).problem()
        text = problem_to_sygus(problem)
        assert "(inv-constraint" in text
        reparsed = parse_sygus_text(text, name=name)
        assert reparsed.track == "INV"
        assert reparsed.invariant is not None
        assert reparsed.invariant.pre is problem.invariant.pre
        assert reparsed.invariant.trans is problem.invariant.trans
        assert reparsed.invariant.post is problem.invariant.post

    @pytest.mark.parametrize("name", ["qm-max2", "double-2", "plus-two"])
    def test_general_benchmarks_round_trip_grammar(self, name):
        problem = find_benchmark(name).problem()
        text = problem_to_sygus(problem)
        reparsed = parse_sygus_text(text, name=name)
        assert reparsed.spec is problem.spec
        original = problem.synth_fun.grammar
        parsed = reparsed.synth_fun.grammar
        assert set(parsed.nonterminals) == set(original.nonterminals)
        # Membership behaviour must be preserved for the known solution.
        for rhs_list in original.productions.values():
            for rhs in rhs_list:
                pass  # structural check below suffices
        assert parsed.fingerprint() == original.fingerprint()

    def test_every_benchmark_serializes_and_parses(self):
        for benchmark in full_suite():
            problem = benchmark.problem()
            reparsed = parse_sygus_text(problem_to_sygus(problem))
            assert reparsed.spec is problem.spec, benchmark.name


class TestExport:
    def test_export_suite_writes_files(self, tmp_path):
        paths = export_suite(str(tmp_path))
        assert len(paths) == len(full_suite())
        for path in paths[:5]:
            assert os.path.exists(path)
            with open(path) as handle:
                assert "(check-synth)" in handle.read()


class TestMultiSerializer:
    def test_multi_problem_round_trip(self):
        from repro.lang import add, and_, eq, int_var, sub
        from repro.lang.sorts import INT
        from repro.sygus.grammar import clia_grammar
        from repro.sygus.multi import MultiSygusProblem
        from repro.sygus.problem import SynthFun
        from repro.sygus.serializer import multi_problem_to_sygus

        x, y = int_var("x"), int_var("y")
        f = SynthFun("f", (x, y), INT, clia_grammar((x, y)))
        g = SynthFun("g", (x, y), INT, clia_grammar((x, y)))
        spec = and_(
            eq(f.apply((x, y)), add(x, y)),
            eq(g.apply((x, y)), sub(x, y)),
        )
        problem = MultiSygusProblem((f, g), spec, (x, y), name="pair")
        text = multi_problem_to_sygus(problem)
        reparsed = parse_sygus_text(text, name="pair")
        from repro.sygus.multi import MultiSygusProblem as M

        assert isinstance(reparsed, M)
        assert reparsed.fun_names == ("f", "g")
        assert reparsed.spec is problem.spec
