"""Suite-wide fixtures."""

import pytest

from repro.smt import memo as smt_memo


@pytest.fixture(autouse=True)
def _reset_query_memo():
    """Isolate tests from the process-wide SMT query memo.

    The memo is deliberately shared across solver instances (that is the
    whole point), but cross-test sharing would make round/check-count
    assertions order-dependent: an earlier test solving the same query
    would turn a later test's solves into zero-round cache hits.
    """
    smt_memo.reset_default_memo()
    yield
    smt_memo.reset_default_memo()
