"""End-to-end integration tests: SyGuS text in, verified solution out.

These exercise the full stack — parser, cooperative synthesizer (deduction,
divide-and-conquer, fixed-height enumeration), SMT substrate — on problems
representative of each track.
"""

import pytest

from repro import parse_sygus_text, solve_sygus
from repro.synth import SynthConfig


def _solve_text(text, timeout=60, name="it"):
    problem = parse_sygus_text(text, name=name)
    outcome = solve_sygus(problem, timeout=timeout)
    return problem, outcome


class TestCliaTrack:
    def test_max2_from_text(self):
        problem, outcome = _solve_text(
            """
            (set-logic LIA)
            (synth-fun max2 ((x Int) (y Int)) Int)
            (declare-var x Int)
            (declare-var y Int)
            (constraint (>= (max2 x y) x))
            (constraint (>= (max2 x y) y))
            (constraint (or (= (max2 x y) x) (= (max2 x y) y)))
            (check-synth)
            """
        )
        assert outcome.solved
        ok, _ = problem.verify(outcome.solution.body)
        assert ok

    def test_commutative_multi_invocation(self):
        problem, outcome = _solve_text(
            """
            (set-logic LIA)
            (synth-fun f ((x Int) (y Int)) Int)
            (declare-var x Int)
            (declare-var y Int)
            (constraint (= (f x y) (f y x)))
            (constraint (>= (f x y) x))
            (constraint (>= (f x y) y))
            (constraint (or (= (f x y) x) (= (f x y) y)))
            (check-synth)
            """
        )
        assert outcome.solved
        ok, _ = problem.verify(outcome.solution.body)
        assert ok

    def test_macro_expansion_and_match(self):
        problem, outcome = _solve_text(
            """
            (set-logic LIA)
            (define-fun shift ((a Int)) Int (+ a 3))
            (synth-fun f ((x Int)) Int)
            (declare-var x Int)
            (constraint (= (f x) (shift (shift x))))
            (check-synth)
            """
        )
        assert outcome.solved
        from repro.lang import evaluate

        assert evaluate(outcome.solution.body, {"x": 10}) == 16


class TestInvTrack:
    def test_inv_constraint_pipeline(self):
        problem, outcome = _solve_text(
            """
            (set-logic LIA)
            (synth-inv inv_fun ((x Int)))
            (define-fun pre_fun ((x Int)) Bool (= x 0))
            (define-fun trans_fun ((x Int) (x! Int)) Bool
              (= x! (ite (< x 32) (+ x 1) x)))
            (define-fun post_fun ((x Int)) Bool (=> (not (< x 32)) (= x 32)))
            (inv-constraint inv_fun pre_fun trans_fun post_fun)
            (check-synth)
            """
        )
        assert outcome.solved
        ok, _ = problem.verify(outcome.solution.body)
        assert ok
        assert outcome.stats.deduction_solved  # the loop summary fires

    def test_two_variable_invariant(self):
        problem, outcome = _solve_text(
            """
            (set-logic LIA)
            (synth-inv inv_fun ((x Int) (y Int)))
            (define-fun pre_fun ((x Int) (y Int)) Bool (and (= x 0) (= y 0)))
            (define-fun trans_fun ((x Int) (y Int) (x! Int) (y! Int)) Bool
              (and (= x! (ite (< x 8) (+ x 1) x))
                   (= y! (ite (< x 8) (+ y 1) y))))
            (define-fun post_fun ((x Int) (y Int)) Bool
              (=> (not (< x 8)) (= y 8)))
            (inv-constraint inv_fun pre_fun trans_fun post_fun)
            (check-synth)
            """,
            timeout=90,
        )
        assert outcome.solved
        ok, _ = problem.verify(outcome.solution.body)
        assert ok


class TestGeneralTrack:
    def test_custom_grammar_from_text(self):
        problem, outcome = _solve_text(
            """
            (set-logic LIA)
            (synth-fun f ((x Int) (y Int)) Int
              ((S Int (x y 0 1 (+ S S) (- S S)))))
            (declare-var x Int)
            (declare-var y Int)
            (constraint (= (f x y) (- (+ x x) y)))
            (check-synth)
            """
        )
        assert outcome.solved
        assert problem.synth_fun.grammar.generates(outcome.solution.body)
        ok, _ = problem.verify(outcome.solution.body)
        assert ok

    def test_qm_operator_grammar_from_text(self):
        problem, outcome = _solve_text(
            """
            (set-logic LIA)
            (define-fun qm ((a Int) (b Int)) Int (ite (< a 0) b a))
            (synth-fun f ((x Int)) Int
              ((S Int (x 0 1 (+ S S) (- S S) (qm S S)))))
            (declare-var x Int)
            (constraint (= (f x) (ite (>= x 0) x (- 0 x))))
            (check-synth)
            """,
            timeout=120,
        )
        assert outcome.solved
        assert problem.synth_fun.grammar.generates(outcome.solution.body)
        ok, _ = problem.verify(outcome.solution.body)
        assert ok
