"""Detailed unit tests for the affine-spine encoder internals."""

import pytest

from repro.lang import add, apply_fn, evaluate, int_const, int_var, neg, sub
from repro.lang.sorts import INT
from repro.sygus.grammar import InterpretedFunction, qm_grammar
from repro.sygus.problem import SynthFun
from repro.synth.affine_encoding import (
    AffineSpineEncoder,
    _chain_add,
    _repeat,
    affine_operator_view,
)
from repro.synth.encoding import EncodingUnsupported

x, y = int_var("x"), int_var("y")


class TestHelpers:
    def test_repeat_positive(self):
        assert _repeat(x, 3) == [x, x, x]

    def test_repeat_negative_wraps_in_neg(self):
        parts = _repeat(x, -2)
        assert len(parts) == 2
        assert all(p is neg(x) for p in parts)

    def test_repeat_zero(self):
        assert _repeat(x, 0) == []

    def test_chain_add_balances_signs(self):
        term = _chain_add([x, x, neg(y)])
        assert evaluate(term, {"x": 5, "y": 3}) == 7

    def test_chain_add_all_negative(self):
        term = _chain_add([neg(x), neg(x)])
        assert evaluate(term, {"x": 4}) == -8

    def test_chain_add_empty_positive_side(self):
        term = _chain_add([neg(y)])
        assert evaluate(term, {"y": 9}) == -9


class TestShape:
    def test_node_count_binary(self):
        fun = SynthFun("f", (x, y), INT, qm_grammar((x, y)))
        assert AffineSpineEncoder(fun, 1).num_nodes == 1
        assert AffineSpineEncoder(fun, 2).num_nodes == 3
        assert AffineSpineEncoder(fun, 3).num_nodes == 7

    def test_operator_view_lists_qm(self):
        ops = affine_operator_view(qm_grammar((x,)))
        assert ops is not None and ops[0].name == "qm"

    def test_view_rejects_grammar_without_subtraction(self):
        from repro.sygus.grammar import Grammar, nonterminal

        s = nonterminal("S", INT)
        grammar = Grammar(
            {"S": INT},
            "S",
            {"S": [x, int_const(0), int_const(1), add(s, s),
                   apply_fn("qm", (s, s), INT)]},
            {"qm": qm_grammar((x,)).interpreted["qm"]},
            (x,),
        )
        assert affine_operator_view(grammar) is None

    def test_view_rejects_grammar_without_operators(self):
        from repro.sygus.grammar import Grammar, nonterminal
        from repro.sygus.grammar import any_const

        s = nonterminal("S", INT)
        grammar = Grammar(
            {"S": INT},
            "S",
            {"S": [x, any_const(), add(s, s), sub(s, s)]},
            {},
            (x,),
        )
        assert affine_operator_view(grammar) is None

    def test_bool_return_sort_rejected(self):
        from repro.lang.sorts import BOOL

        fun = SynthFun("p", (x,), BOOL, qm_grammar((x,)))
        with pytest.raises(EncodingUnsupported):
            AffineSpineEncoder(fun, 2)


class TestStaticConstraints:
    def test_one_hot_op_selection(self):
        fun = SynthFun("f", (x, y), INT, qm_grammar((x, y)))
        encoder = AffineSpineEncoder(fun, 2, "t")
        constraints = encoder.static_constraints(2, 1)
        # Single operator: at least the weight-exclusivity clauses exist.
        from repro.lang import Kind

        assert constraints.kind is Kind.AND

    def test_unknown_listing_covers_every_node(self):
        fun = SynthFun("f", (x, y), INT, qm_grammar((x, y)))
        encoder = AffineSpineEncoder(fun, 2, "t")
        names = {u.payload for u in encoder.unknowns()}
        for node in range(encoder.num_nodes):
            assert f"t!d{node}" in names
