"""Tests for the decision-tree normal form (Figure 5) and interpret_h."""

from hypothesis import given, settings, strategies as st

from repro.lang import evaluate, int_var
from repro.lang.sorts import BOOL, INT
from repro.synth.decision_tree import (
    TreeShape,
    coeff_name,
    const_name,
    num_internal,
    num_nodes,
)


class TestShapeArithmetic:
    def test_node_counts(self):
        assert num_nodes(1) == 1
        assert num_nodes(2) == 3
        assert num_nodes(3) == 7
        assert num_internal(1) == 0
        assert num_internal(2) == 1
        assert num_internal(3) == 3

    def test_invalid_height(self):
        import pytest

        with pytest.raises(ValueError):
            num_nodes(0)

    def test_unknown_listing(self):
        shape = TreeShape("t", 2, 2, INT)
        unknowns = shape.coeff_vars()
        # 3 nodes x (2 coefficients + 1 constant).
        assert len(unknowns) == 9
        names = {u.payload for u in unknowns}
        assert coeff_name("t", 0, 0) in names
        assert const_name("t", 2) in names


class TestFigure6Example:
    def test_max2_tree(self):
        """The paper's Figure 6: c0=(1,-1,0), c1=(1,0,0), c2=(0,1,0)."""
        shape = TreeShape("t", 2, 2, INT)
        model = {
            coeff_name("t", 0, 0): 1,
            coeff_name("t", 0, 1): -1,
            const_name("t", 0): 0,
            coeff_name("t", 1, 0): 1,
            coeff_name("t", 1, 1): 0,
            const_name("t", 1): 0,
            coeff_name("t", 2, 0): 0,
            coeff_name("t", 2, 1): 1,
            const_name("t", 2): 0,
        }
        x1, x2 = int_var("x1"), int_var("x2")
        body = shape.decode(model, (x1, x2))
        for a in range(-4, 5):
            for b in range(-4, 5):
                assert evaluate(body, {"x1": a, "x2": b}) == max(a, b)

    def test_interpret_on_paper_point(self):
        """interpret_2(c, (1, -2)) from Section 5.2."""
        shape = TreeShape("t", 2, 2, INT)
        symbolic = shape.interpret((1, -2))
        env = {
            coeff_name("t", 0, 0): 1,
            coeff_name("t", 0, 1): -1,
            const_name("t", 0): 0,
            coeff_name("t", 1, 0): 1,
            coeff_name("t", 1, 1): 0,
            const_name("t", 1): 0,
            coeff_name("t", 2, 0): 0,
            coeff_name("t", 2, 1): 1,
            const_name("t", 2): 0,
        }
        assert evaluate(symbolic, env) == max(1, -2)


class TestBoolTrees:
    def test_bool_leaf_is_atom(self):
        shape = TreeShape("t", 1, 1, BOOL)
        model = {coeff_name("t", 0, 0): 1, const_name("t", 0): -5}
        body = shape.decode(model, (int_var("x"),))
        assert evaluate(body, {"x": 5}) is True
        assert evaluate(body, {"x": 4}) is False

    def test_bool_internal_decision(self):
        shape = TreeShape("t", 2, 1, BOOL)
        # if x >= 0 then x <= 3 else false  (i.e. 0 <= x <= 3)
        model = {
            coeff_name("t", 0, 0): 1,
            const_name("t", 0): 0,
            coeff_name("t", 1, 0): -1,
            const_name("t", 1): 3,
            coeff_name("t", 2, 0): 0,
            const_name("t", 2): -1,
        }
        body = shape.decode(model, (int_var("x"),))
        for value in range(-5, 9):
            assert evaluate(body, {"x": value}) == (0 <= value <= 3)


# -- Property: decode and interpret agree --------------------------------------

_coeffs = st.integers(min_value=-2, max_value=2)


@given(
    st.integers(min_value=1, max_value=3),
    st.data(),
    st.tuples(st.integers(-5, 5), st.integers(-5, 5)),
)
@settings(max_examples=120, deadline=None)
def test_decode_interpret_consistency(height, data, point):
    """Evaluating the decoded term equals evaluating interpret_h's formula
    under the same coefficient model."""
    shape = TreeShape("t", height, 2, INT)
    model = {}
    for node in range(shape.nodes):
        for j in range(2):
            model[coeff_name("t", node, j)] = data.draw(_coeffs)
        model[const_name("t", node)] = data.draw(_coeffs)
    x1, x2 = int_var("x1"), int_var("x2")
    decoded = shape.decode(model, (x1, x2))
    direct = evaluate(decoded, {"x1": point[0], "x2": point[1]})
    symbolic = shape.interpret(point)
    indirect = evaluate(symbolic, model)
    assert direct == indirect
