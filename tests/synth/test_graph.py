"""Tests for the subproblem graph (Section 3.2)."""

from repro.lang import eq, ge, int_var
from repro.lang.sorts import INT
from repro.sygus.grammar import clia_grammar
from repro.sygus.problem import SygusProblem, SynthFun
from repro.synth.divide import Split
from repro.synth.graph import SubproblemGraph, stable_node_id

x, y = int_var("x"), int_var("y")


def _problem(name, spec_rhs):
    fun = SynthFun("f", (x, y), INT, clia_grammar((x, y)))
    return SygusProblem(fun, eq(fun.apply((x, y)), spec_rhs), (x, y), name=name)


def _split(problem):
    return Split("test", problem, lambda body: None)


class TestSubproblemGraph:
    def test_source_is_registered(self):
        root = _problem("root", x)
        graph = SubproblemGraph(root)
        assert graph.source.problem is root
        assert len(graph) == 1

    def test_add_subproblem_creates_edge(self):
        root = _problem("root", x)
        graph = SubproblemGraph(root)
        child_problem = _problem("child", y)
        node, created = graph.add_subproblem(graph.source, _split(child_problem))
        assert created
        assert len(graph) == 2
        assert node.incoming[0].parent is graph.source
        assert node.depth == 1

    def test_shared_subproblems_are_deduplicated(self):
        """Figure 3: a subproblem shared between two parents is one node."""
        from repro.lang import add, sub

        root = _problem("root", x)
        graph = SubproblemGraph(root)
        p1, _ = graph.add_subproblem(graph.source, _split(_problem("p", add(x, y))))
        p2, _ = graph.add_subproblem(graph.source, _split(_problem("q", sub(x, y))))
        shared_problem = _problem("shared", y)
        # Same spec/fun/grammar object => same node.
        n1, created1 = graph.add_subproblem(p1, _split(shared_problem))
        n2, created2 = graph.add_subproblem(p2, _split(shared_problem))
        assert created1 and not created2
        assert n1 is n2
        assert len(n1.incoming) == 2
        assert {edge.parent for edge in n1.incoming} == {p1, p2}

    def test_different_specs_are_different_nodes(self):
        root = _problem("root", x)
        graph = SubproblemGraph(root)
        n1, _ = graph.add_subproblem(graph.source, _split(_problem("a", y)))
        n2, _ = graph.add_subproblem(graph.source, _split(_problem("b", x)))
        assert n1 is not n2

    def test_add_free_standing_problem(self):
        root = _problem("root", x)
        graph = SubproblemGraph(root)
        node, created = graph.add_problem(_problem("b-problem", y), depth=1)
        assert created and node.depth == 1
        again, created2 = graph.add_problem(_problem("b-problem", y), depth=1)
        assert not created2 and again is node


class TestStableNodeIds:
    """Satellite: node IDs are structural — identical across processes."""

    MAX2 = """
(set-logic LIA)
(synth-fun max2 ((x Int) (y Int)) Int
  ((Start Int (x y 0 1 (+ Start Start) (- Start Start)
               (ite StartBool Start Start)))
   (StartBool Bool ((<= Start Start) (= Start Start) (>= Start Start)))))
(declare-var x Int)
(declare-var y Int)
(constraint (>= (max2 x y) x))
(constraint (>= (max2 x y) y))
(constraint (or (= x (max2 x y)) (= y (max2 x y))))
(check-synth)
"""

    def _graph_node_ids_in_process(self):
        from repro import obs
        from repro.bench.runner import make_solver
        from repro.sygus.parser import parse_sygus_text

        problem = parse_sygus_text(self.MAX2, "max2")
        with obs.recording() as recorder:
            make_solver("dryadsynth", 5.0).synthesize(problem)
        return {
            e.attrs["node"]
            for e in recorder.events
            if e.domain == "forensics" and e.name == "graph.node"
        }

    def test_reparsed_problem_gets_the_same_id(self):
        from repro.sygus.parser import parse_sygus_text

        first = stable_node_id(parse_sygus_text(self.MAX2, "a"))
        second = stable_node_id(parse_sygus_text(self.MAX2, "b"))
        assert first == second
        assert len(first) == 12

    def test_two_in_process_runs_emit_identical_node_sets(self):
        assert (
            self._graph_node_ids_in_process()
            == self._graph_node_ids_in_process()
        )

    def test_process_worker_emits_the_same_node_ids(self):
        """Thread-side and process-side runs announce the same node IDs, so
        a parent can collate forensics from parallel workers."""
        from repro.service.jobs import SynthesisJob
        from repro.service.pool import WorkerPool

        job = SynthesisJob(
            problem_text=self.MAX2,
            solver="dryadsynth",
            timeout=5.0,
            name="max2",
            telemetry=True,
        )
        with WorkerPool(workers=1) as pool:
            (result,) = pool.run([job])
        assert result.status == "solved"
        worker_ids = {
            event["attrs"]["node"]
            for event in result.telemetry["spans"]["events"]
            if event.get("domain") == "forensics"
            and event["name"] == "graph.node"
        }
        assert worker_ids == self._graph_node_ids_in_process()
