"""Tests for the solution minimisation pass."""

from repro.lang import (
    add,
    and_,
    eq,
    evaluate,
    ge,
    int_const,
    int_var,
    ite,
    or_,
    sub,
)
from repro.lang.sorts import INT
from repro.sygus.grammar import clia_grammar
from repro.sygus.problem import SygusProblem, SynthFun
from repro.synth.minimize import minimize_solution

x, y = int_var("x"), int_var("y")


def _max2_problem():
    fun = SynthFun("f", (x, y), INT, clia_grammar((x, y)))
    fx = fun.apply((x, y))
    spec = and_(ge(fx, x), ge(fx, y), or_(eq(fx, x), eq(fx, y)))
    return SygusProblem(fun, spec, (x, y), name="max2")


class TestMinimizeSolution:
    def test_redundant_ite_tower_shrinks(self):
        """The kind of output the merging rules produce for max2."""
        problem = _max2_problem()
        inner = ite(ge(x, y), x, y)
        bloated = ite(ge(inner, inner), inner, ite(ge(y, x), y, x))
        ok, _ = problem.verify(bloated)
        assert ok
        minimized = minimize_solution(problem, bloated)
        ok, _ = problem.verify(minimized)
        assert ok
        assert minimized.size <= inner.size

    def test_already_minimal_is_stable(self):
        problem = _max2_problem()
        body = ite(ge(x, y), x, y)
        minimized = minimize_solution(problem, body)
        ok, _ = problem.verify(minimized)
        assert ok
        assert minimized.size <= body.size

    def test_dead_additions_removed(self):
        fun = SynthFun("f", (x, y), INT, clia_grammar((x, y)))
        problem = SygusProblem(fun, eq(fun.apply((x, y)), x), (x, y))
        bloated = add(x, sub(y, y))  # x + (y - y)
        minimized = minimize_solution(problem, bloated)
        assert minimized is x

    def test_budget_limits_smt_calls(self):
        problem = _max2_problem()
        body = ite(ge(x, y), x, y)
        # Zero budget: the pass may only simplify, never re-verify.
        minimized = minimize_solution(problem, body, max_checks=0)
        ok, _ = problem.verify(minimized)
        assert ok

    def test_result_stays_in_grammar(self):
        problem = _max2_problem()
        bloated = ite(ge(x, y), add(x, int_const(0)), y)
        minimized = minimize_solution(problem, bloated)
        assert problem.synth_fun.grammar.generates(minimized)

    def test_semantics_preserved_pointwise(self):
        problem = _max2_problem()
        bloated = ite(ge(x, y), ite(ge(x, y), x, y), y)
        minimized = minimize_solution(problem, bloated)
        for a in range(-3, 4):
            for b in range(-3, 4):
                assert evaluate(minimized, {"x": a, "y": b}) == max(a, b)


class TestCooperativeIntegration:
    def test_minimization_reduces_deduction_output(self):
        from repro.synth import CooperativeSynthesizer, SynthConfig

        problem = _max2_problem()
        small = CooperativeSynthesizer(
            SynthConfig(timeout=60, minimize_solutions=True)
        ).synthesize(problem)
        big = CooperativeSynthesizer(
            SynthConfig(timeout=60, minimize_solutions=False)
        ).synthesize(problem)
        assert small.solved and big.solved
        assert small.solution.size <= big.solution.size
