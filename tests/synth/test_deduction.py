"""Tests for the deductive component (Figures 7-9)."""

from repro.lang import (
    add,
    and_,
    apply_fn,
    eq,
    evaluate,
    ge,
    gt,
    implies,
    int_const,
    int_var,
    ite,
    le,
    lt,
    not_,
    or_,
    sub,
)
from repro.lang.sorts import BOOL, INT
from repro.sygus.grammar import (
    Grammar,
    InterpretedFunction,
    clia_grammar,
    nonterminal,
    qm_grammar,
)
from repro.sygus.problem import SygusProblem, SynthFun
from repro.synth.deduction import Deducer, match_rewrite, _to_nnf, _to_cnf

x, y, z = int_var("x"), int_var("y"), int_var("z")


def _problem(spec_builder, params=(x, y), grammar=None, **kwargs):
    params = tuple(params)
    grammar = grammar or clia_grammar(params)
    fun = SynthFun("f", params, grammar.start_sort, grammar)
    spec = spec_builder(fun)
    return SygusProblem(fun, spec, params, **kwargs)


class TestNnfCnf:
    def test_nnf_pushes_negation(self):
        term = not_(and_(ge(x, 0), le(y, 0)))
        nnf = _to_nnf(term, True)
        for a in range(-2, 3):
            for b in range(-2, 3):
                env = {"x": a, "y": b}
                assert evaluate(nnf, env) == evaluate(term, env)

    def test_nnf_eliminates_implication(self):
        term = implies(ge(x, 0), ge(y, 0))
        nnf = _to_nnf(term, True)
        from repro.lang import Kind
        from repro.lang.traversal import subexpressions

        assert all(t.kind is not Kind.IMPLIES for t in subexpressions(nnf))

    def test_cnf_distributes(self):
        term = or_(and_(ge(x, 0), ge(y, 0)), ge(x, 5))
        clauses = _to_cnf(term)
        assert len(clauses) == 2

    def test_cnf_budget(self):
        # 2^10 distribution exceeds the clause budget.
        big = and_(
            *(or_(and_(ge(x, i), ge(y, i)), and_(le(x, i), le(y, i))) for i in range(10))
        )
        nnf = _to_nnf(big, True)
        assert _to_cnf(nnf) is None or len(_to_cnf(nnf)) <= 128


class TestIntDeduction:
    def test_reference_implementation_solved(self):
        """IntEq via Eq: f(x,y) = x + y is forced and fits the grammar."""
        problem = _problem(lambda f: eq(f.apply((x, y)), add(x, y)))
        result = Deducer(problem).deduct()
        assert result.solution is not None
        assert evaluate(result.solution, {"x": 2, "y": 3}) == 5

    def test_max2_solved_by_merging(self):
        """GeMax/LeMax/Eq merging (the Figure 9 pipeline, n=2)."""
        problem = _problem(
            lambda f: and_(
                ge(f.apply((x, y)), x),
                ge(f.apply((x, y)), y),
                or_(eq(f.apply((x, y)), x), eq(f.apply((x, y)), y)),
            )
        )
        result = Deducer(problem).deduct()
        assert result.solution is not None
        for a in range(-3, 4):
            for b in range(-3, 4):
                assert evaluate(result.solution, {"x": a, "y": b}) == max(a, b)

    def test_max3_solved_by_merging(self):
        """The full Figure 9 example (n=3)."""
        problem = _problem(
            lambda f: and_(
                ge(f.apply((x, y, z)), x),
                ge(f.apply((x, y, z)), y),
                ge(f.apply((x, y, z)), z),
                or_(
                    eq(f.apply((x, y, z)), x),
                    eq(f.apply((x, y, z)), y),
                    eq(f.apply((x, y, z)), z),
                ),
            ),
            params=(x, y, z),
            grammar=clia_grammar((x, y, z)),
        )
        result = Deducer(problem).deduct()
        assert result.solution is not None
        for a in (-2, 0, 5):
            for b in (-1, 3):
                for c in (0, 4):
                    assert (
                        evaluate(result.solution, {"x": a, "y": b, "z": c})
                        == max(a, b, c)
                    )

    def test_min2_solved_by_merging(self):
        problem = _problem(
            lambda f: and_(
                le(f.apply((x, y)), x),
                le(f.apply((x, y)), y),
                or_(eq(f.apply((x, y)), x), eq(f.apply((x, y)), y)),
            )
        )
        result = Deducer(problem).deduct()
        assert result.solution is not None
        assert evaluate(result.solution, {"x": 2, "y": -7}) == -7

    def test_unsatisfiable_residue_not_solved(self):
        """A forced implementation that violates another conjunct fails."""
        problem = _problem(
            lambda f: and_(eq(f.apply((x, y)), x), ge(f.apply((x, y)), add(x, 1)))
        )
        result = Deducer(problem).deduct()
        assert result.solution is None

    def test_contradictory_spec_reported_unsolvable(self):
        problem = _problem(lambda f: lt(x, x))
        result = Deducer(problem).deduct()
        assert result.unsolvable

    def test_f_free_valid_spec_solved_with_any_member(self):
        problem = _problem(lambda f: ge(add(x, 1), x))
        result = Deducer(problem).deduct()
        assert result.solution is not None


class TestMatchRule:
    def _double_grammar(self):
        x1 = int_var("x1")
        double = InterpretedFunction("double", (x1,), add(x1, x1))
        s = nonterminal("S", INT)
        rules = [x, int_const(0), int_const(1), apply_fn("double", (s,), INT)]
        return Grammar({"S": INT}, "S", {"S": rules}, {"double": double}, (x,))

    def test_double_double_match(self):
        """The paper's Match example: x+x+x+x becomes double(double(x))."""
        grammar = self._double_grammar()
        problem = _problem(
            lambda f: eq(f.apply((x,)), add(x, x, x, x)),
            params=(x,),
            grammar=grammar,
        )
        result = Deducer(problem).deduct()
        assert result.solution is not None
        assert grammar.generates(result.solution)
        funcs = {"double": (grammar.interpreted["double"].params,
                            grammar.interpreted["double"].body)}
        assert evaluate(result.solution, {"x": 5}, funcs) == 20

    def test_match_rewrite_failure_returns_unfit(self):
        grammar = self._double_grammar()
        # x + 1 + 1 + 1 is not expressible by double/0/1/x alone... actually
        # it is not foldable by double's pattern, so match keeps it as-is.
        rewritten = match_rewrite(add(x, 1, 1, 1), grammar)
        assert rewritten is None or not grammar.generates(rewritten)

    def test_qm_fold(self):
        grammar = qm_grammar((x, y))
        # ite(x < 0, y, x) is exactly qm's definition body.
        body = ite(lt(x, 0), y, x)
        rewritten = match_rewrite(body, grammar)
        assert rewritten is not None
        assert grammar.generates(rewritten)


class TestBoolDeduction:
    def test_predicate_envelope_solved(self):
        """BoolNeg/BoolPos: the conjunction of upper bounds works."""
        grammar = clia_grammar((x,), start_sort=BOOL)
        fun = SynthFun("f", (x,), BOOL, grammar)
        fx = fun.apply((x,))
        # f(x) -> x >= 0, f(x) -> x <= 10, and (x = 5) -> f(x).
        spec = and_(
            implies(fx, ge(x, 0)),
            implies(fx, le(x, 10)),
            implies(eq(x, 5), fx),
        )
        problem = SygusProblem(fun, spec, (x,))
        result = Deducer(problem).deduct()
        assert result.solution is not None
        assert evaluate(result.solution, {"x": 5}) is True
        assert evaluate(result.solution, {"x": -1}) is False

    def test_unsatisfiable_envelope_fails(self):
        grammar = clia_grammar((x,), start_sort=BOOL)
        fun = SynthFun("f", (x,), BOOL, grammar)
        fx = fun.apply((x,))
        # Upper bounds force f ⊆ [0,10] but x = 20 must be inside: impossible.
        spec = and_(
            implies(fx, ge(x, 0)),
            implies(fx, le(x, 10)),
            implies(eq(x, 20), fx),
        )
        problem = SygusProblem(fun, spec, (x,))
        result = Deducer(problem).deduct()
        assert result.solution is None


class TestRemoveArgRule:
    def test_constant_argument_dropped(self):
        """RemoveArg: f(x, 5, y) with the middle argument always 5."""
        c5 = int_const(5)
        problem = _problem(
            lambda f: eq(f.apply((x, c5, y)), add(x, y)),
            params=(x, int_var("unused"), y),
            grammar=clia_grammar((x, int_var("unused"), y)),
        )
        result = Deducer(problem).deduct()
        assert result.solution is not None
        assert evaluate(result.solution, {"x": 2, "unused": 0, "y": 3}) == 5

    def test_varying_argument_not_dropped(self):
        problem = _problem(lambda f: eq(f.apply((x, y)), add(x, y)))
        result = Deducer(problem).deduct()
        # Still solved (by IntEq), just not through RemoveArg.
        assert result.solution is not None


class TestRemoveVarRule:
    def test_insensitive_variable_pinned(self):
        """RemoveVar: the spec mentions z but does not depend on it."""
        problem = _problem(
            lambda f: and_(
                eq(f.apply((x, y)), add(x, y)),
                or_(ge(z, 0), lt(z, 0)),  # tautological use of z
            ),
            params=(x, y),
            grammar=clia_grammar((x, y)),
        )
        deducer = Deducer(problem)
        simplified = deducer._apply_remove_var(problem.spec)
        from repro.lang.traversal import free_vars

        assert z not in free_vars(simplified)

    def test_sensitive_variable_kept(self):
        problem = _problem(lambda f: ge(f.apply((x, y)), y))
        deducer = Deducer(problem)
        simplified = deducer._apply_remove_var(problem.spec)
        from repro.lang.traversal import free_vars

        assert y in free_vars(simplified)


class TestNotEqRule:
    def test_gap_of_two_becomes_disequality(self):
        from repro.synth.deduction import FBound, _merge_within_clause

        fx = _problem(lambda f: ge(x, 0)).synth_fun.apply((x, y))
        merged = _merge_within_clause(
            [FBound(fx, True, add(y, 2)), FBound(fx, False, y)]
        )
        assert len(merged) == 1
        literal = merged[0]
        # not (f(x, y) = y + 1), modulo linear normalisation
        from repro.lang import Kind
        from repro.synth.deduction import _constant_gap

        assert literal.kind is Kind.NOT
        assert _constant_gap(literal.args[0].args[1], add(y, 1)) == 0

    def test_other_gaps_untouched(self):
        from repro.synth.deduction import FBound, _merge_within_clause

        fx = _problem(lambda f: ge(x, 0)).synth_fun.apply((x, y))
        merged = _merge_within_clause(
            [FBound(fx, True, add(y, 5)), FBound(fx, False, y)]
        )
        assert len(merged) == 2
