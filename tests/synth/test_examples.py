"""Type-aware counterexample dedup (:mod:`repro.synth.examples`).

The CEGIS loops used to test membership with ``counterexample in examples``
— dict equality, where ``{"x": True} == {"x": 1}`` because Python booleans
compare equal to integers.  A Bool-sorted model could therefore be dropped
as a "duplicate" of an Int-sorted one, prematurely declaring the candidate
space exhausted.  :class:`ExampleSet` keys members on ``(name, is-bool,
value)`` tuples, so the collision cannot happen, and membership is O(1).
"""

from repro.lang.builders import int_const
from repro.synth.cegis import cegis
from repro.synth.examples import ExampleSet, example_key


class TestExampleKey:
    def test_bool_and_int_do_not_collide(self):
        assert example_key({"x": True}) != example_key({"x": 1})
        assert example_key({"x": False}) != example_key({"x": 0})

    def test_equal_examples_share_a_key(self):
        assert example_key({"x": 1, "y": 2}) == example_key({"y": 2, "x": 1})


class TestExampleSet:
    def test_add_returns_true_only_for_new(self):
        s = ExampleSet()
        assert s.add({"x": 1})
        assert not s.add({"x": 1})
        assert len(s) == 1

    def test_bool_int_regression(self):
        """Pre-fix failing: {"x": True} was swallowed as a dup of {"x": 1}."""
        s = ExampleSet()
        assert s.add({"x": 1})
        assert s.add({"x": True})
        assert len(s) == 2
        assert {"x": 1} in s
        assert {"x": True} in s

    def test_wrap_shares_the_underlying_list(self):
        shared = [{"x": 1}]
        s = ExampleSet.wrap(shared)
        s.add({"x": 2})
        # The in-place mutation contract: callers holding the original list
        # (parallel height search) observe additions.
        assert shared == [{"x": 1}, {"x": 2}]

    def test_wrap_is_idempotent(self):
        s = ExampleSet()
        assert ExampleSet.wrap(s) is s

    def test_wrap_none_is_empty(self):
        assert len(ExampleSet.wrap(None)) == 0

    def test_sequence_protocol(self):
        s = ExampleSet([{"x": 1}, {"x": 2}])
        assert len(s) == 2
        assert list(s) == [{"x": 1}, {"x": 2}]
        assert not s.add({"x": 2})  # seeded members index on construction
        assert s[0] == {"x": 1}
        assert s[1:] == [{"x": 2}]
        assert bool(s)
        assert not bool(ExampleSet())

    def test_contains_non_dict_is_false(self):
        assert 7 not in ExampleSet([{"x": 1}])


class _BoolIntProblem:
    """Stub problem whose verifier emits an Int model then a Bool model."""

    name = "bool-int-regression"

    def __init__(self):
        self.models = [{"x": 1}, {"x": True}]

    def first_violation(self, body, examples):
        return None  # always route through "SMT" verification

    def verify(self, candidate, deadline=None):
        if self.models:
            return False, self.models.pop(0)
        return True, None


class TestCegisBoolIntCollision:
    def test_bool_model_after_int_model_makes_progress(self):
        """Pre-fix failing: the loop declared exhaustion on {"x": True}.

        Old behaviour: ``{"x": True} in [{"x": 1}]`` was True (dict
        equality), the counterexample looked like a duplicate, and CEGIS
        returned None.  With typed dedup the loop records both models and
        converges on the third round.
        """
        problem = _BoolIntProblem()
        candidate, examples, iterations = cegis(
            problem, lambda examples: int_const(0), max_rounds=10
        )
        assert candidate is not None
        assert iterations == 3
        assert len(examples) == 2
        assert {"x": 1} in examples and {"x": True} in examples
