"""Tests for loop summarisation (fast-trans, Section 6 / Appendix A)."""

from repro.lang import add, and_, eq, evaluate, ge, gt, implies, int_var, ite, le, lt, not_, sub
from repro.sygus.problem import InvariantProblem
from repro.synth.deduction import Deducer
from repro.synth.loop_summary import summarize, try_loop_summary

x, y = int_var("x"), int_var("y")


def _count_up(bound=100):
    return InvariantProblem.from_updates(
        (x,),
        eq(x, 0),
        (ite(lt(x, bound), add(x, 1), x),),
        implies(not_(lt(x, bound)), eq(x, bound)),
        name="count-up",
    )


class TestSummarize:
    def test_guarded_increment_detected(self):
        summary = summarize(_count_up())
        assert summary is not None
        assert summary.offsets[x] == 1
        assert summary.guard is not None

    def test_unguarded_translation_detected(self):
        inv = InvariantProblem.from_updates(
            (x, y), and_(eq(x, 0), eq(y, 0)), (add(x, 1), add(y, 2)), ge(y, x)
        )
        summary = summarize(inv)
        assert summary is not None
        assert summary.offsets == {x: 1, y: 2}
        assert summary.guard is None

    def test_pivot_requires_unit_step(self):
        inv = InvariantProblem.from_updates(
            (x,), eq(x, 0), (add(x, 2),), ge(x, 0)
        )
        assert summarize(inv) is None  # only offset 2, no +-1 pivot

    def test_nonlinear_update_rejected(self):
        from repro.lang import mul

        inv = InvariantProblem.from_updates(
            (x,), eq(x, 1), (mul(x, x),), ge(x, 0)
        )
        assert summarize(inv) is None

    def test_mixed_guards_rejected(self):
        inv = InvariantProblem.from_updates(
            (x, y),
            and_(eq(x, 0), eq(y, 0)),
            (ite(lt(x, 5), add(x, 1), x), ite(lt(y, 9), add(y, 1), y)),
            ge(x, 0),
        )
        assert summarize(inv) is None

    def test_stationary_loop_rejected(self):
        inv = InvariantProblem.from_updates((x,), eq(x, 0), (x,), ge(x, 0))
        assert summarize(inv) is None


class TestFastTransSemantics:
    def test_reachable_states_included(self):
        summary = summarize(_count_up(10))
        from repro.lang import int_const

        target = {x: x}
        source = {x: int_const(0)}
        fast = summary.fast_trans(source, target)
        # States 0..10 are reachable, others are not.
        for value in range(0, 11):
            assert evaluate(fast, {"x": value}) is True
        for value in (-1, 11, 50):
            assert evaluate(fast, {"x": value}) is False


class TestTryLoopSummary:
    def test_count_up_solved(self):
        problem = _count_up().to_sygus()
        body = try_loop_summary(problem, Deducer(problem))
        assert body is not None
        ok, _ = problem.verify(body)
        assert ok

    def test_count_down_solved(self):
        inv = InvariantProblem.from_updates(
            (x,),
            eq(x, 50),
            (ite(gt(x, 0), sub(x, 1), x),),
            implies(not_(gt(x, 0)), eq(x, 0)),
        )
        problem = inv.to_sygus()
        body = try_loop_summary(problem, Deducer(problem))
        assert body is not None
        ok, _ = problem.verify(body)
        assert ok

    def test_twin_counters_solved(self):
        inv = InvariantProblem.from_updates(
            (x, y),
            and_(eq(x, 0), eq(y, 0)),
            (ite(lt(x, 8), add(x, 1), x), ite(lt(x, 8), add(y, 1), y)),
            implies(not_(lt(x, 8)), eq(y, 8)),
        )
        problem = inv.to_sygus()
        body = try_loop_summary(problem, Deducer(problem))
        assert body is not None
        ok, _ = problem.verify(body)
        assert ok

    def test_range_precondition_not_applicable(self):
        inv = InvariantProblem.from_updates(
            (x,),
            and_(ge(x, 0), le(x, 3)),
            (ite(lt(x, 8), add(x, 1), x),),
            le(x, 8),
        )
        problem = inv.to_sygus()
        assert try_loop_summary(problem, Deducer(problem)) is None

    def test_non_invariant_problem_not_applicable(self):
        from repro.sygus.grammar import clia_grammar
        from repro.sygus.problem import SygusProblem, SynthFun
        from repro.lang.sorts import INT

        fun = SynthFun("f", (x,), INT, clia_grammar((x,)))
        problem = SygusProblem(fun, eq(fun.apply((x,)), x), (x,))
        assert try_loop_summary(problem, Deducer(problem)) is None
