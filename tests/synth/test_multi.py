"""Tests for multi-function synthesis (the Section 2.1 remark)."""

from repro.lang import add, and_, eq, evaluate, ge, int_var, le, or_, sub
from repro.lang.sorts import INT
from repro.sygus.grammar import clia_grammar
from repro.sygus.multi import MultiSygusProblem
from repro.sygus.problem import SynthFun
from repro.synth.config import SynthConfig
from repro.synth.multi import MultiFunctionSynthesizer

x, y = int_var("x"), int_var("y")


def _funs():
    f = SynthFun("f", (x, y), INT, clia_grammar((x, y)))
    g = SynthFun("g", (x, y), INT, clia_grammar((x, y)))
    return f, g


class TestMultiProblem:
    def test_duplicate_names_rejected(self):
        import pytest

        f, _ = _funs()
        with pytest.raises(ValueError):
            MultiSygusProblem((f, f), eq(x, x), (x, y))

    def test_instantiate_all(self):
        f, g = _funs()
        spec = eq(f.apply((x, y)), g.apply((y, x)))
        problem = MultiSygusProblem((f, g), spec, (x, y))
        from repro.lang.traversal import contains_app

        instantiated = problem.instantiate({"f": add(x, y), "g": sub(x, y)})
        assert not contains_app(instantiated, "f")
        assert not contains_app(instantiated, "g")

    def test_joint_verify(self):
        f, g = _funs()
        # f computes max, g computes min, and f + g = x + y.
        fx, gx = f.apply((x, y)), g.apply((x, y))
        spec = and_(
            ge(fx, x),
            ge(fx, y),
            le(gx, x),
            le(gx, y),
            eq(add(fx, gx), add(x, y)),
        )
        problem = MultiSygusProblem((f, g), spec, (x, y))
        from repro.lang import ite

        good = {"f": ite(ge(x, y), x, y), "g": ite(ge(x, y), y, x)}
        ok, _ = problem.verify(good)
        assert ok
        bad = {"f": x, "g": y}
        ok, cex = problem.verify(bad)
        assert not ok and cex is not None

    def test_split_independent_partitions(self):
        f, g = _funs()
        spec = and_(
            eq(f.apply((x, y)), add(x, y)),
            eq(g.apply((x, y)), sub(x, y)),
        )
        problem = MultiSygusProblem((f, g), spec, (x, y))
        projections = problem.split_independent()
        assert projections is not None and len(projections) == 2
        assert projections[0].fun_name == "f"
        assert projections[1].fun_name == "g"

    def test_split_fails_on_coupled_constraints(self):
        f, g = _funs()
        spec = eq(f.apply((x, y)), g.apply((x, y)))
        problem = MultiSygusProblem((f, g), spec, (x, y))
        assert problem.split_independent() is None


class TestMultiSynthesis:
    def test_independent_functions_solved(self):
        f, g = _funs()
        spec = and_(
            eq(f.apply((x, y)), add(x, y)),
            eq(g.apply((x, y)), sub(x, y)),
        )
        problem = MultiSygusProblem((f, g), spec, (x, y), name="pair")
        solution, stats = MultiFunctionSynthesizer(
            SynthConfig(timeout=60)
        ).synthesize(problem)
        assert solution is not None
        assert evaluate(solution.bodies["f"], {"x": 3, "y": 4}) == 7
        assert evaluate(solution.bodies["g"], {"x": 3, "y": 4}) == -1
        assert len(solution.define_funs()) == 2

    def test_coupled_functions_solved_jointly(self):
        f, g = _funs()
        fx, gx = f.apply((x, y)), g.apply((x, y))
        # Coupled: g must be f's complement with respect to x + y.
        spec = and_(
            eq(fx, x),
            eq(add(fx, gx), add(x, y)),
        )
        problem = MultiSygusProblem((f, g), spec, (x, y), name="coupled")
        solution, stats = MultiFunctionSynthesizer(
            SynthConfig(timeout=90)
        ).synthesize(problem)
        assert solution is not None
        ok, _ = problem.verify(solution.bodies)
        assert ok

    def test_parser_produces_multi_problem(self):
        from repro.sygus.parser import parse_sygus_text

        problem = parse_sygus_text(
            """
            (set-logic LIA)
            (synth-fun f ((x Int)) Int)
            (synth-fun g ((x Int)) Int)
            (declare-var x Int)
            (constraint (= (f x) (+ x 1)))
            (constraint (= (g x) (- x 1)))
            (check-synth)
            """
        )
        assert isinstance(problem, MultiSygusProblem)
        assert problem.fun_names == ("f", "g")
        solution, _ = MultiFunctionSynthesizer(
            SynthConfig(timeout=60)
        ).synthesize(problem)
        assert solution is not None
        assert evaluate(solution.bodies["f"], {"x": 10}) == 11
        assert evaluate(solution.bodies["g"], {"x": 10}) == 9
