"""Tests for the divide-and-conquer strategies (Figure 4)."""

from repro.lang import (
    add,
    and_,
    eq,
    evaluate,
    ge,
    implies,
    int_var,
    ite,
    le,
    lt,
    not_,
    or_,
    sub,
)
from repro.lang.sorts import BOOL, INT
from repro.lang.traversal import contains_app
from repro.sygus.grammar import clia_grammar, qm_grammar
from repro.sygus.problem import InvariantProblem, SygusProblem, SynthFun
from repro.synth.config import SynthConfig
from repro.synth.divide import (
    fixed_term_splits,
    propose_splits,
    subterm_splits,
    weaker_spec_splits,
)

x, y, z = int_var("x"), int_var("y"), int_var("z")


def _max3_qm_problem():
    fun = SynthFun("f", (x, y, z), INT, qm_grammar((x, y, z)))
    fx = fun.apply((x, y, z))
    spec = eq(fx, ite(and_(ge(x, y), ge(x, z)), x, ite(ge(y, z), y, z)))
    return SygusProblem(fun, spec, (x, y, z), name="max3-qm")


def _max2_clia_problem():
    fun = SynthFun("f", (x, y), INT, clia_grammar((x, y)))
    fx = fun.apply((x, y))
    spec = and_(ge(fx, x), ge(fx, y), or_(eq(fx, x), eq(fx, y)))
    return SygusProblem(fun, spec, (x, y), name="max2")


class TestSubtermSplits:
    def test_inner_ite_is_a_candidate(self):
        problem = _max3_qm_problem()
        splits = subterm_splits(problem, SynthConfig())
        subspecs = [split.subproblem for split in splits]
        inner = ite(ge(y, z), y, z)
        assert any(
            s.spec.args[1] is inner if s.spec.kind.value == "=" else False
            for s in subspecs
        )

    def test_full_rhs_excluded(self):
        problem = _max3_qm_problem()
        splits = subterm_splits(problem, SynthConfig())
        rhs = problem.spec.args[1]
        for split in splits:
            assert split.subproblem.spec.args[1] is not rhs

    def test_aux_params_are_subterm_vars(self):
        problem = _max3_qm_problem()
        splits = subterm_splits(problem, SynthConfig())
        inner = ite(ge(y, z), y, z)
        split = next(
            s for s in splits if s.subproblem.spec.args[1] is inner
        )
        assert set(split.subproblem.synth_fun.params) == {y, z}

    def test_resolution_builds_type_b_with_extended_grammar(self):
        from repro.lang import apply_fn

        problem = _max3_qm_problem()
        splits = subterm_splits(problem, SynthConfig())
        inner = ite(ge(y, z), y, z)
        split = next(s for s in splits if s.subproblem.spec.args[1] is inner)
        # Pretend we solved aux with the known solution.
        aux_params = split.subproblem.synth_fun.params
        p1, p2 = aux_params
        aux_body = add(p1, apply_fn("qm", (sub(p2, p1), 0), INT))
        resolution = split.resolve(aux_body)
        assert resolution[0] == "problem"
        type_b = resolution[1]
        aux_name = split.subproblem.fun_name
        assert aux_name in type_b.synth_fun.grammar.interpreted
        # Combining inlines aux, landing back in the original grammar.
        combine = resolution[2]
        b_body = apply_fn(
            aux_name, (z, apply_fn(aux_name, (x, y), INT)), INT
        )
        final = combine(b_body)
        assert not contains_app(final, aux_name)
        assert problem.synth_fun.grammar.generates(final)


class TestFixedTermSplits:
    def test_candidates_from_compared_terms(self):
        problem = _max2_clia_problem()
        splits = fixed_term_splits(problem, SynthConfig())
        assert splits, "max2's spec compares f against x and y"

    def test_resolution_is_direct_solution(self):
        problem = _max2_clia_problem()
        splits = fixed_term_splits(problem, SynthConfig())
        # Find the split whose fixed term is x.
        split = next(
            s for s in splits if "fixedterm" in s.subproblem.name
        )
        # Solve the subproblem "g works when the fixed term fails" with y.
        resolution = split.resolve(y)
        if resolution is not None:
            kind, body = resolution
            assert kind == "solution"
            assert problem.synth_fun.grammar.generates(body)

    def test_multi_invocation_not_applicable(self):
        fun = SynthFun("f", (x, y), INT, clia_grammar((x, y)))
        spec = eq(fun.apply((x, y)), fun.apply((y, x)))
        problem = SygusProblem(fun, spec, (x, y))
        assert fixed_term_splits(problem, SynthConfig()) == []

    def test_correct_combination_semantics(self):
        problem = _max2_clia_problem()
        splits = fixed_term_splits(problem, SynthConfig())
        for split in splits:
            resolution = split.resolve(y)
            if resolution is None:
                continue
            _, body = resolution
            works = all(
                evaluate(body, {"x": a, "y": b}) == max(a, b)
                for a in range(-2, 3)
                for b in range(-2, 3)
            )
            if works:
                return
        # At least one fixed-term division must combine into full max2.
        raise AssertionError("no fixed-term split produced a working max2")


class TestWeakerSpecSplits:
    def _inv_problem(self):
        return InvariantProblem.from_updates(
            (x,),
            eq(x, 0),
            (ite(lt(x, 10), add(x, 1), x),),
            implies(not_(lt(x, 10)), eq(x, 10)),
        ).to_sygus()

    def test_two_divisions_offered(self):
        problem = self._inv_problem()
        splits = weaker_spec_splits(problem)
        assert len(splits) == 2
        for split in splits:
            # Weaker spec: two of the three conjuncts.
            assert len(split.subproblem.spec.args) == 2

    def test_trivial_a_solution_rejected(self):
        from repro.lang import bool_const

        problem = self._inv_problem()
        splits = weaker_spec_splits(problem)
        assert splits[0].resolve(bool_const(True)) is None
        assert splits[1].resolve(bool_const(False)) is None

    def test_resolution_produces_type_b(self):
        from repro.lang import le

        problem = self._inv_problem()
        split = splits = weaker_spec_splits(problem)[0]  # pre + inductive
        # P = x >= 0 satisfies pre->P and inductiveness.
        resolution = split.resolve(ge(x, 0))
        assert resolution is not None and resolution[0] == "problem"
        _, type_b, combine = resolution
        assert type_b.synth_fun.return_sort is BOOL
        # Q = x <= 10 makes P and Q a full invariant.
        combined = combine(le(x, 10))
        ok, _ = problem.verify(combined)
        assert ok

    def test_not_applicable_to_int_problems(self):
        assert weaker_spec_splits(_max2_clia_problem()) == []


class TestProposeSplits:
    def test_cap_respected(self):
        problem = _max3_qm_problem()
        config = SynthConfig(max_subproblems=3)
        assert len(propose_splits(problem, config)) <= 3

    def test_inv_problems_get_weaker_spec_first(self):
        problem = InvariantProblem.from_updates(
            (x,),
            eq(x, 0),
            (ite(lt(x, 10), add(x, 1), x),),
            implies(not_(lt(x, 10)), eq(x, 10)),
        ).to_sygus()
        splits = propose_splits(problem, SynthConfig())
        assert splits[0].strategy == "weaker-spec"
