"""Tests for resumable fixed-height sessions."""

import time

import pytest

from repro.lang import and_, eq, ge, int_var, or_
from repro.lang.sorts import INT
from repro.sygus.grammar import clia_grammar
from repro.sygus.problem import SygusProblem, SynthFun
from repro.synth.cegis import CegisTimeout
from repro.synth.config import SynthConfig
from repro.synth.fixed_height import FixedHeightSession, fixed_height

x, y = int_var("x"), int_var("y")


def _max2_problem():
    fun = SynthFun("f", (x, y), INT, clia_grammar((x, y)))
    fx = fun.apply((x, y))
    spec = and_(ge(fx, x), ge(fx, y), or_(eq(fx, x), eq(fx, y)))
    return SygusProblem(fun, spec, (x, y), name="max2")


class TestSessionLifecycle:
    def test_solves_in_one_run(self):
        problem = _max2_problem()
        session = FixedHeightSession(problem, 2, SynthConfig())
        body = session.run([])
        assert body is not None
        ok, _ = problem.verify(body)
        assert ok

    def test_exhaustion_is_sticky(self):
        problem = _max2_problem()
        session = FixedHeightSession(problem, 1, SynthConfig())
        assert session.run([]) is None
        assert session.exhausted
        # Re-running an exhausted session is a cheap no-op.
        assert session.run([]) is None

    def test_preemption_then_resume(self):
        problem = _max2_problem()
        session = FixedHeightSession(problem, 2, SynthConfig())
        examples = []
        with pytest.raises(CegisTimeout):
            session.run(examples, deadline=time.monotonic() - 1)
        assert not session.exhausted
        # Resume with a real budget: the session completes from saved state.
        body = session.run(examples, deadline=time.monotonic() + 120)
        assert body is not None

    def test_examples_survive_preemption(self):
        problem = _max2_problem()
        session = FixedHeightSession(problem, 2, SynthConfig())
        examples = []
        # Give it a tiny but nonzero budget a few times.
        for _ in range(3):
            try:
                body = session.run(examples, deadline=time.monotonic() + 0.05)
            except CegisTimeout:
                continue
            if body is not None:
                break
        # Whatever happened, collected counterexamples are in the shared list
        # and the CEGIS round counter is monotone.
        assert session.rounds >= 0
        body = session.run(examples, deadline=time.monotonic() + 120)
        assert body is not None


class TestSessionStore:
    def test_fixed_height_reuses_stored_session(self):
        problem = _max2_problem()
        store = {}
        body = fixed_height(
            problem, 1, SynthConfig(), examples=[], session_store=store
        )
        assert body is None
        assert 1 in store and store[1].exhausted
        # A second call at the same height reuses the exhausted session and
        # returns immediately.
        start = time.monotonic()
        assert (
            fixed_height(problem, 1, SynthConfig(), examples=[], session_store=store)
            is None
        )
        assert time.monotonic() - start < 0.5

    def test_without_store_sessions_are_fresh(self):
        problem = _max2_problem()
        assert fixed_height(problem, 2, SynthConfig(), examples=[]) is not None
