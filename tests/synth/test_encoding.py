"""Tests for the symbolic candidate encoders."""

import pytest

from repro.lang import add, and_, eq, evaluate, ge, int_const, int_var, ite, mul, sub
from repro.lang.sorts import BOOL, INT
from repro.sygus.grammar import Grammar, clia_grammar, nonterminal, qm_grammar
from repro.sygus.problem import SynthFun
from repro.synth.affine_encoding import AffineSpineEncoder, affine_operator_view
from repro.synth.encoding import (
    CliaTreeEncoder,
    EncodingUnsupported,
    GeneralGrammarEncoder,
    grammar_is_full_clia,
)

x, y = int_var("x"), int_var("y")


class TestGrammarClassification:
    def test_clia_grammar_detected(self):
        assert grammar_is_full_clia(clia_grammar((x, y)))

    def test_clia_bool_start_detected(self):
        assert grammar_is_full_clia(clia_grammar((x,), start_sort=BOOL))

    def test_qm_grammar_not_clia(self):
        assert not grammar_is_full_clia(qm_grammar((x, y)))

    def test_qm_grammar_is_affine_operator_view(self):
        ops = affine_operator_view(qm_grammar((x, y)))
        assert ops is not None and [op.name for op in ops] == ["qm"]

    def test_clia_grammar_not_affine_view(self):
        assert affine_operator_view(clia_grammar((x, y))) is None


class TestCliaTreeEncoder:
    def test_solve_and_decode_round_trip(self):
        from repro.smt.solver import SmtSolver, Status

        fun = SynthFun("f", (x, y), INT, clia_grammar((x, y)))
        encoder = CliaTreeEncoder(fun, 2, "t")
        # Ask for a candidate computing max on three concrete points.
        points = [((0, 1), 1), ((5, 2), 5), ((-3, -4), -3)]
        parts = [encoder.static_constraints(1, 1)]
        for args, expected in points:
            value, side = encoder.app_instance(args)
            parts.append(side)
            parts.append(eq(value, int_const(expected)))
        solver = SmtSolver()
        result = solver.check(and_(*parts))
        assert result.status is Status.SAT
        body = encoder.decode(result.model, (x, y))
        for (a, b), expected in points:
            assert evaluate(body, {"x": a, "y": b}) == expected

    def test_initial_candidate_sorts(self):
        fun = SynthFun("f", (x, y), INT, clia_grammar((x, y)))
        assert CliaTreeEncoder(fun, 1, "t").initial_candidate().sort is INT
        pfun = SynthFun("p", (x,), BOOL, clia_grammar((x,), start_sort=BOOL))
        assert CliaTreeEncoder(pfun, 1, "t").initial_candidate().sort is BOOL


class TestGeneralGrammarEncoder:
    def _tiny_grammar(self):
        s = nonterminal("S", INT)
        return Grammar(
            {"S": INT},
            "S",
            {"S": [x, y, int_const(0), int_const(1), add(s, s), sub(s, s)]},
            {},
            (x, y),
        )

    def test_decode_is_grammar_member(self):
        from repro.smt.solver import SmtSolver, Status

        grammar = self._tiny_grammar()
        fun = SynthFun("f", (x, y), INT, grammar)
        encoder = GeneralGrammarEncoder(fun, 2, "g")
        # f(3, 4) = 7 and f(1, 1) = 2: x + y works.
        parts = [encoder.static_constraints(1, 1)]
        v1, side1 = encoder.app_instance((3, 4))
        v2, side2 = encoder.app_instance((1, 1))
        parts.extend([side1, side2, eq(v1, 7), eq(v2, 2)])
        result = SmtSolver().check(and_(*parts))
        assert result.status is Status.SAT
        body = encoder.decode(result.model, (x, y))
        assert grammar.generates(body) or evaluate(body, {"x": 3, "y": 4}) == 7
        assert evaluate(body, {"x": 3, "y": 4}) == 7
        assert evaluate(body, {"x": 1, "y": 1}) == 2

    def test_nonlinear_production_rejected(self):
        s = nonterminal("S", INT)
        grammar = Grammar({"S": INT}, "S", {"S": [x, mul(s, s)]}, {}, (x,))
        fun = SynthFun("f", (x,), INT, grammar)
        with pytest.raises(EncodingUnsupported):
            GeneralGrammarEncoder(fun, 2, "g")

    def test_no_terminal_production_rejected(self):
        s = nonterminal("S", INT)
        grammar = Grammar({"S": INT}, "S", {"S": [add(s, s)]}, {}, (x,))
        fun = SynthFun("f", (x,), INT, grammar)
        with pytest.raises(EncodingUnsupported):
            GeneralGrammarEncoder(fun, 2, "g")

    def test_initial_candidate_member(self):
        grammar = self._tiny_grammar()
        fun = SynthFun("f", (x, y), INT, grammar)
        encoder = GeneralGrammarEncoder(fun, 2, "g")
        assert grammar.generates(encoder.initial_candidate())


class TestAffineSpineEncoder:
    def test_requires_affine_grammar(self):
        fun = SynthFun("f", (x, y), INT, clia_grammar((x, y)))
        with pytest.raises(EncodingUnsupported):
            AffineSpineEncoder(fun, 2, "a")

    def test_solve_decode_verify_qm(self):
        from repro.smt.solver import SmtSolver, Status

        grammar = qm_grammar((x, y))
        fun = SynthFun("f", (x, y), INT, grammar)
        encoder = AffineSpineEncoder(fun, 2, "a")
        # Constrain three points of max(x, y).
        points = [((0, 1), 1), ((5, 2), 5), ((-3, -4), -3), ((2, 2), 2)]
        parts = [encoder.static_constraints(2, 1)]
        for args, expected in points:
            value, side = encoder.app_instance(args)
            parts.append(side)
            parts.append(eq(value, int_const(expected)))
        result = SmtSolver().check(and_(*parts))
        assert result.status is Status.SAT
        body = encoder.decode(result.model, (x, y))
        funcs = {"qm": (grammar.interpreted["qm"].params, grammar.interpreted["qm"].body)}
        for (a, b), expected in points:
            assert evaluate(body, {"x": a, "y": b}, funcs) == expected

    def test_decoded_candidate_is_grammar_member(self):
        from repro.smt.solver import SmtSolver, Status

        grammar = qm_grammar((x, y))
        fun = SynthFun("f", (x, y), INT, grammar)
        encoder = AffineSpineEncoder(fun, 2, "a")
        value, side = encoder.app_instance((1, 2))
        result = SmtSolver().check(
            and_(encoder.static_constraints(2, 1), side, eq(value, 3))
        )
        assert result.status is Status.SAT
        body = encoder.decode(result.model, (x, y))
        assert grammar.generates(body)
