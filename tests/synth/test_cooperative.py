"""End-to-end tests for the cooperative synthesizer (Algorithm 1)."""

from repro.lang import (
    add,
    and_,
    apply_fn,
    eq,
    evaluate,
    ge,
    implies,
    int_const,
    int_var,
    ite,
    lt,
    not_,
    or_,
    sub,
)
from repro.lang.sorts import INT
from repro.sygus.grammar import (
    Grammar,
    InterpretedFunction,
    clia_grammar,
    nonterminal,
    qm_grammar,
)
from repro.sygus.problem import InvariantProblem, SygusProblem, SynthFun
from repro.synth import CooperativeSynthesizer, SynthConfig

x, y, z = int_var("x"), int_var("y"), int_var("z")


def _solve(problem, timeout=60, **kwargs):
    config = SynthConfig(timeout=timeout, **kwargs)
    return CooperativeSynthesizer(config).synthesize(problem)


class TestCliaTrack:
    def test_max2(self):
        fun = SynthFun("f", (x, y), INT, clia_grammar((x, y)))
        fx = fun.apply((x, y))
        spec = and_(ge(fx, x), ge(fx, y), or_(eq(fx, x), eq(fx, y)))
        problem = SygusProblem(fun, spec, (x, y), name="max2")
        outcome = _solve(problem)
        assert outcome.solved
        ok, _ = problem.verify(outcome.solution.body)
        assert ok

    def test_max3_solved_by_deduction(self):
        fun = SynthFun("f", (x, y, z), INT, clia_grammar((x, y, z)))
        fx = fun.apply((x, y, z))
        spec = and_(
            ge(fx, x),
            ge(fx, y),
            ge(fx, z),
            or_(eq(fx, x), eq(fx, y), eq(fx, z)),
        )
        problem = SygusProblem(fun, spec, (x, y, z), name="max3")
        outcome = _solve(problem)
        assert outcome.solved
        assert outcome.stats.deduction_solved
        assert outcome.solution.time_seconds < 10

    def test_reference_spec(self):
        fun = SynthFun("f", (x, y), INT, clia_grammar((x, y)))
        spec = eq(fun.apply((x, y)), ite(ge(x, 0), add(x, y), y))
        problem = SygusProblem(fun, spec, (x, y), name="relu-shift")
        outcome = _solve(problem)
        assert outcome.solved
        ok, _ = problem.verify(outcome.solution.body)
        assert ok


class TestInvTrack:
    def test_count_loop_via_summary(self):
        inv = InvariantProblem.from_updates(
            (x,),
            eq(x, 0),
            (ite(lt(x, 100), add(x, 1), x),),
            implies(not_(lt(x, 100)), eq(x, 100)),
        )
        problem = inv.to_sygus()
        outcome = _solve(problem)
        assert outcome.solved
        assert outcome.stats.deduction_solved
        ok, _ = problem.verify(outcome.solution.body)
        assert ok

    def test_range_init_loop_without_summary(self):
        from repro.lang import le

        inv = InvariantProblem.from_updates(
            (x,),
            and_(ge(x, 0), le(x, 2)),
            (ite(lt(x, 6), add(x, 1), x),),
            le(x, 6),
        )
        problem = inv.to_sygus()
        outcome = _solve(problem, timeout=90)
        assert outcome.solved
        ok, _ = problem.verify(outcome.solution.body)
        assert ok


class TestGeneralTrack:
    def test_qm_max2(self):
        fun = SynthFun("f", (x, y), INT, qm_grammar((x, y)))
        spec = eq(fun.apply((x, y)), ite(ge(x, y), x, y))
        problem = SygusProblem(fun, spec, (x, y), name="qm-max2")
        outcome = _solve(problem, timeout=120)
        assert outcome.solved
        assert problem.synth_fun.grammar.generates(outcome.solution.body)
        ok, _ = problem.verify(outcome.solution.body)
        assert ok

    def test_match_rule_double(self):
        x1 = int_var("x1")
        double = InterpretedFunction("double", (x1,), add(x1, x1))
        s = nonterminal("S", INT)
        grammar = Grammar(
            {"S": INT},
            "S",
            {"S": [x, int_const(0), int_const(1), apply_fn("double", (s,), INT)]},
            {"double": double},
            (x,),
        )
        fun = SynthFun("f", (x,), INT, grammar)
        spec = eq(fun.apply((x,)), add(x, x, x, x))
        problem = SygusProblem(fun, spec, (x,), name="double-2")
        outcome = _solve(problem)
        assert outcome.solved
        assert outcome.stats.deduction_solved
        assert grammar.generates(outcome.solution.body)


class TestConfigurationAblations:
    def _max2_problem(self):
        fun = SynthFun("f", (x, y), INT, clia_grammar((x, y)))
        fx = fun.apply((x, y))
        spec = and_(ge(fx, x), ge(fx, y), or_(eq(fx, x), eq(fx, y)))
        return SygusProblem(fun, spec, (x, y), name="max2")

    def test_deduction_disabled_still_solves(self):
        outcome = _solve(self._max2_problem(), enable_deduction=False)
        assert outcome.solved
        assert not outcome.stats.deduction_solved

    def test_divide_disabled_still_solves(self):
        outcome = _solve(self._max2_problem(), enable_divide=False)
        assert outcome.solved
        assert outcome.stats.subproblems_created == 0

    def test_timeout_respected(self):
        import time

        params = tuple(int_var(f"v{i}") for i in range(5))
        fun = SynthFun("f", params, INT, clia_grammar(params))
        fx = fun.apply(params)
        spec = and_(
            *(ge(fx, p) for p in params), or_(*(eq(fx, p) for p in params))
        )
        problem = SygusProblem(fun, spec, params, name="max5")
        start = time.monotonic()
        outcome = _solve(problem, timeout=3, enable_deduction=False,
                         enable_divide=False)
        elapsed = time.monotonic() - start
        if not outcome.solved:
            assert outcome.timed_out
        assert elapsed < 45  # slack for one slow SMT call past the deadline

    def test_custom_enum_engine_is_used(self):
        calls = []

        def engine(problem, height, examples, config, deadline, stats):
            calls.append(height)
            return None

        config = SynthConfig(timeout=10, enable_deduction=False, max_height=2)
        synthesizer = CooperativeSynthesizer(config, enum_engine=engine)
        outcome = synthesizer.synthesize(self._max2_problem())
        assert not outcome.solved
        assert calls, "the custom engine must be invoked"
