"""Tests for fixed-height synthesis (Algorithm 2) and height enumeration."""

from repro.lang import (
    add,
    and_,
    eq,
    evaluate,
    ge,
    implies,
    int_var,
    ite,
    le,
    lt,
    not_,
    or_,
    sub,
)
from repro.lang.sorts import BOOL, INT
from repro.sygus.grammar import clia_grammar, qm_grammar
from repro.sygus.problem import InvariantProblem, SygusProblem, SynthFun
from repro.synth.config import SynthConfig
from repro.synth.encoding import CliaTreeEncoder, GeneralGrammarEncoder
from repro.synth.affine_encoding import AffineSpineEncoder
from repro.synth.fixed_height import (
    HeightEnumerationSynthesizer,
    fixed_height,
    make_encoder,
)
from repro.synth.result import SynthesisStats

x, y = int_var("x"), int_var("y")


def _max2_problem():
    fun = SynthFun("f", (x, y), INT, clia_grammar((x, y)))
    fx = fun.apply((x, y))
    spec = and_(ge(fx, x), ge(fx, y), or_(eq(fx, x), eq(fx, y)))
    return SygusProblem(fun, spec, (x, y), track="CLIA", name="max2")


class TestMakeEncoder:
    def test_clia_grammar_gets_decision_tree(self):
        problem = _max2_problem()
        assert isinstance(make_encoder(problem, 2), CliaTreeEncoder)

    def test_qm_grammar_gets_affine_encoder(self):
        fun = SynthFun("f", (x, y), INT, qm_grammar((x, y)))
        problem = SygusProblem(fun, eq(fun.apply((x, y)), x), (x, y))
        assert isinstance(make_encoder(problem, 2), AffineSpineEncoder)

    def test_other_grammars_get_general_encoder(self):
        from repro.lang import int_const
        from repro.sygus.grammar import Grammar, nonterminal

        s = nonterminal("S", INT)
        grammar = Grammar(
            {"S": INT}, "S", {"S": [x, int_const(1), add(s, s)]}, {}, (x,)
        )
        fun = SynthFun("f", (x,), INT, grammar)
        problem = SygusProblem(fun, eq(fun.apply((x,)), x), (x,))
        assert isinstance(make_encoder(problem, 2), GeneralGrammarEncoder)


class TestFixedHeight:
    def test_no_height1_max2(self):
        problem = _max2_problem()
        stats = SynthesisStats()
        assert fixed_height(problem, 1, SynthConfig(), stats=stats) is None
        assert stats.smt_checks >= 1

    def test_height2_solves_max2(self):
        problem = _max2_problem()
        body = fixed_height(problem, 2, SynthConfig())
        assert body is not None
        ok, _ = problem.verify(body)
        assert ok

    def test_identity_at_height1(self):
        fun = SynthFun("f", (x, y), INT, clia_grammar((x, y)))
        problem = SygusProblem(fun, eq(fun.apply((x, y)), add(x, y)), (x, y))
        body = fixed_height(problem, 1, SynthConfig())
        assert body is not None
        assert evaluate(body, {"x": 3, "y": 4}) == 7

    def test_shared_examples_persist(self):
        problem = _max2_problem()
        examples = []
        fixed_height(problem, 1, SynthConfig(), examples=examples)
        assert examples
        count = len(examples)
        body = fixed_height(problem, 2, SynthConfig(), examples=examples)
        assert body is not None
        assert len(examples) >= count

    def test_bool_synthesis_for_predicates(self):
        grammar = clia_grammar((x,), start_sort=BOOL)
        fun = SynthFun("p", (x,), BOOL, grammar)
        px = fun.apply((x,))
        # p(x) <=> x >= 3 (via both implications).
        spec = and_(implies(px, ge(x, 3)), implies(ge(x, 3), px))
        problem = SygusProblem(fun, spec, (x,))
        body = fixed_height(problem, 1, SynthConfig())
        assert body is not None
        assert evaluate(body, {"x": 3}) is True
        assert evaluate(body, {"x": 2}) is False


class TestHeightEnumeration:
    def test_max2_solved_at_minimal_height(self):
        synthesizer = HeightEnumerationSynthesizer(SynthConfig(timeout=60))
        outcome = synthesizer.synthesize(_max2_problem())
        assert outcome.solved
        assert outcome.stats.max_height_reached == 2
        ok, _ = _max2_problem().verify(outcome.solution.body)
        assert ok

    def test_unreachable_height_gives_up(self):
        # max over 4 variables cannot fit in height 2 decision trees.
        params = tuple(int_var(f"v{i}") for i in range(4))
        fun = SynthFun("f", params, INT, clia_grammar(params))
        fx = fun.apply(params)
        spec = and_(
            *(ge(fx, p) for p in params), or_(*(eq(fx, p) for p in params))
        )
        problem = SygusProblem(fun, spec, params)
        synthesizer = HeightEnumerationSynthesizer(
            SynthConfig(timeout=30, max_height=2)
        )
        outcome = synthesizer.synthesize(problem)
        assert not outcome.solved

    def test_qm_max2(self):
        fun = SynthFun("f", (x, y), INT, qm_grammar((x, y)))
        spec = eq(fun.apply((x, y)), ite(ge(x, y), x, y))
        problem = SygusProblem(fun, spec, (x, y), track="General")
        synthesizer = HeightEnumerationSynthesizer(SynthConfig(timeout=90))
        outcome = synthesizer.synthesize(problem)
        assert outcome.solved
        assert problem.synth_fun.grammar.generates(outcome.solution.body)
        ok, _ = problem.verify(outcome.solution.body)
        assert ok

    def test_invariant_problem_via_bool_trees(self):
        inv = InvariantProblem.from_updates(
            (x,),
            eq(x, 0),
            (ite(lt(x, 4), add(x, 1), x),),
            implies(not_(lt(x, 4)), eq(x, 4)),
        )
        problem = inv.to_sygus()
        synthesizer = HeightEnumerationSynthesizer(SynthConfig(timeout=90))
        outcome = synthesizer.synthesize(problem)
        assert outcome.solved
        ok, _ = problem.verify(outcome.solution.body)
        assert ok
