"""Tests for the sequential portfolio and virtual best solver."""

import pytest

from repro.bench.runner import RunResult
from repro.lang import and_, eq, ge, int_var, or_
from repro.lang.sorts import INT
from repro.sygus.grammar import clia_grammar
from repro.sygus.problem import SygusProblem, SynthFun
from repro.synth.config import SynthConfig
from repro.synth.portfolio import (
    ProcessPortfolio,
    SequentialPortfolio,
    vbs_summary,
    virtual_best,
)

x, y = int_var("x"), int_var("y")


def _max2_problem():
    fun = SynthFun("f", (x, y), INT, clia_grammar((x, y)))
    fx = fun.apply((x, y))
    spec = and_(ge(fx, x), ge(fx, y), or_(eq(fx, x), eq(fx, y)))
    return SygusProblem(fun, spec, (x, y), name="max2")


class TestSequentialPortfolio:
    def test_default_portfolio_solves_max2(self):
        portfolio = SequentialPortfolio.default(SynthConfig(timeout=60))
        outcome = portfolio.synthesize(_max2_problem())
        assert outcome.solved
        assert outcome.solution.engine.startswith("portfolio:")
        ok, _ = _max2_problem().verify(outcome.solution.body)
        assert ok

    def test_fallback_member_gets_its_turn(self):
        class Hopeless:
            def __init__(self, config):
                pass

            def synthesize(self, problem):
                from repro.synth.result import SynthesisOutcome, SynthesisStats

                return SynthesisOutcome(None, SynthesisStats())

        from repro.synth.cooperative import CooperativeSynthesizer

        portfolio = SequentialPortfolio(
            [("nope", Hopeless, 0.5), ("real", CooperativeSynthesizer, 0.5)],
            SynthConfig(timeout=60),
        )
        outcome = portfolio.synthesize(_max2_problem())
        assert outcome.solved
        assert outcome.solution.engine == "portfolio:real"

    def test_empty_portfolio_rejected(self):
        with pytest.raises(ValueError):
            SequentialPortfolio([], SynthConfig())


class TestProcessPortfolio:
    def test_races_members_and_reports_winner(self):
        portfolio = ProcessPortfolio(config=SynthConfig(timeout=60), workers=2)
        outcome = portfolio.synthesize(_max2_problem())
        assert outcome.solved
        assert outcome.solution.engine.startswith("portfolio-mp:")
        ok, _ = _max2_problem().verify(outcome.solution.body)
        assert ok

    def test_empty_members_rejected(self):
        with pytest.raises(ValueError):
            ProcessPortfolio(members=(), config=SynthConfig())


class TestVirtualBest:
    def _results(self):
        return [
            RunResult("a", "CLIA", "s1", True, 2.0, 5),
            RunResult("a", "CLIA", "s2", True, 0.5, 9),
            RunResult("b", "CLIA", "s1", True, 1.0, 4),
            RunResult("b", "CLIA", "s2", False, 10.0),
            RunResult("c", "CLIA", "s1", False, 10.0),
            RunResult("c", "CLIA", "s2", False, 10.0),
        ]

    def test_per_benchmark_minimum(self):
        best = virtual_best(self._results())
        assert best["a"].solver == "s2" and best["a"].time_seconds == 0.5
        assert best["b"].solver == "s1"
        assert best["c"] is None

    def test_summary(self):
        summary = vbs_summary(self._results())
        assert summary["solved"] == 2
        assert summary["total"] == 3
        assert summary["contributions"] == {"s1": 1, "s2": 1}
        assert summary["total_time"] == 1.5
