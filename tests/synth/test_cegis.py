"""Tests for the generic CEGIS loop."""

import time

import pytest

from repro.lang import and_, eq, ge, int_var, ite, or_
from repro.lang.sorts import INT
from repro.sygus.grammar import clia_grammar
from repro.sygus.problem import SygusProblem, SynthFun
from repro.synth.cegis import CegisTimeout, cegis

x, y = int_var("x"), int_var("y")


def _max2_problem():
    fun = SynthFun("f", (x, y), INT, clia_grammar((x, y)))
    fx = fun.apply((x, y))
    spec = and_(ge(fx, x), ge(fx, y), or_(eq(fx, x), eq(fx, y)))
    return SygusProblem(fun, spec, (x, y), name="max2")


class TestCegis:
    def test_correct_initial_candidate_needs_no_synthesis(self):
        problem = _max2_problem()
        calls = []

        def ind_synth(examples):
            calls.append(len(examples))
            raise AssertionError("should not be called")

        solution, examples, iterations = cegis(
            problem, ind_synth, initial_candidate=ite(ge(x, y), x, y)
        )
        assert solution is ite(ge(x, y), x, y)
        assert iterations == 1
        assert not calls

    def test_counterexamples_accumulate(self):
        problem = _max2_problem()
        candidates = iter([y, ite(ge(x, y), x, y)])

        def ind_synth(examples):
            return next(candidates)

        solution, examples, iterations = cegis(
            problem, ind_synth, initial_candidate=x
        )
        assert solution is ite(ge(x, y), x, y)
        assert len(examples) >= 1

    def test_exhausted_synthesizer_returns_none(self):
        problem = _max2_problem()

        def ind_synth(examples):
            return None

        solution, _, _ = cegis(problem, ind_synth, initial_candidate=x)
        assert solution is None

    def test_round_limit(self):
        problem = _max2_problem()

        def ind_synth(examples):
            return x  # never correct, never progresses

        solution, _, iterations = cegis(
            problem, ind_synth, initial_candidate=x, max_rounds=3
        )
        assert solution is None
        assert iterations <= 3

    def test_deadline_raises(self):
        problem = _max2_problem()
        with pytest.raises(CegisTimeout):
            cegis(
                problem,
                lambda examples: x,
                initial_candidate=x,
                deadline=time.monotonic() - 1,
            )

    def test_shared_example_list_is_mutated(self):
        problem = _max2_problem()
        shared = []

        def ind_synth(examples):
            return None

        cegis(problem, ind_synth, initial_candidate=x, examples=shared)
        assert shared, "the counterexample must land in the shared list"

    def test_duplicate_cex_from_initial_candidate_is_tolerated(self):
        """With shared examples the initial candidate may regenerate a known
        counterexample; CEGIS must continue, not give up (regression test)."""
        problem = _max2_problem()
        # Seed with the exact counterexample that verify(x) would produce.
        ok, cex = problem.verify(x)
        assert not ok
        shared = [cex]
        candidates = iter([ite(ge(x, y), x, y)])

        def ind_synth(examples):
            return next(candidates)

        solution, _, _ = cegis(
            problem, ind_synth, initial_candidate=x, examples=shared
        )
        assert solution is not None
