"""The single-solver assumption-based bound-widening session.

Pins the tentpole invariant (one incremental ``SmtSolver`` per session,
whatever the widening schedule) and the ``HeightEnumerationSynthesizer``
budget-vs-timeout bugfix.
"""

import time

import pytest

from repro.lang import and_, eq, ge, implies, int_var, le, or_
from repro.lang.sorts import INT
from repro.smt.solver import SmtSolver, SolverBudgetExceeded
from repro.sygus.grammar import clia_grammar
from repro.sygus.problem import SygusProblem, SynthFun
from repro.synth import fixed_height as fixed_height_module
from repro.synth.config import SynthConfig
from repro.synth.fixed_height import (
    FixedHeightSession,
    HeightEnumerationSynthesizer,
)
from repro.synth.result import SynthesisStats

x, y = int_var("x"), int_var("y")


def _max2_problem():
    fun = SynthFun("f", (x, y), INT, clia_grammar((x, y)))
    fx = fun.apply((x, y))
    spec = and_(ge(fx, x), ge(fx, y), or_(eq(fx, x), eq(fx, y)))
    return SygusProblem(fun, spec, (x, y), name="max2")


def _const_problem(value: int):
    """f() must equal a specific constant: forces constant-bound widening."""
    fun = SynthFun("f", (x,), INT, clia_grammar((x,)))
    fx = fun.apply((x,))
    return SygusProblem(fun, eq(fx, value), (x,), name=f"const{value}")


class TestSingleSolverInvariant:
    def test_session_holds_exactly_one_solver(self):
        problem = _max2_problem()
        config = SynthConfig(const_bounds=(1, 10, 100))
        session = FixedHeightSession(problem, 2, config)
        assert session.solver is None  # lazily created on the first query
        body = session.run([])
        assert body is not None
        assert isinstance(session.solver, SmtSolver)
        # One solver total — widening happened via assumptions, not via a
        # per-bound solver fleet.
        assert not hasattr(session, "_solvers")

    def test_widening_needs_one_solver_and_finds_large_const(self):
        problem = _const_problem(73)
        config = SynthConfig(const_bounds=(1, 10, 100))
        session = FixedHeightSession(problem, 1, config)
        body = session.run([])
        assert body is not None
        ok, _ = problem.verify(body)
        assert ok
        assert isinstance(session.solver, SmtSolver)

    def test_solver_state_reused_across_cegis_iterations(self):
        problem = _max2_problem()
        session = FixedHeightSession(problem, 2, SynthConfig())
        body = session.run([])
        assert body is not None
        solver = session.solver
        # Multiple CEGIS iterations ran; all their queries hit this solver.
        assert solver is not None
        assert solver.stats.checks >= 2

    def test_stats_record_smt_rounds(self):
        problem = _max2_problem()
        stats = SynthesisStats()
        session = FixedHeightSession(problem, 2, SynthConfig(), stats=stats)
        assert session.run([]) is not None
        assert stats.smt_checks > 0
        assert stats.smt_rounds > 0


class TestAssumptionCoreSkips:
    def test_unsat_without_guard_skips_remaining_bounds(self):
        # Height 1 cannot express max2 (needs an ite): ind-synth eventually
        # goes unsat for reasons independent of the constant bound, and the
        # unsat assumption core proves it, skipping the wider bounds.
        problem = _max2_problem()
        stats = SynthesisStats()
        config = SynthConfig(const_bounds=(1, 10, 100))
        session = FixedHeightSession(problem, 1, config, stats=stats)
        assert session.run([]) is None
        assert session.exhausted
        assert stats.assumption_core_skips > 0

    def test_dead_bounds_are_never_retried(self):
        problem = _const_problem(73)
        config = SynthConfig(const_bounds=(1, 10, 100))
        session = FixedHeightSession(problem, 1, config)
        # Widening discards bounds that cannot reach 73 (spec-constant
        # seeding may already drop some; the session must end viable).
        assert session.run([]) is not None
        assert session._first_viable < len(session.bounds)


class TestHeightBudgetRegression:
    def test_budget_exhaustion_at_one_height_advances_to_next(self, monkeypatch):
        # Regression: any SolverBudgetExceeded (e.g. the LIA node budget at
        # one height) used to be treated as a global timeout, abandoning the
        # enumeration even though the next height might be easy.
        problem = _max2_problem()
        calls = []

        def fake_fixed_height(problem, height, config, **kwargs):
            calls.append(height)
            if height == 1:
                raise SolverBudgetExceeded("exceeded 20000 LIA nodes")
            return fixed_height_module.make_encoder(
                problem, height
            ).initial_candidate()

        monkeypatch.setattr(fixed_height_module, "fixed_height", fake_fixed_height)
        synthesizer = HeightEnumerationSynthesizer(
            SynthConfig(max_height=3, timeout=60.0)
        )
        outcome = synthesizer.synthesize(problem)
        assert calls == [1, 2] or calls[:2] == [1, 2]
        assert not outcome.timed_out

    def test_real_wall_clock_expiry_still_times_out(self, monkeypatch):
        problem = _max2_problem()

        def fake_fixed_height(problem, height, config, **kwargs):
            raise SolverBudgetExceeded("SMT deadline exceeded")

        monkeypatch.setattr(fixed_height_module, "fixed_height", fake_fixed_height)
        synthesizer = HeightEnumerationSynthesizer(
            SynthConfig(max_height=3, timeout=-1.0)
        )
        outcome = synthesizer.synthesize(problem)
        assert outcome.timed_out
        assert not outcome.solved

    def test_budget_exhaustion_on_every_height_is_not_a_timeout(self, monkeypatch):
        problem = _max2_problem()

        def fake_fixed_height(problem, height, config, **kwargs):
            raise SolverBudgetExceeded("exceeded 20000 LIA nodes")

        monkeypatch.setattr(fixed_height_module, "fixed_height", fake_fixed_height)
        synthesizer = HeightEnumerationSynthesizer(
            SynthConfig(max_height=2, timeout=60.0)
        )
        outcome = synthesizer.synthesize(problem)
        assert not outcome.timed_out
        assert not outcome.solved
        assert outcome.stats.heights_tried == 2


class TestStatsPlumbing:
    def test_merge_includes_new_counters(self):
        a = SynthesisStats(
            smt_rounds=3,
            theory_lemmas=2,
            assumption_core_skips=1,
            learnt_clauses_deleted=4,
        )
        b = SynthesisStats(
            smt_rounds=10,
            theory_lemmas=1,
            assumption_core_skips=2,
            learnt_clauses_deleted=0,
        )
        a.merge(b)
        assert a.smt_rounds == 13
        assert a.theory_lemmas == 3
        assert a.assumption_core_skips == 3
        assert a.learnt_clauses_deleted == 4

    def test_from_json_roundtrip(self):
        stats = SynthesisStats(smt_rounds=7, assumption_core_skips=5)
        from dataclasses import asdict

        rebuilt = SynthesisStats.from_json(asdict(stats))
        assert rebuilt == stats
