"""Tests for the synthesis trace (observability of Algorithm 1)."""

from repro.lang import and_, eq, ge, int_var, or_
from repro.lang.sorts import INT
from repro.sygus.grammar import clia_grammar
from repro.sygus.problem import SygusProblem, SynthFun
from repro.synth import CooperativeSynthesizer, SynthConfig
from repro.synth.trace import SynthesisTrace, TraceEvent

x, y = int_var("x"), int_var("y")


def _max2_problem():
    fun = SynthFun("f", (x, y), INT, clia_grammar((x, y)))
    fx = fun.apply((x, y))
    spec = and_(ge(fx, x), ge(fx, y), or_(eq(fx, x), eq(fx, y)))
    return SygusProblem(fun, spec, (x, y), name="max2")


class TestTraceRecording:
    def test_events_accumulate_with_timestamps(self):
        trace = SynthesisTrace()
        trace.record("deduct", "p")
        trace.record("enum", "p", "miss", height=1)
        assert len(trace) == 2
        assert trace.events[0].elapsed <= trace.events[1].elapsed

    def test_queries(self):
        trace = SynthesisTrace()
        trace.record("deduct", "p")
        trace.record("split", "p", "subterm:p/sub0")
        trace.record("enum", "p", "miss", height=1)
        trace.record("enum", "p", "hit", height=2)
        trace.record("solved", "p", "direct")
        assert trace.problems_deduced() == ["p"]
        assert trace.splits() == {"p": ["subterm:p/sub0"]}
        assert trace.heights_searched("p") == [1, 2]
        assert trace.solution_source() == "direct"

    def test_render(self):
        trace = SynthesisTrace()
        trace.record("enum", "p", "hit", height=2)
        assert "enum" in trace.render() and "h=2" in trace.render()

    def test_event_str(self):
        event = TraceEvent("deduct", "max2", elapsed=1.25)
        assert "deduct" in str(event) and "max2" in str(event)


class TestTraceJson:
    def test_round_trip(self):
        import json

        trace = SynthesisTrace()
        trace.record("deduct", "p")
        trace.record("enum", "p", "miss", height=1)
        trace.record("solved", "p", "direct")
        data = json.loads(json.dumps(trace.to_json()))
        assert data["format"] == "repro-trace/1"
        clone = SynthesisTrace.from_json(data)
        assert len(clone) == len(trace)
        assert clone.events == trace.events
        assert clone.heights_searched("p") == [1]
        assert clone.solution_source() == "direct"

    def test_empty_trace_round_trips(self):
        clone = SynthesisTrace.from_json(SynthesisTrace().to_json())
        assert len(clone) == 0

    def test_time_base_preserved_across_round_trip(self):
        """Regression: from_json used to restart the clock at load time.

        Events recorded after deserialization then carried timestamps
        *earlier* than the preserved ones, so merged/rendered traces went
        backwards in time.  The serialized ``age`` must anchor new events
        after everything already in the trace.
        """
        trace = SynthesisTrace()
        trace.record("deduct", "p")
        data = trace.to_json()
        assert data["age"] >= trace.events[-1].elapsed
        clone = SynthesisTrace.from_json(data)
        clone.record("solved", "p", "direct")
        preserved, fresh = clone.events
        assert fresh.elapsed >= preserved.elapsed
        assert fresh.elapsed >= data["age"]
        # A second round-trip keeps accumulating age monotonically.
        again = SynthesisTrace.from_json(clone.to_json())
        assert again.to_json()["age"] >= data["age"]

    def test_from_json_without_age_falls_back_to_last_event(self):
        data = {
            "format": "repro-trace/1",
            "events": [
                {"kind": "deduct", "problem": "p", "detail": "",
                 "height": None, "elapsed": 3.5}
            ],
        }
        clone = SynthesisTrace.from_json(data)
        clone.record("enum", "p", "miss", height=1)
        assert clone.events[-1].elapsed >= 3.5


class TestCooperativeIntegration:
    def test_trace_captures_the_run(self):
        trace = SynthesisTrace()
        problem = _max2_problem()
        synthesizer = CooperativeSynthesizer(
            SynthConfig(timeout=60), trace=trace
        )
        outcome = synthesizer.synthesize(problem)
        assert outcome.solved
        assert "max2" in trace.problems_deduced()
        assert trace.of_kind("solved"), "the solution event must be recorded"

    def test_enum_heights_recorded_when_deduction_disabled(self):
        trace = SynthesisTrace()
        problem = _max2_problem()
        synthesizer = CooperativeSynthesizer(
            SynthConfig(timeout=60, enable_deduction=False, enable_divide=False),
            trace=trace,
        )
        outcome = synthesizer.synthesize(problem)
        assert outcome.solved
        heights = trace.heights_searched("max2")
        assert heights and heights == sorted(heights)
        assert heights[-1] == 2  # max2 lives at height 2

    def test_no_trace_is_fine(self):
        synthesizer = CooperativeSynthesizer(SynthConfig(timeout=60))
        assert synthesizer.synthesize(_max2_problem()).solved
