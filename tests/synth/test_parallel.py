"""Tests for the parallel height search (Section 5.1)."""

from repro.lang import and_, eq, ge, int_var, or_
from repro.lang.sorts import INT
from repro.sygus.grammar import clia_grammar
from repro.sygus.problem import SygusProblem, SynthFun
from repro.synth.config import SynthConfig
from repro.synth.parallel import ParallelHeightSynthesizer

x, y = int_var("x"), int_var("y")


def _max2_problem():
    fun = SynthFun("f", (x, y), INT, clia_grammar((x, y)))
    fx = fun.apply((x, y))
    spec = and_(ge(fx, x), ge(fx, y), or_(eq(fx, x), eq(fx, y)))
    return SygusProblem(fun, spec, (x, y), name="max2")


class TestParallelHeights:
    def test_solves_max2_with_two_workers(self):
        problem = _max2_problem()
        synthesizer = ParallelHeightSynthesizer(SynthConfig(timeout=60), width=2)
        outcome = synthesizer.synthesize(problem)
        assert outcome.solved
        ok, _ = problem.verify(outcome.solution.body)
        assert ok

    def test_single_worker_degenerates_to_sequential(self):
        problem = _max2_problem()
        synthesizer = ParallelHeightSynthesizer(SynthConfig(timeout=60), width=1)
        outcome = synthesizer.synthesize(problem)
        assert outcome.solved

    def test_unsolvable_within_height_cap(self):
        params = tuple(int_var(f"v{i}") for i in range(4))
        fun = SynthFun("f", params, INT, clia_grammar(params))
        fx = fun.apply(params)
        spec = and_(
            *(ge(fx, p) for p in params), or_(*(eq(fx, p) for p in params))
        )
        problem = SygusProblem(fun, spec, params, name="max4")
        synthesizer = ParallelHeightSynthesizer(
            SynthConfig(timeout=30, max_height=2), width=2
        )
        outcome = synthesizer.synthesize(problem)
        assert not outcome.solved

    def test_counterexamples_are_shared(self):
        problem = _max2_problem()
        synthesizer = ParallelHeightSynthesizer(SynthConfig(timeout=60), width=3)
        outcome = synthesizer.synthesize(problem)
        assert outcome.solved
        # Workers at heights 1..3 all ran; the one that won reused shared
        # counterexamples, so the total iteration count stays bounded.
        assert outcome.stats.heights_tried >= 2

    def test_stats_are_aggregated_from_all_workers(self):
        # Regression test for the shared-stats data race: each worker now
        # owns a private stats object merged at the end, so counters must
        # still reflect every worker's activity.
        problem = _max2_problem()
        synthesizer = ParallelHeightSynthesizer(SynthConfig(timeout=60), width=3)
        outcome = synthesizer.synthesize(problem)
        assert outcome.stats.heights_tried >= 2
        assert outcome.stats.max_height_reached >= 2
        assert outcome.stats.smt_checks + outcome.stats.cegis_iterations > 0

    def test_rejects_unknown_backend(self):
        import pytest

        with pytest.raises(ValueError):
            ParallelHeightSynthesizer(backend="fiber")


class TestProcessBackend:
    def test_solves_max2_across_processes(self):
        problem = _max2_problem()
        synthesizer = ParallelHeightSynthesizer(
            SynthConfig(timeout=60), width=2, backend="process"
        )
        outcome = synthesizer.synthesize(problem)
        assert outcome.solved
        ok, _ = problem.verify(outcome.solution.body)
        assert ok
        assert outcome.stats.heights_tried >= 1

    def test_unsolvable_within_height_cap(self):
        params = tuple(int_var(f"v{i}") for i in range(4))
        fun = SynthFun("f", params, INT, clia_grammar(params))
        fx = fun.apply(params)
        spec = and_(
            *(ge(fx, p) for p in params), or_(*(eq(fx, p) for p in params))
        )
        problem = SygusProblem(fun, spec, params, name="max4")
        synthesizer = ParallelHeightSynthesizer(
            SynthConfig(timeout=30, max_height=2), width=2, backend="process"
        )
        outcome = synthesizer.synthesize(problem)
        assert not outcome.solved
