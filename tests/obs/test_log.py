"""Structured JSON logging (repro.obs.log)."""

import json
import logging

import pytest

from repro.obs.log import (
    JsonLineFormatter,
    configure_json_logging,
    current_context,
    ensure_worker_logging,
    jlog,
    log_context,
    remove_json_logging,
)


@pytest.fixture
def log_file(tmp_path):
    path = tmp_path / "log.jsonl"
    handler = configure_json_logging(str(path))
    yield path
    remove_json_logging(handler)


def read_lines(path):
    return [json.loads(line) for line in path.read_text().splitlines()]


class TestJlog:
    def test_emits_one_json_line_with_fields(self, log_file):
        logger = logging.getLogger("repro.test_log")
        jlog(logger, "unit.event", answer=42, name="max2")
        records = read_lines(log_file)
        assert len(records) == 1
        record = records[0]
        assert record["event"] == "unit.event"
        assert record["answer"] == 42
        assert record["name"] == "max2"
        assert record["level"] == "info"
        assert record["logger"] == "repro.test_log"
        assert isinstance(record["pid"], int)
        assert isinstance(record["ts"], float)

    def test_disabled_level_emits_nothing(self, log_file):
        logger = logging.getLogger("repro.test_log")
        jlog(logger, "unit.debug_event", level=logging.DEBUG)
        assert log_file.read_text() == ""

    def test_non_serializable_fields_fall_back_to_str(self, log_file):
        logger = logging.getLogger("repro.test_log")
        jlog(logger, "unit.event", obj=object())
        (record,) = read_lines(log_file)
        assert "object object" in record["obj"]


class TestLogContext:
    def test_context_fields_stamped_on_records(self, log_file):
        logger = logging.getLogger("repro.test_log")
        with log_context(job_id="job-7", problem="max2"):
            jlog(logger, "unit.inner")
        jlog(logger, "unit.outer")
        inner, outer = read_lines(log_file)
        assert inner["job_id"] == "job-7"
        assert inner["problem"] == "max2"
        assert "job_id" not in outer

    def test_nested_contexts_merge_inner_wins(self):
        with log_context(a=1, b=1):
            with log_context(b=2, c=3):
                assert current_context() == {"a": 1, "b": 2, "c": 3}
            assert current_context() == {"a": 1, "b": 1}
        assert current_context() == {}

    def test_none_values_dropped(self):
        with log_context(job_id=None, problem="p"):
            assert current_context() == {"problem": "p"}

    def test_event_fields_override_context(self, log_file):
        logger = logging.getLogger("repro.test_log")
        with log_context(problem="ambient"):
            jlog(logger, "unit.event", problem="explicit")
        (record,) = read_lines(log_file)
        assert record["problem"] == "explicit"


class TestConfigure:
    def test_stderr_target(self, capsys):
        handler = configure_json_logging("-")
        try:
            jlog(logging.getLogger("repro.test_log"), "unit.stderr_event")
        finally:
            remove_json_logging(handler)
        err = capsys.readouterr().err
        assert json.loads(err.strip())["event"] == "unit.stderr_event"

    def test_ensure_worker_logging_idempotent(self, tmp_path):
        path = tmp_path / "worker.jsonl"
        ensure_worker_logging(str(path))
        ensure_worker_logging(str(path))  # second attach must be a no-op
        logger = logging.getLogger("repro.test_log")
        jlog(logger, "unit.worker_event")
        records = read_lines(path)
        assert len(records) == 1
        from repro.obs.log import _configured

        remove_json_logging(_configured[str(path)])

    def test_ensure_worker_logging_ignores_dash_and_empty(self):
        from repro.obs.log import _configured

        before = dict(_configured)
        ensure_worker_logging("-")
        ensure_worker_logging(None)
        ensure_worker_logging("")
        assert _configured == before

    def test_reset_after_fork_scrubs_inherited_handlers(self, tmp_path):
        # A forked worker must not log through inherited handlers: their
        # stream locks may have been held by another parent thread at fork
        # time, deadlocking the child's first flush.  reset_after_fork
        # detaches them (without close(), which would flush) and forgets
        # _configured so ensure_worker_logging reopens the target fresh.
        from repro.obs.log import _configured, reset_after_fork

        path = tmp_path / "parent.jsonl"
        inherited = configure_json_logging(str(path))
        repro_logger = logging.getLogger("repro")
        saved_root = list(logging.getLogger().handlers)
        try:
            reset_after_fork()
            assert inherited not in repro_logger.handlers
            assert str(path) not in _configured
            # The fallback never reaches logging.lastResort (and thus the
            # inherited sys.stderr wrapper): a NullHandler is parked.
            assert any(isinstance(h, logging.NullHandler)
                       for h in repro_logger.handlers)
            # The worker path reattaches on a *fresh* file object.
            ensure_worker_logging(str(path))
            reopened = _configured[str(path)]
            assert reopened is not inherited
            jlog(logging.getLogger("repro.test_log"), "unit.after_fork")
            assert read_lines(path)[-1]["event"] == "unit.after_fork"
        finally:
            fresh = _configured.get(str(path))
            if fresh is not None:
                remove_json_logging(fresh)
            for handler in list(repro_logger.handlers):
                if isinstance(handler, logging.NullHandler):
                    repro_logger.removeHandler(handler)
            root = logging.getLogger()
            for handler in saved_root:
                if handler not in root.handlers:
                    root.addHandler(handler)
            inherited.close()

    def test_exception_info_captured(self, log_file):
        logger = logging.getLogger("repro.test_log")
        try:
            raise ValueError("boom")
        except ValueError:
            logger.exception("unit.crashed")
        (record,) = read_lines(log_file)
        assert record["level"] == "error"
        assert "ValueError: boom" in record["exc"]

    def test_formatter_without_repro_fields(self):
        # Plain stdlib records (no `extra`) must still format.
        record = logging.LogRecord(
            "repro.x", logging.INFO, __file__, 1, "plain %s", ("msg",), None
        )
        payload = json.loads(JsonLineFormatter().format(record))
        assert payload["event"] == "plain msg"
