"""Tests for the resource-accounting helpers (:mod:`repro.obs.rusage`)."""

import os

from repro.obs import rusage


class TestSnapshot:
    def test_snapshot_shape(self):
        snap = rusage.snapshot()
        assert set(snap) == {"peak_rss_bytes", "user_cpu", "sys_cpu"}
        assert snap["peak_rss_bytes"] > 0
        assert snap["user_cpu"] >= 0.0
        assert snap["sys_cpu"] >= 0.0

    def test_peak_rss_is_bytes_not_kilobytes(self):
        # A Python interpreter's peak RSS is far above 10 MB; if the
        # platform unit (KiB on Linux) leaked through un-normalized this
        # would read ~20_000 instead of ~20_000_000.
        assert rusage.self_peak_rss_bytes() > 10 * 1024 * 1024

    def test_delta_cpu_is_monotonic_and_rounded(self):
        before = rusage.snapshot()
        sum(i * i for i in range(200_000))  # burn a little user CPU
        after = rusage.delta(before)
        assert after["user_cpu"] >= 0.0
        assert after["sys_cpu"] >= 0.0
        # Peak RSS in a delta stays absolute (a high-water mark, not a diff).
        assert after["peak_rss_bytes"] >= before["peak_rss_bytes"]

    def test_children_snapshot(self):
        snap = rusage.snapshot(children=True)
        assert snap["peak_rss_bytes"] >= 0


class TestProcessRss:
    def test_own_pid(self):
        rss = rusage.process_rss_bytes(os.getpid())
        assert rss is not None
        assert rss > 1024 * 1024  # a live interpreter is well over 1 MB

    def test_default_is_self(self):
        assert rusage.process_rss_bytes() is not None

    def test_bogus_pid_returns_none(self):
        # PIDs max out well below 2**30 on any stock Linux configuration.
        assert rusage.process_rss_bytes(2**30 + 7) is None
