"""Cross-process telemetry: deterministic merges and the pool round trip."""

from repro import obs
from repro.obs.spans import SpanRecorder
from repro.service.jobs import SOLVED, SynthesisJob
from repro.service.pool import WorkerPool

MAX2_SL = """
(set-logic LIA)
(synth-fun f ((x Int) (y Int)) Int)
(declare-var x Int)
(declare-var y Int)
(constraint (>= (f x y) x))
(constraint (>= (f x y) y))
(constraint (or (= (f x y) x) (= (f x y) y)))
(check-synth)
"""


def _child_payload():
    """A worker-shaped recorder: synth > enum > smt.solve plus one event."""
    child = SpanRecorder()
    with child.span("synth", problem="p"):
        with child.span("enum", height=2):
            with child.span("smt.solve", rounds=1):
                pass
            child.add_event("hit", domain="trace")
    return child.to_json()


class TestMergeSerialized:
    def test_reroots_under_synthetic_job_span(self):
        parent = SpanRecorder()
        root_id = parent.merge_serialized(
            _child_payload(), attrs={"name": "p", "status": "solved"},
            wall=1.5,
        )
        by_name = {s.name: s for s in parent.spans}
        job = by_name["job"]
        assert job.span_id == root_id
        assert job.parent_id is None
        assert job.wall == 1.5
        assert job.attrs == {"name": "p", "status": "solved"}
        assert by_name["synth"].parent_id == root_id
        assert by_name["enum"].parent_id == by_name["synth"].span_id
        assert by_name["smt.solve"].parent_id == by_name["enum"].span_id

    def test_merge_is_deterministic(self):
        payload = _child_payload()
        a, b = SpanRecorder(), SpanRecorder()
        for recorder in (a, b):
            recorder.merge_serialized(payload, wall=1000.0)
            recorder.merge_serialized(payload, wall=1000.0)
        # Same payloads, same order -> byte-identical span trees (the large
        # wall back-dates every start offset to exactly 0).
        assert [s.to_json() for s in a.spans] == [s.to_json() for s in b.spans]
        assert [e.to_json() for e in a.events] == [e.to_json() for e in b.events]

    def test_events_remap_to_new_span_ids(self):
        parent = SpanRecorder()
        parent.merge_serialized(_child_payload(), wall=1000.0)
        by_name = {s.name: s for s in parent.spans}
        (event,) = parent.events
        assert event.name == "hit"
        assert event.span_id == by_name["enum"].span_id

    def test_unknown_parent_attaches_to_job_root(self):
        payload = {
            "spans": [
                {"span_id": 5, "parent_id": 99, "name": "orphan",
                 "start": 0.0, "wall": 0.1}
            ]
        }
        parent = SpanRecorder()
        root_id = parent.merge_serialized(payload, wall=1000.0)
        orphan = next(s for s in parent.spans if s.name == "orphan")
        assert orphan.parent_id == root_id

    def test_empty_payload_is_noop(self):
        parent = SpanRecorder()
        assert parent.merge_serialized(None) is None
        assert parent.merge_serialized({}) is None
        assert parent.spans == []

    def test_child_dropped_count_propagates(self):
        payload = _child_payload()
        payload["dropped"] = 3
        parent = SpanRecorder()
        parent.merge_serialized(payload, wall=1000.0)
        assert parent.dropped == 3


class TestMergeJobTelemetry:
    def test_merges_spans_and_metrics_into_ambient(self):
        child = SpanRecorder()
        with child.span("synth"):
            pass
        child.metrics.counter("smt.checks").inc(7)
        payload = {"spans": child.to_json(),
                   "metrics": child.metrics.snapshot()}
        with obs.recording() as recorder:
            obs.merge_job_telemetry(payload, name="p", status="solved",
                                    wall_time=0.5)
        assert recorder.metrics.counter("smt.checks").value == 7
        names = [s.name for s in recorder.spans]
        assert "job" in names and "synth" in names

    def test_noop_when_disabled_or_empty(self):
        obs.merge_job_telemetry({"spans": {}, "metrics": {}})  # disabled
        with obs.recording() as recorder:
            obs.merge_job_telemetry(None)
        assert recorder.spans == []


class TestPoolRoundTrip:
    def _telemetry_job(self):
        return SynthesisJob(problem_text=MAX2_SL, solver="dryadsynth",
                            timeout=30, hard_timeout=120, name="max2",
                            telemetry=True)

    def test_worker_telemetry_merges_into_parent(self):
        with obs.recording() as recorder:
            with WorkerPool(workers=1) as pool:
                result = pool.run([self._telemetry_job()])[0]
        assert result.status == SOLVED
        assert result.telemetry is not None
        assert result.queue_wait >= 0.0
        # The worker's span tree landed under a "job" root in the parent.
        by_name = {}
        for span in recorder.spans:
            by_name.setdefault(span.name, span)
        assert "job" in by_name
        assert by_name["job"].attrs["name"] == "max2"
        assert by_name["job"].attrs["status"] == SOLVED
        assert "synth" in by_name
        assert by_name["synth"].pid != recorder.pid  # crossed a process
        # Fleet-wide metrics carry the worker's SMT counters.
        assert recorder.metrics.counter("smt.checks").value > 0
        assert recorder.metrics.counter("pool.jobs_completed").value == 1

    def test_telemetry_off_by_default(self):
        job = SynthesisJob(problem_text=MAX2_SL, solver="dryadsynth",
                           timeout=30, hard_timeout=120, name="max2")
        with WorkerPool(workers=1) as pool:
            result = pool.run([job])[0]
        assert result.telemetry is None

    def test_cache_hit_strips_stale_telemetry(self, tmp_path):
        from repro.service.cache import ResultCache

        cache = ResultCache(str(tmp_path / "cache"))
        with WorkerPool(workers=1, cache=cache) as pool:
            first = pool.run([self._telemetry_job()])[0]
            second = pool.run([self._telemetry_job()])[0]
        assert first.telemetry is not None
        assert second.from_cache
        # Cached telemetry describes the original run, not this one.
        assert second.telemetry is None
        assert second.queue_wait >= 0.0

    def test_telemetry_flag_does_not_change_fingerprint(self):
        plain = SynthesisJob(problem_text=MAX2_SL, solver="dryadsynth")
        traced = SynthesisJob(problem_text=MAX2_SL, solver="dryadsynth",
                              telemetry=True)
        assert plain.fingerprint() == traced.fingerprint()
