"""Flight recorder journals and post-mortem recovery (repro.obs.flight)."""

import json

from repro import obs
from repro.obs.flight import (
    FLIGHT_FORMAT,
    FlightRecorder,
    read_flight_journal,
    read_postmortem,
    render_postmortem,
)


def journal_lines(path):
    return [line for line in path.read_text().splitlines() if line.strip()]


class TestFlightRecorder:
    def test_header_and_notes_flushed_immediately(self, tmp_path):
        path = tmp_path / "job.flight.jsonl"
        flight = FlightRecorder(str(path), meta={"job_id": "job-1"})
        flight.note("job.start", timeout=5.0)
        # No close(): the journal must already be on disk, as after SIGKILL.
        lines = journal_lines(path)
        assert len(lines) == 2
        header = json.loads(lines[0])
        assert header["format"] == FLIGHT_FORMAT
        assert header["meta"] == {"job_id": "job-1"}
        note = json.loads(lines[1])["note"]
        assert note["name"] == "job.start"
        assert note["attrs"] == {"timeout": 5.0}
        flight.close()

    def test_mirrors_ambient_recorder_via_sink(self, tmp_path):
        path = tmp_path / "job.flight.jsonl"
        flight = FlightRecorder(str(path))
        with obs.recording() as recorder:
            recorder.sink = flight
            with obs.span("solve", problem="max2"):
                obs.event("cegis.counterexample", round=1)
        flight.close()
        journal = read_flight_journal(str(path))
        assert [s["name"] for s in journal["spans"]] == ["solve"]
        assert journal["spans"][0]["attrs"]["problem"] == "max2"
        assert [e["name"] for e in journal["events"]] == [
            "cegis.counterexample"
        ]

    def test_rotation_bounds_the_journal(self, tmp_path):
        path = tmp_path / "job.flight.jsonl"
        flight = FlightRecorder(str(path), capacity=10)
        for i in range(100):
            flight.note("tick", i=i)
        flight.close()
        lines = journal_lines(path)
        # Bounded: never more than header + 2*capacity + rotation slack.
        assert len(lines) <= 1 + 2 * 10 + 1
        journal = read_flight_journal(str(path))
        assert journal["header"]["format"] == FLIGHT_FORMAT  # survives rotate
        ticks = [n["attrs"]["i"] for n in journal["notes"]]
        assert ticks == sorted(ticks)
        assert ticks[-1] == 99  # most recent records survive

    def test_failing_journal_never_raises(self, tmp_path):
        path = tmp_path / "job.flight.jsonl"
        flight = FlightRecorder(str(path))
        flight._handle.close()  # simulate the fd going bad mid-job
        flight.note("job.end", status="solved")  # must not raise
        assert flight._closed


class TestReadFlightJournal:
    def test_truncated_final_line_tolerated(self, tmp_path):
        path = tmp_path / "job.flight.jsonl"
        flight = FlightRecorder(str(path))
        flight.note("job.start")
        flight.note("job.progress", step=2)
        flight.close()
        torn = path.read_text()[:-9]  # SIGKILL mid-write of the last record
        path.write_text(torn)
        journal = read_flight_journal(str(path))
        assert journal["truncated"]
        assert journal["corrupt"] == 0
        assert [n["name"] for n in journal["notes"]] == ["job.start"]

    def test_corrupt_interior_counted_not_raised(self, tmp_path):
        path = tmp_path / "job.flight.jsonl"
        flight = FlightRecorder(str(path))
        flight.note("job.start")
        flight.close()
        lines = path.read_text().splitlines()
        lines.insert(1, '{"note": {"name": "half')
        path.write_text("\n".join(lines) + "\n")
        journal = read_flight_journal(str(path))
        assert journal["corrupt"] == 1
        assert not journal["truncated"]
        assert [n["name"] for n in journal["notes"]] == ["job.start"]


class TestReadPostmortem:
    def test_missing_and_empty_files_yield_none(self, tmp_path):
        assert read_postmortem(str(tmp_path / "absent.jsonl")) is None
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert read_postmortem(str(empty)) is None

    def test_payload_shape(self, tmp_path):
        path = tmp_path / "job.flight.jsonl"
        flight = FlightRecorder(str(path), meta={"job_id": "job-3",
                                                 "name": "max2"})
        flight.note("job.start", timeout=2.0)
        with obs.recording() as recorder:
            recorder.sink = flight
            with obs.span("enum", height=3):
                pass
            obs.event("smt.sat")
        # No job.end note and no close: the worker died here.
        postmortem = read_postmortem(str(path))
        assert postmortem["meta"]["job_id"] == "job-3"
        assert postmortem["pid"]
        assert [n["name"] for n in postmortem["notes"]] == ["job.start"]
        assert postmortem["num_spans"] == 1
        assert postmortem["num_events"] == 1
        kind, payload = next(iter(postmortem["last"].items()))
        assert kind == "event" and payload["name"] == "smt.sat"

    def test_tail_bounds_the_payload(self, tmp_path):
        path = tmp_path / "job.flight.jsonl"
        flight = FlightRecorder(str(path), capacity=500)
        with obs.recording() as recorder:
            recorder.sink = flight
            for i in range(40):
                obs.event("tick", i=i)
        postmortem = read_postmortem(str(path), tail=5)
        assert postmortem["num_events"] == 40
        assert [e["attrs"]["i"] for e in postmortem["events"]] == [
            35, 36, 37, 38, 39,
        ]

    def test_render_contains_the_story(self, tmp_path):
        path = tmp_path / "job.flight.jsonl"
        flight = FlightRecorder(str(path), meta={"job_id": "job-9"})
        flight.note("job.start", timeout=1.0)
        with obs.recording() as recorder:
            recorder.sink = flight
            with obs.span("deduct", problem="sum3"):
                pass
        report = render_postmortem(read_postmortem(str(path)))
        assert "post-mortem: job-9" in report
        assert "job.start" in report
        assert "deduct" in report
        assert "last activity" in report


class TestForensicsFrontier:
    """Post-mortems name the graph node the worker touched last."""

    def _journal(self, tmp_path, records):
        from repro.obs.flight import FlightRecorder
        from repro.obs.spans import ObsEvent, Span

        recorder = FlightRecorder(str(tmp_path / "j.flight.jsonl"))
        for record in records:
            if isinstance(record, Span):
                recorder.on_span(record)
            else:
                recorder.on_event(record)
        recorder.close()
        return recorder.path

    def test_frontier_names_the_last_active_node(self, tmp_path):
        from repro.obs.flight import read_postmortem, render_postmortem
        from repro.obs.spans import ObsEvent, Span

        path = self._journal(tmp_path, [
            ObsEvent("graph.node", 0.0,
                     {"node": "aaa111", "fun": "f", "depth": 0},
                     "forensics", 1),
            ObsEvent("graph.node", 0.1,
                     {"node": "bbb222", "fun": "g0!f", "parent": "aaa111",
                      "strategy": "fixed-term", "depth": 1},
                     "forensics", 1),
            Span(2, 1, "deduct", 0.2, wall=0.1, attrs={"node": "aaa111"}),
            ObsEvent("deduct.rule", 0.35, {"rule": "match",
                                           "outcome": "failed"},
                     "forensics", 3),
            ObsEvent("divide.reject", 0.4,
                     {"node": "bbb222", "strategy": "fixed-term",
                      "reason": "not-in-grammar"}, "forensics", 3),
            Span(3, 1, "enum", 0.3, wall=0.5, attrs={"node": "bbb222"}),
        ])
        postmortem = read_postmortem(path)
        frontier = postmortem["frontier"]
        assert frontier is not None
        assert frontier["node"] == "bbb222"
        assert frontier["fun"] == "g0!f"
        assert frontier["last_strategy"] == "fixed-term"
        assert frontier["last_rule"] == "match"
        rendered = render_postmortem(postmortem)
        assert "frontier: node bbb222" in rendered
        assert "last_rule=match" in rendered

    def test_no_node_records_means_no_frontier(self, tmp_path):
        from repro.obs.flight import read_postmortem
        from repro.obs.spans import Span

        path = self._journal(tmp_path, [
            Span(1, None, "synth", 0.0, wall=1.0),
        ])
        postmortem = read_postmortem(path)
        assert postmortem["frontier"] is None


class TestKillRecords:
    """Satellite: post-mortems distinguish kill causes.  The parent appends
    a ``{"kill": ...}`` record to the dead worker's journal and the
    renderer tells deadline, RSS-budget and self-inflicted deaths apart."""

    def _dead_journal(self, tmp_path):
        from repro.obs.flight import append_kill_record  # noqa: F401

        path = tmp_path / "victim.flight.jsonl"
        flight = FlightRecorder(str(path), meta={"name": "victim"})
        flight.note("job.start", timeout=2.0)
        # No job.end, no close: the worker is dead from here on.
        return path

    def test_kill_record_read_back(self, tmp_path):
        from repro.obs.flight import append_kill_record

        path = self._dead_journal(tmp_path)
        append_kill_record(
            str(path), cause="oom_budget", reason="rss over budget",
            signal="SIGTERM", exitcode=-15,
            last_rss_bytes=300 * 1024 * 1024,
        )
        journal = read_flight_journal(str(path))
        kill = journal["kill"]
        assert kill["cause"] == "oom_budget"
        assert kill["signal"] == "SIGTERM"
        assert kill["ts"] > 0
        # The parent's append did not corrupt the worker's own records.
        assert [n["name"] for n in journal["notes"]] == ["job.start"]
        assert journal["corrupt"] == 0

    def test_kill_record_survives_torn_worker_line(self, tmp_path):
        from repro.obs.flight import append_kill_record

        path = self._dead_journal(tmp_path)
        with open(path, "a") as handle:
            handle.write('{"note": {"name": "half-writ')  # died mid-append
        append_kill_record(str(path), cause="deadline", reason="2s over")
        journal = read_flight_journal(str(path))
        assert journal["kill"]["cause"] == "deadline"
        # The torn half-line is interior damage now, counted not fatal.
        assert journal["corrupt"] == 1

    def test_render_distinguishes_causes(self, tmp_path):
        from repro.obs.flight import append_kill_record

        renderings = {}
        for cause, extra in [
            ("deadline", {"signal": "SIGKILL", "exitcode": -9}),
            ("oom_budget", {"last_rss_bytes": 128 * 1024 * 1024}),
            ("crash", {"exitcode": 13}),
        ]:
            (tmp_path / cause).mkdir()
            path = self._dead_journal(tmp_path / cause)
            append_kill_record(str(path), cause=cause,
                               reason=f"{cause} reason", **extra)
            renderings[cause] = render_postmortem(read_postmortem(str(path)))
        assert ("killed (deadline): hard deadline exceeded"
                in renderings["deadline"])
        assert "signal=SIGKILL" in renderings["deadline"]
        assert ("killed (oom_budget): RSS budget exceeded"
                in renderings["oom_budget"])
        assert "last_rss=128.0MB" in renderings["oom_budget"]
        assert ("killed (crash): worker died on its own"
                in renderings["crash"])
        assert "exitcode=13" in renderings["crash"]
        for cause in renderings:
            assert f"reason: {cause} reason" in renderings[cause]

    def test_no_kill_record_renders_nothing(self, tmp_path):
        path = self._dead_journal(tmp_path)
        postmortem = read_postmortem(str(path))
        assert postmortem["kill"] is None
        assert "killed (" not in render_postmortem(postmortem)
