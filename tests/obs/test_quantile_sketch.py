"""Streaming quantile sketch (repro.obs.metrics.QuantileSketch).

The load-bearing property is the satellite's tolerance contract: the
sketch's percentiles must agree with exact order-statistics on the raw
sample list within the sketch's relative-error bound, while holding
bounded memory (log-spaced buckets, not samples).
"""

import json
import random

from repro.obs.metrics import MetricsRegistry, QuantileSketch


def exact_percentile(samples, q):
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, int(q * len(ordered) + 0.5) - 1))
    return ordered[index]


def assert_close(estimate, exact, rel=0.05, abs_tol=1e-4):
    assert abs(estimate - exact) <= max(abs_tol, rel * exact), (
        f"sketch={estimate} exact={exact}"
    )


class TestAccuracy:
    def test_sketch_vs_exact_uniform(self):
        rng = random.Random(42)
        samples = [rng.uniform(0.001, 30.0) for _ in range(5000)]
        sketch = QuantileSketch("t")
        for value in samples:
            sketch.observe(value)
        for q in (0.5, 0.9, 0.95, 0.99):
            assert_close(sketch.quantile(q), exact_percentile(samples, q))

    def test_sketch_vs_exact_lognormal(self):
        # Latency-shaped distribution: heavy right tail.
        rng = random.Random(7)
        samples = [rng.lognormvariate(-2.0, 1.0) for _ in range(5000)]
        sketch = QuantileSketch("t")
        for value in samples:
            sketch.observe(value)
        for q in (0.5, 0.95, 0.99):
            assert_close(sketch.quantile(q), exact_percentile(samples, q))

    def test_extremes_clamped_to_observed_range(self):
        sketch = QuantileSketch("t")
        for value in (0.2, 0.4, 0.6):
            sketch.observe(value)
        assert sketch.quantile(0.0) >= 0.2
        assert sketch.quantile(1.0) <= 0.6

    def test_bounded_memory(self):
        rng = random.Random(3)
        sketch = QuantileSketch("t")
        for _ in range(50_000):
            sketch.observe(rng.uniform(1e-5, 9e3))
        # ~470 max buckets at 4% growth over [1e-4, 1e4] plus underflow.
        assert len(sketch.buckets) < 600
        assert sketch.count == 50_000

    def test_negative_and_zero_land_in_underflow(self):
        sketch = QuantileSketch("t")
        sketch.observe(0.0)
        sketch.observe(-5.0)
        assert sketch.count == 2
        assert sketch.quantile(0.5) == 0.0


class TestMergeAndSerialize:
    def test_merge_equals_union(self):
        rng = random.Random(11)
        left = [rng.uniform(0.01, 5.0) for _ in range(2000)]
        right = [rng.uniform(0.5, 50.0) for _ in range(2000)]
        a, b = QuantileSketch("t"), QuantileSketch("t")
        for value in left:
            a.observe(value)
        for value in right:
            b.observe(value)
        a.merge(b.to_json())
        union = left + right
        assert a.count == len(union)
        for q in (0.5, 0.95, 0.99):
            assert_close(a.quantile(q), exact_percentile(union, q))

    def test_json_roundtrip_through_text(self):
        sketch = QuantileSketch("t")
        for value in (0.1, 0.2, 1.5, 9.0):
            sketch.observe(value)
        # Through an actual JSON encode/decode: bucket keys survive as
        # strings and from_json restores them.
        payload = json.loads(json.dumps(sketch.to_json()))
        restored = QuantileSketch.from_json(payload, name="t")
        assert restored.count == sketch.count
        assert restored.quantile(0.5) == sketch.quantile(0.5)
        assert restored.min == sketch.min
        assert restored.max == sketch.max

    def test_empty_sketch_json(self):
        sketch = QuantileSketch("t")
        payload = sketch.to_json()
        assert payload["count"] == 0
        assert payload["min"] is None
        assert sketch.quantile(0.5) == 0.0
        assert sketch.percentiles()["p99"] == 0.0


class TestRegistryIntegration:
    def test_registry_sketch_snapshot_and_merge(self):
        registry = MetricsRegistry()
        registry.sketch("lat").observe(1.0)
        snap = registry.snapshot()
        assert snap["sketches"]["lat"]["count"] == 1

        other = MetricsRegistry()
        other.sketch("lat").observe(3.0)
        registry.merge(other.snapshot())
        assert registry.sketch("lat").count == 2

    def test_prometheus_summary_exposition(self):
        registry = MetricsRegistry()
        sketch = registry.sketch("serve.request_latency_seconds")
        for value in (0.1, 0.2, 0.3, 4.0):
            sketch.observe(value)
        text = registry.to_prometheus()
        assert "# TYPE repro_serve_request_latency_seconds summary" in text
        assert 'quantile="0.99"' in text
        assert "repro_serve_request_latency_seconds_count 4" in text
        assert "repro_serve_request_latency_seconds_sum" in text
