"""One torn-tail tolerance contract, four append-only stores.

Every append-only store in the repo — span dumps, ``BENCH_history.jsonl``,
``BENCH_analytics.jsonl``, and the sampler's ``.collapsed`` export — shares
the same recovery contract: a writer killed mid-append (SIGKILL, hard
deadline, power loss) leaves a truncated final line, possibly torn in the
middle of a multi-byte UTF-8 character, and the reader must drop exactly
that line while recovering every complete record before it.  A corrupt
*interior* line still raises, because that means damage, not an
interrupted append.  This test drives all four loaders through one
parametrized harness so the contract cannot drift per store.
"""

import json

import pytest

from repro.bench.analytics import ANALYTICS_FORMAT, load_analytics
from repro.bench.history import HISTORY_FORMAT, load_history
from repro.obs.export import read_jsonl_tolerant
from repro.obs.sampler import load_collapsed


def _jsonl_record(index):
    # The non-ASCII benchmark name puts multi-byte UTF-8 on every line
    # (ensure_ascii=False keeps it unescaped), so the torn-tail case can
    # cut inside a character.
    return json.dumps(
        {"record": index, "name": f"bench-é-{index}"}, ensure_ascii=False
    )


def _history_record(index):
    return json.dumps(
        {"format": HISTORY_FORMAT, "solved": index, "suite": f"café-{index}"},
        ensure_ascii=False,
    )


def _analytics_record(index):
    return json.dumps(
        {"format": ANALYTICS_FORMAT, "nodes": [], "solver": f"café-{index}"},
        ensure_ascii=False,
    )


def _collapsed_record(index):
    return f"repro/a.py:main;repro/b.py:solvé_{index} {index + 1}"


def _load_spans_store(path):
    return read_jsonl_tolerant(path)


STORES = [
    pytest.param("spans.jsonl", _jsonl_record, _load_spans_store, id="spans"),
    pytest.param(
        "BENCH_history.jsonl", _history_record, load_history, id="history"
    ),
    pytest.param(
        "BENCH_analytics.jsonl", _analytics_record, load_analytics,
        id="analytics",
    ),
    pytest.param(
        "profile.collapsed",
        _collapsed_record,
        lambda path: load_collapsed(path).counts,
        id="collapsed",
    ),
]


def _write(path, lines, tail=b""):
    with open(path, "wb") as handle:
        for line in lines:
            handle.write(line.encode("utf-8") + b"\n")
        handle.write(tail)


@pytest.mark.parametrize("filename, make_record, load", STORES)
class TestTolerantReaders:
    def test_full_read(self, tmp_path, filename, make_record, load):
        path = str(tmp_path / filename)
        _write(path, [make_record(i) for i in range(3)])
        assert len(load(path)) == 3

    def test_torn_ascii_tail_dropped(self, tmp_path, filename, make_record,
                                     load):
        path = str(tmp_path / filename)
        torn = make_record(99).encode("utf-8")
        # Cut before any multi-byte character: a plain half-written line.
        _write(path, [make_record(i) for i in range(3)], tail=torn[:5])
        assert len(load(path)) == 3

    def test_torn_mid_multibyte_tail_dropped(self, tmp_path, filename,
                                             make_record, load):
        path = str(tmp_path / filename)
        torn = make_record(99).encode("utf-8")
        # Cut one byte past the first byte of the two-byte "é": the tail is
        # not even decodable, which killed the old text-mode readers.
        cut = torn.index("é".encode("utf-8")) + 1
        tail = torn[:cut]
        with pytest.raises(UnicodeDecodeError):
            tail.decode("utf-8")
        _write(path, [make_record(i) for i in range(3)], tail=tail)
        assert len(load(path)) == 3

    def test_corrupt_interior_line_raises(self, tmp_path, filename,
                                          make_record, load):
        path = str(tmp_path / filename)
        lines = [make_record(0), "{torn interior garbage", make_record(2)]
        if filename.endswith(".collapsed"):
            lines[1] = "no trailing count here"
        _write(path, lines)
        with pytest.raises(ValueError):
            load(path)

    def test_empty_file(self, tmp_path, filename, make_record, load):
        path = str(tmp_path / filename)
        _write(path, [])
        assert len(load(path)) == 0
