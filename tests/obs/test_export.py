"""Tests for the span JSONL export/import round trip and its failure modes."""

import json

import pytest

from repro import obs
from repro.obs.export import read_spans_jsonl, write_spans_jsonl
from repro.obs.spans import SpanRecorder


def _recorded(tmp_path):
    recorder = SpanRecorder()
    with obs.recording(recorder):
        with obs.span("outer", problem="p"):
            with obs.span("inner"):
                pass
            obs.event("tick", n=1)
    path = str(tmp_path / "spans.jsonl")
    write_spans_jsonl(recorder, path)
    return path


class TestRoundTrip:
    def test_reads_back_what_was_written(self, tmp_path):
        path = _recorded(tmp_path)
        spans, events, header = read_spans_jsonl(path)
        assert sorted(s.name for s in spans) == ["inner", "outer"]
        assert [e.name for e in events] == ["tick"]
        assert header["format"] == "repro-spans/1"


class TestTruncatedFinalLine:
    """A worker killed mid-write leaves a half-written last line; the reader
    must salvage every complete record instead of raising."""

    def test_truncated_final_line_is_tolerated(self, tmp_path):
        path = _recorded(tmp_path)
        with open(path) as handle:
            lines = handle.read().splitlines()
        assert len(lines) >= 3
        # Chop the last record mid-JSON, the way SIGKILL during a write does.
        with open(path, "w") as handle:
            handle.write("\n".join(lines[:-1]) + "\n")
            handle.write(lines[-1][: len(lines[-1]) // 2])
        spans, events, header = read_spans_jsonl(path)
        assert header["format"] == "repro-spans/1"
        # Every complete record before the torn tail survives.
        assert len(spans) + len(events) == len(lines) - 2

    def test_corrupt_interior_line_still_raises(self, tmp_path):
        path = _recorded(tmp_path)
        with open(path) as handle:
            lines = handle.read().splitlines()
        lines[1] = lines[1][: len(lines[1]) // 2]  # torn *interior* line
        with open(path, "w") as handle:
            handle.write("\n".join(lines) + "\n")
        with pytest.raises(json.JSONDecodeError):
            read_spans_jsonl(path)
