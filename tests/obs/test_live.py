"""Live telemetry HTTP endpoint (repro.obs.live)."""

import json
import re
import urllib.error
import urllib.request

import pytest

from repro.obs.live import PROMETHEUS_CONTENT_TYPE, TelemetryServer


def get(server, path):
    with urllib.request.urlopen(server.url + path, timeout=5.0) as response:
        return response.status, response.headers, response.read().decode()


def post(server, path, data, content_type="application/json"):
    request = urllib.request.Request(
        server.url + path,
        data=data,
        headers={"Content-Type": content_type},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=5.0) as response:
        return response.status, response.headers, response.read().decode()


class TestTelemetryServer:
    def test_ephemeral_port_resolved(self):
        with TelemetryServer(port=0) as server:
            assert server.port != 0
            assert server.url == f"http://127.0.0.1:{server.port}"

    def test_start_returns_bound_url(self):
        server = TelemetryServer(port=0)
        try:
            url = server.start()
        finally:
            server.stop()
        assert url == server.url
        assert url.startswith("http://127.0.0.1:")
        assert not url.endswith(":0")

    def test_metrics_endpoint(self):
        text = "# TYPE repro_x counter\nrepro_x_total 3\n"
        with TelemetryServer(metrics_fn=lambda: text) as server:
            status, headers, body = get(server, "/metrics")
        assert status == 200
        assert headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
        assert body == text

    def test_metrics_render_retried_on_runtime_error(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 2:
                raise RuntimeError("dictionary changed size during iteration")
            return "repro_ok 1\n"

        with TelemetryServer(metrics_fn=flaky) as server:
            status, _, body = get(server, "/metrics")
        assert status == 200
        assert body == "repro_ok 1\n"
        assert len(calls) == 2

    def test_healthz_with_extra(self):
        with TelemetryServer(
            health_extra=lambda: {"workers_alive": 4}
        ) as server:
            status, _, body = get(server, "/healthz")
        payload = json.loads(body)
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["workers_alive"] == 4
        assert payload["uptime_seconds"] >= 0
        assert payload["pid"]

    def test_healthz_degraded_is_503(self):
        """A degraded provider turns /healthz into a load-balancer signal."""
        with TelemetryServer(
            health_extra=lambda: {"status": "degraded",
                                  "reasons": ["workers dead: 2"]}
        ) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                get(server, "/healthz")
            assert excinfo.value.code == 503
            payload = json.loads(excinfo.value.read().decode())
        assert payload["status"] == "degraded"
        assert payload["reasons"] == ["workers dead: 2"]

    def test_healthz_provider_crash_degrades_with_503(self):
        def broken():
            raise OSError("pool is gone")

        with TelemetryServer(health_extra=broken) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                get(server, "/healthz")
            assert excinfo.value.code == 503
            payload = json.loads(excinfo.value.read().decode())
            assert payload["status"] == "degraded"
            assert "pool is gone" in payload["error"]
            # Machine-readable condition for the crash, alongside reasons.
            condition = payload["conditions"]["health_provider_error"]
            assert condition["tripped"] is True
            assert "pool is gone" in condition["error"]
            # The server must survive a degraded probe.
            status, _, _ = get(server, "/metrics")
            assert status == 200

    def test_jobs_endpoint_counts_states(self):
        jobs = [
            {"job_id": "job-1", "state": "running"},
            {"job_id": "job-2", "state": "running"},
            {"job_id": "job-3", "state": "done"},
        ]
        with TelemetryServer(jobs_fn=lambda: jobs) as server:
            _, _, body = get(server, "/jobs")
        payload = json.loads(body)
        assert payload["total"] == 3
        assert payload["counts"] == {"running": 2, "done": 1}
        assert payload["jobs"][0]["job_id"] == "job-1"

    def test_endpoints_without_providers_still_serve(self):
        with TelemetryServer() as server:
            assert get(server, "/metrics")[2] == ""
            assert json.loads(get(server, "/jobs")[2])["total"] == 0

    def test_unknown_path_is_404_with_directory(self):
        with TelemetryServer() as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                get(server, "/nope")
            assert excinfo.value.code == 404
            payload = json.loads(excinfo.value.read().decode())
        assert "/metrics" in payload["endpoints"]
        assert "/healthz" in payload["endpoints"]
        assert "/jobs" in payload["endpoints"]

    def test_provider_error_is_500_and_server_survives(self):
        def broken():
            raise ValueError("bad provider")

        with TelemetryServer(jobs_fn=broken) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                get(server, "/jobs")
            assert excinfo.value.code == 500
            # The server thread must survive the failed request.
            status, _, _ = get(server, "/healthz")
            assert status == 200


class TestRoutes:
    def test_exact_post_route_receives_body(self):
        seen = {}

        def handler(request, body):
            seen["body"] = body
            TelemetryServer.reply_json(request, 201, {"ok": True})

        with TelemetryServer() as server:
            server.add_route("POST", "/v1/echo", handler)
            status, _, body = post(server, "/v1/echo", b'{"x": 1}')
        assert status == 201
        assert json.loads(body) == {"ok": True}
        assert seen["body"] == b'{"x": 1}'

    def test_regex_route_extracts_path_params(self):
        def handler(request, body, job_id):
            TelemetryServer.reply_json(request, 200, {"id": job_id})

        with TelemetryServer() as server:
            server.add_route(
                "GET", re.compile(r"/v1/jobs/(?P<job_id>[^/]+)$"), handler
            )
            _, _, body = get(server, "/v1/jobs/sv-42")
        assert json.loads(body) == {"id": "sv-42"}

    def test_routes_shadow_builtins_only_on_match(self):
        def handler(request, body):
            TelemetryServer.reply_json(request, 200, {"custom": True})

        with TelemetryServer(metrics_fn=lambda: "m 1\n") as server:
            server.add_route("GET", "/custom", handler)
            assert json.loads(get(server, "/custom")[2]) == {"custom": True}
            assert get(server, "/metrics")[2] == "m 1\n"

    def test_route_handler_error_is_500(self):
        def handler(request, body):
            raise RuntimeError("handler blew up")

        with TelemetryServer() as server:
            server.add_route("GET", "/boom", handler)
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                get(server, "/boom")
            assert excinfo.value.code == 500

    def test_custom_reply_headers(self):
        def handler(request, body):
            TelemetryServer.reply_json(
                request, 429, {"error": "queue full"},
                headers={"Retry-After": "7"},
            )

        with TelemetryServer() as server:
            server.add_route("POST", "/v1/jobs", handler)
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                post(server, "/v1/jobs", b"{}")
            assert excinfo.value.code == 429
            assert excinfo.value.headers["Retry-After"] == "7"

    def test_chunked_streaming(self):
        def handler(request, body):
            TelemetryServer.stream_chunks(
                request,
                (json.dumps({"seq": i}).encode() + b"\n" for i in range(3)),
            )

        with TelemetryServer() as server:
            server.add_route("GET", "/v1/stream", handler)
            with urllib.request.urlopen(
                server.url + "/v1/stream", timeout=5.0
            ) as response:
                assert response.status == 200
                lines = [
                    json.loads(line)
                    for line in response.read().decode().splitlines()
                ]
        assert lines == [{"seq": 0}, {"seq": 1}, {"seq": 2}]
