"""Live telemetry HTTP endpoint (repro.obs.live)."""

import json
import urllib.error
import urllib.request

import pytest

from repro.obs.live import PROMETHEUS_CONTENT_TYPE, TelemetryServer


def get(server, path):
    with urllib.request.urlopen(server.url + path, timeout=5.0) as response:
        return response.status, response.headers, response.read().decode()


class TestTelemetryServer:
    def test_ephemeral_port_resolved(self):
        with TelemetryServer(port=0) as server:
            assert server.port != 0
            assert server.url == f"http://127.0.0.1:{server.port}"

    def test_metrics_endpoint(self):
        text = "# TYPE repro_x counter\nrepro_x_total 3\n"
        with TelemetryServer(metrics_fn=lambda: text) as server:
            status, headers, body = get(server, "/metrics")
        assert status == 200
        assert headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
        assert body == text

    def test_metrics_render_retried_on_runtime_error(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 2:
                raise RuntimeError("dictionary changed size during iteration")
            return "repro_ok 1\n"

        with TelemetryServer(metrics_fn=flaky) as server:
            status, _, body = get(server, "/metrics")
        assert status == 200
        assert body == "repro_ok 1\n"
        assert len(calls) == 2

    def test_healthz_with_extra(self):
        with TelemetryServer(
            health_extra=lambda: {"workers_alive": 4}
        ) as server:
            status, _, body = get(server, "/healthz")
        payload = json.loads(body)
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["workers_alive"] == 4
        assert payload["uptime_seconds"] >= 0
        assert payload["pid"]

    def test_healthz_degrades_instead_of_500(self):
        def broken():
            raise OSError("pool is gone")

        with TelemetryServer(health_extra=broken) as server:
            status, _, body = get(server, "/healthz")
        payload = json.loads(body)
        assert status == 200
        assert payload["status"] == "degraded"
        assert "pool is gone" in payload["error"]

    def test_jobs_endpoint_counts_states(self):
        jobs = [
            {"job_id": "job-1", "state": "running"},
            {"job_id": "job-2", "state": "running"},
            {"job_id": "job-3", "state": "done"},
        ]
        with TelemetryServer(jobs_fn=lambda: jobs) as server:
            _, _, body = get(server, "/jobs")
        payload = json.loads(body)
        assert payload["total"] == 3
        assert payload["counts"] == {"running": 2, "done": 1}
        assert payload["jobs"][0]["job_id"] == "job-1"

    def test_endpoints_without_providers_still_serve(self):
        with TelemetryServer() as server:
            assert get(server, "/metrics")[2] == ""
            assert json.loads(get(server, "/jobs")[2])["total"] == 0

    def test_unknown_path_is_404_with_directory(self):
        with TelemetryServer() as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                get(server, "/nope")
            assert excinfo.value.code == 404
            payload = json.loads(excinfo.value.read().decode())
        assert payload["endpoints"] == ["/metrics", "/healthz", "/jobs"]

    def test_provider_error_is_500_and_server_survives(self):
        def broken():
            raise ValueError("bad provider")

        with TelemetryServer(jobs_fn=broken) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                get(server, "/jobs")
            assert excinfo.value.code == 500
            # The server thread must survive the failed request.
            status, _, _ = get(server, "/healthz")
            assert status == 200
