"""Profile attribution: self/cumulative partitioning and hottest queries."""

from repro import obs
from repro.obs.profile import (
    build_profile,
    hottest_spans,
    profile_text,
    render_hottest,
    render_profile,
)
from repro.obs.spans import Span


def _span(span_id, parent_id, name, start, wall, cpu=0.0, status="ok",
          **attrs):
    return Span(span_id, parent_id, name, start, wall, cpu, dict(attrs),
                status)


class TestAttribution:
    def test_self_wall_excludes_children(self):
        spans = [
            _span(1, None, "synth", 0.0, 10.0),
            _span(2, 1, "enum", 1.0, 6.0),
            _span(3, 2, "smt.solve", 2.0, 4.0),
        ]
        report = build_profile(spans)
        assert abs(report.phase("synth").self_wall - 4.0) < 1e-9
        assert abs(report.phase("enum").self_wall - 2.0) < 1e-9
        assert abs(report.phase("smt.solve").self_wall - 4.0) < 1e-9

    def test_self_times_partition_root_wall(self):
        spans = [
            _span(1, None, "synth", 0.0, 10.0),
            _span(2, 1, "deduct", 0.0, 3.0),
            _span(3, 1, "enum", 3.0, 7.0),
            _span(4, 3, "smt.solve", 3.0, 5.0),
        ]
        report = build_profile(spans)
        self_total = sum(row.self_wall for row in report.phases)
        assert abs(self_total - report.total_wall) < 1e-9

    def test_recursion_not_double_counted_in_cum(self):
        # verify nested under verify: cum counts the outer one only.
        spans = [
            _span(1, None, "verify", 0.0, 8.0),
            _span(2, 1, "verify", 1.0, 3.0),
        ]
        report = build_profile(spans)
        assert abs(report.phase("verify").cum_wall - 8.0) < 1e-9
        assert report.phase("verify").count == 2

    def test_error_spans_counted(self):
        spans = [_span(1, None, "enum", 0.0, 1.0, status="error")]
        report = build_profile(spans)
        assert report.phase("enum").errors == 1
        assert "(1 errors)" in render_profile(report)

    def test_orphan_parents_treated_as_roots(self):
        # A span whose parent was dropped (cap) still profiles as a root.
        spans = [_span(7, 99, "enum", 0.0, 2.0)]
        report = build_profile(spans)
        assert report.roots == 1
        assert abs(report.total_wall - 2.0) < 1e-9


class TestHottest:
    def test_top_k_by_wall(self):
        spans = [
            _span(i, None, "smt.solve", 0.0, wall, rounds=i)
            for i, wall in enumerate([0.1, 0.9, 0.5], start=1)
        ]
        top2 = hottest_spans(spans, top=2)
        assert [s.wall for s in top2] == [0.9, 0.5]

    def test_render_includes_attrs(self):
        spans = [_span(1, None, "smt.solve", 0.0, 0.2, rounds=3,
                       status_attr="sat")]
        text = render_hottest(spans, top=5)
        assert "rounds=3" in text

    def test_render_handles_no_matches(self):
        assert "no" in render_hottest([_span(1, None, "enum", 0.0, 1.0)])


class TestEndToEnd:
    def test_real_run_self_times_sum_to_traced_wall(self):
        """The acceptance check: attribution within 5% of the run's wall."""
        from repro.sygus.parser import parse_sygus_text
        from repro.synth.config import SynthConfig
        from repro.synth.cooperative import CooperativeSynthesizer

        problem = parse_sygus_text(
            """
            (set-logic LIA)
            (synth-fun max2 ((x Int) (y Int)) Int)
            (declare-var x Int)
            (declare-var y Int)
            (constraint (>= (max2 x y) x))
            (constraint (>= (max2 x y) y))
            (constraint (or (= (max2 x y) x) (= (max2 x y) y)))
            (check-synth)
            """,
            name="max2",
        )
        with obs.recording() as recorder:
            outcome = CooperativeSynthesizer(
                SynthConfig(timeout=60)
            ).synthesize(problem)
        assert outcome.solution is not None
        report = build_profile(recorder.spans)
        assert report.roots == 1
        self_total = sum(row.self_wall for row in report.phases)
        assert abs(self_total - report.total_wall) <= 0.05 * report.total_wall
        # The solver stack produced real SMT spans under the synth root.
        assert report.phase("smt.solve") is not None
        assert report.phase("synth").count == 1
        text = profile_text(recorder.spans, top=3)
        assert "hottest smt.solve spans" in text


class TestDarkTime:
    """Satellite: traced wall outside any root span, per process, with no
    sampler involved — the report names it even from a plain span dump."""

    def test_gap_between_roots_is_dark(self):
        from repro.obs.profile import compute_dark_time

        spans = [
            _span(1, None, "load", 0.0, 2.0),
            _span(2, None, "synth", 5.0, 5.0),  # 3s gap: 2.0 → 5.0
            _span(3, 2, "enum", 5.0, 4.0),  # child: not a root interval
        ]
        (entry,) = compute_dark_time(spans)
        assert entry["pid"] == 0
        assert abs(entry["window"] - 10.0) < 1e-9
        assert abs(entry["covered"] - 7.0) < 1e-9
        assert abs(entry["dark"] - 3.0) < 1e-9

    def test_overlapping_roots_not_double_counted(self):
        from repro.obs.profile import compute_dark_time

        spans = [
            _span(1, None, "a", 0.0, 6.0),
            _span(2, None, "b", 4.0, 6.0),  # overlaps a by 2s
        ]
        (entry,) = compute_dark_time(spans)
        assert abs(entry["covered"] - 10.0) < 1e-9
        assert abs(entry["dark"] - 0.0) < 1e-9

    def test_orphan_parent_counts_as_root(self):
        from repro.obs.profile import compute_dark_time

        # A merged worker tree can reference a parent id that was never
        # shipped; such spans are roots for coverage purposes.
        spans = [_span(1, 999, "orphan", 1.0, 2.0)]
        (entry,) = compute_dark_time(spans)
        assert abs(entry["dark"] - 0.0) < 1e-9

    def test_per_pid_windows_are_independent(self):
        from repro.obs.spans import Span

        from repro.obs.profile import compute_dark_time

        spans = [
            Span(1, None, "parent", 0.0, 10.0, pid=100),
            Span(2, None, "worker", 2.0, 4.0, pid=200),
            Span(3, None, "worker", 8.0, 2.0, pid=200),
        ]
        by_pid = {e["pid"]: e for e in compute_dark_time(spans)}
        assert set(by_pid) == {100, 200}
        assert abs(by_pid[100]["dark"] - 0.0) < 1e-9
        # Worker window 2.0 → 10.0 with 2s uncovered in the middle.
        assert abs(by_pid[200]["window"] - 8.0) < 1e-9
        assert abs(by_pid[200]["dark"] - 2.0) < 1e-9

    def test_render_profile_prints_dark_line(self):
        spans = [
            _span(1, None, "load", 0.0, 2.0),
            _span(2, None, "synth", 5.0, 5.0),
        ]
        text = render_profile(build_profile(spans))
        assert "dark time (pid 0): 3.000s of 10.000s window" in text
        assert "outside any root span" in text

    def test_profile_text_without_sampler_has_no_frames_section(self):
        spans = [_span(1, None, "synth", 0.0, 1.0)]
        text = profile_text(spans)
        assert "dark time (pid 0)" in text
        assert "hottest dark frames" not in text

    def test_profile_text_with_sampled_profile_names_dark_frames(self):
        from repro.obs.sampler import StackProfile

        spans = [_span(1, None, "synth", 0.0, 1.0)]
        profile = StackProfile()
        profile.record("repro/cli.py:main;repro/sygus/parser.py:parse",
                       dark=True, count=7)
        profile.record("repro/cli.py:main;repro/synth/cegis.py:refine",
                       count=3)
        text = profile_text(spans, profile=profile)
        assert "hottest dark frames (7 of 10 samples outside any span)" in text
        assert "repro/sygus/parser.py:parse" in text
