"""Chrome trace_event export: structure, lanes, and CLI wiring."""

import json

from repro.obs.chrome import build_trace, write_trace_chrome
from repro.obs.spans import ObsEvent, Span


def _spans():
    return [
        Span(1, None, "synth", 0.0, wall=1.0, attrs={"node": "aaa"}, pid=100),
        Span(2, 1, "smt.solve", 0.2, wall=0.3, attrs={"rounds": 4}, pid=100),
        Span(3, None, "worker", 0.1, wall=0.5, status="error", pid=200),
    ]


def _events():
    return [
        ObsEvent("graph.node", 0.05, {"node": "aaa"}, "forensics", 1),
        ObsEvent("orphan", 0.4, {}, "obs", None),
    ]


class TestTraceBuild:
    def test_spans_become_complete_events(self):
        trace = build_trace(_spans(), _events())
        complete = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert len(complete) == 3
        synth = next(e for e in complete if e["name"] == "synth")
        assert synth["ts"] == 0.0
        assert synth["dur"] == 1_000_000.0
        assert synth["args"]["node"] == "aaa"

    def test_pid_lanes_follow_the_recording_process(self):
        trace = build_trace(_spans(), _events())
        by_name = {e["name"]: e for e in trace["traceEvents"]}
        assert by_name["synth"]["pid"] == 100
        assert by_name["worker"]["pid"] == 200
        # Instants land on their enclosing span's lane; orphans on lane 0.
        assert by_name["graph.node"]["pid"] == 100
        assert by_name["orphan"]["pid"] == 0

    def test_instants_keep_their_domain_as_category(self):
        trace = build_trace(_spans(), _events())
        instant = next(
            e for e in trace["traceEvents"] if e["name"] == "graph.node"
        )
        assert instant["ph"] == "i"
        assert instant["cat"] == "forensics"
        assert instant["ts"] == 50_000.0

    def test_error_status_rides_in_args(self):
        trace = build_trace(_spans())
        worker = next(
            e for e in trace["traceEvents"] if e["name"] == "worker"
        )
        assert worker["args"]["status"] == "error"

    def test_metadata_counts_and_truncation(self):
        trace = build_trace(_spans(), _events(), truncated=True)
        assert trace["otherData"] == {
            "format": "repro-chrome/1",
            "truncated": True,
            "spans": 3,
            "events": 2,
        }

    def test_write_produces_valid_json(self, tmp_path):
        path = str(tmp_path / "trace.json")
        write_trace_chrome(path, _spans(), events=_events())
        with open(path) as handle:
            trace = json.load(handle)
        assert len(trace["traceEvents"]) == 5


class TestCliWiring:
    def test_profile_trace_chrome_converts_a_dump(self, tmp_path, capsys):
        from repro import obs
        from repro.bench.runner import make_solver
        from repro.cli import main
        from repro.obs.export import write_spans_jsonl
        from repro.sygus.parser import parse_sygus_text

        from tests.obs.test_forensics import MAX2

        problem = parse_sygus_text(MAX2, "max2")
        with obs.recording() as recorder:
            make_solver("dryadsynth", 5.0).synthesize(problem)
        dump = str(tmp_path / "spans.jsonl")
        write_spans_jsonl(recorder, dump)
        trace_path = str(tmp_path / "trace.json")
        assert main(["profile", dump, "--trace-chrome", trace_path]) == 0
        capsys.readouterr()
        with open(trace_path) as handle:
            trace = json.load(handle)
        assert trace["otherData"]["truncated"] is False
        names = {e["name"] for e in trace["traceEvents"]}
        assert "smt.solve" in names
        assert "graph.node" in names  # forensics instants ride along
