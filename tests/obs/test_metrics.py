"""Metrics registry: instruments, snapshots, merges, Prometheus dump."""

from repro import obs
from repro.obs.metrics import DEFAULT_BUCKETS, MetricsRegistry


class TestInstruments:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.counter("a").inc(4)
        assert registry.counter("a").value == 5

    def test_accessors_memoize(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.gauge("y") is registry.gauge("y")
        assert registry.histogram("z") is registry.histogram("z")

    def test_gauge_set_and_set_max(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g")
        gauge.set(10)
        gauge.set_max(5)
        assert gauge.value == 10
        gauge.set_max(20)
        assert gauge.value == 20

    def test_histogram_buckets_and_mean(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", bounds=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(5.0)  # beyond all bounds -> +Inf bucket
        assert hist.counts == [1, 1, 1]
        assert hist.count == 3
        assert abs(hist.mean - (0.05 + 0.5 + 5.0) / 3) < 1e-12


class TestSnapshotAndMerge:
    def _populated(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        registry.gauge("g").set(7)
        registry.histogram("h", bounds=(1.0,)).observe(0.5)
        return registry

    def test_snapshot_round_trips_through_json(self):
        import json

        snap = json.loads(json.dumps(self._populated().snapshot()))
        target = MetricsRegistry()
        target.merge(snap)
        assert target.counter("c").value == 3
        assert target.gauge("g").value == 7
        assert target.histogram("h", bounds=(1.0,)).count == 1

    def test_counters_add_gauges_max(self):
        target = self._populated()
        other = MetricsRegistry()
        other.counter("c").inc(10)
        other.gauge("g").set(5)
        target.merge(other.snapshot())
        assert target.counter("c").value == 13
        assert target.gauge("g").value == 7  # max wins

    def test_histograms_merge_bucket_wise(self):
        target = self._populated()
        other = MetricsRegistry()
        other.histogram("h", bounds=(1.0,)).observe(2.0)
        target.merge(other.snapshot())
        hist = target.histogram("h", bounds=(1.0,))
        assert hist.counts == [1, 1]
        assert hist.count == 2

    def test_mismatched_histogram_bounds_keep_totals(self):
        target = MetricsRegistry()
        target.histogram("h", bounds=(1.0,)).observe(0.5)
        other = MetricsRegistry()
        other.histogram("h", bounds=(2.0, 4.0)).observe(3.0)
        target.merge(other.snapshot())
        hist = target.histogram("h", bounds=(1.0,))
        assert hist.count == 2
        assert abs(hist.sum - 3.5) < 1e-12

    def test_merge_none_is_noop(self):
        registry = self._populated()
        registry.merge(None)
        registry.merge({})
        assert registry.counter("c").value == 3

    def test_merge_is_deterministic(self):
        snapshots = [self._populated().snapshot() for _ in range(3)]
        a, b = MetricsRegistry(), MetricsRegistry()
        for snap in snapshots:
            a.merge(snap)
            b.merge(snap)
        assert a.snapshot() == b.snapshot()


class TestPrometheus:
    def test_counter_and_gauge_lines(self):
        registry = MetricsRegistry()
        registry.counter("smt.rounds").inc(9)
        registry.gauge("sat.vars").set(42)
        text = registry.to_prometheus()
        assert "# TYPE repro_smt_rounds_total counter" in text
        assert "repro_smt_rounds_total 9" in text
        assert "repro_sat_vars 42" in text

    def test_histogram_cumulative_buckets(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", bounds=(1.0, 2.0))
        hist.observe(0.5)
        hist.observe(1.5)
        hist.observe(9.0)
        text = registry.to_prometheus()
        assert 'repro_h_bucket{le="1"} 1' in text
        assert 'repro_h_bucket{le="2"} 2' in text
        assert 'repro_h_bucket{le="+Inf"} 3' in text
        assert "repro_h_count 3" in text

    def test_empty_registry_dumps_empty(self):
        assert MetricsRegistry().to_prometheus() == ""

    def test_default_buckets_are_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestPublishStats:
    def test_int_fields_become_counters(self):
        from repro.synth.result import SynthesisStats

        stats = SynthesisStats()
        stats.smt_checks = 11
        stats.heights_tried = 2
        stats.deduction_solved = True  # bool: skipped
        registry = MetricsRegistry()
        obs.publish_stats(stats, registry=registry)
        assert registry.counter("synth.smt_checks").value == 11
        assert registry.counter("synth.heights_tried").value == 2
        assert "synth.deduction_solved" not in registry.snapshot()["counters"]

    def test_publishes_to_ambient_registry(self):
        from repro.synth.result import SynthesisStats

        stats = SynthesisStats()
        stats.smt_rounds = 5
        with obs.recording() as recorder:
            obs.publish_stats(stats)
        assert recorder.metrics.counter("synth.smt_rounds").value == 5
