"""Cross-run regression attribution (repro.obs.diff / dryadsynth diff)."""

import pytest

from repro import obs
from repro.bench.runner import make_solver
from repro.obs.diff import (
    build_diff,
    problem_breakdown,
    problem_rollup,
    render_diff,
    split_by_problem,
)
from repro.obs.spans import ObsEvent, Span
from repro.sygus.parser import parse_sygus_text

from tests.obs.test_forensics import MAX2


def _run(text, name, timeout=5.0):
    problem = parse_sygus_text(text, name)
    solver = make_solver("dryadsynth", timeout)
    with obs.recording() as recorder:
        outcome = solver.synthesize(problem)
    return outcome, recorder


@pytest.fixture(scope="module")
def two_runs():
    outcome_a, rec_a = _run(MAX2, "max2")
    outcome_b, rec_b = _run(MAX2, "max2")
    assert outcome_a.solution is not None
    assert outcome_b.solution is not None
    return rec_a, rec_b


class TestDiffInvariants:
    def test_diff_against_itself_is_all_zeros(self, two_runs):
        """Acceptance: diff(run, run) reports zero everywhere."""
        rec, _ = two_runs
        diff = build_diff(rec.spans, rec.events, rec.spans, rec.events)
        assert diff.total_delta == 0.0
        assert diff.run_self_delta == 0.0
        for node in diff.nodes:
            assert node.delta == 0.0
            assert node.only_in is None
            assert not node.drifted
            assert node.status_a == node.status_b
        assert diff.solved_lost == []
        assert diff.solved_gained == []
        for rule in diff.rules:
            assert rule.fired_delta == 0
            assert rule.failed_delta == 0

    def test_node_deltas_partition_the_wall_delta(self, two_runs):
        """Acceptance: node + (run) deltas sum to the total wall delta
        exactly — the diff is an attribution, not a collection of timers."""
        rec_a, rec_b = two_runs
        diff = build_diff(rec_a.spans, rec_a.events, rec_b.spans, rec_b.events)
        assert diff.attributed_delta() == pytest.approx(
            diff.total_delta, abs=1e-9
        )

    def test_nodes_align_by_stable_id_across_real_runs(self, two_runs):
        rec_a, rec_b = two_runs
        diff = build_diff(rec_a.spans, rec_a.events, rec_b.spans, rec_b.events)
        # Same problem, same solver: every node exists in both runs.
        assert diff.nodes
        assert all(n.only_in is None for n in diff.nodes)

    def test_alignment_across_thread_and_process_backends(self):
        """Node alignment is stable across execution backends: an in-thread
        run diffs cleanly against a worker-process run of the same problem
        (the PR-5 stable-node-id guarantee, exercised end to end)."""
        from repro.service.jobs import SynthesisJob
        from repro.service.pool import WorkerPool

        _, rec_thread = _run(MAX2, "max2")
        job = SynthesisJob(
            problem_text=MAX2,
            solver="dryadsynth",
            timeout=5.0,
            name="max2",
            telemetry=True,
        )
        with WorkerPool(workers=1) as pool:
            (result,) = pool.run([job])
        assert result.status == "solved"
        payload = result.telemetry["spans"]
        worker_spans = [Span.from_json(s) for s in payload["spans"]]
        worker_events = [ObsEvent.from_json(e) for e in payload["events"]]
        diff = build_diff(
            rec_thread.spans, rec_thread.events, worker_spans, worker_events
        )
        assert diff.nodes
        assert all(n.only_in is None for n in diff.nodes)
        assert diff.attributed_delta() == pytest.approx(
            diff.total_delta, abs=1e-9
        )


class TestSyntheticDiff:
    """Alignment semantics from hand-made streams (no solver run)."""

    def _stream(self, node_wall, extra_node=None, strategy="fixed-term",
                solved=True, rule_fired=3):
        spans = [
            Span(1, None, "synth", 0.0, wall=1.0 + node_wall,
                 attrs={"node": "aaa", "problem": "p1",
                        "solved": solved}),
            Span(2, 1, "enum", 0.2, wall=node_wall,
                 attrs={"node": "bbb"}),
        ]
        events = [
            ObsEvent("graph.node", 0.0, {"node": "aaa", "fun": "f",
                                         "depth": 0}, "forensics", 1),
            ObsEvent("graph.node", 0.1, {"node": "bbb", "fun": "g0!f",
                                         "parent": "aaa", "depth": 1,
                                         "strategy": strategy},
                     "forensics", 1),
            ObsEvent("divide.choice", 0.1, {"node": "aaa",
                                            "strategy": strategy},
                     "forensics", 1),
        ]
        for _ in range(rule_fired):
            events.append(
                ObsEvent("deduct.rule", 0.2, {"node": "aaa",
                                              "rule": "match",
                                              "outcome": "fired"},
                         "forensics", 1)
            )
        if solved:
            events.append(
                ObsEvent("graph.solve", 0.3, {"node": "aaa",
                                              "how": "direct"},
                         "forensics", 1)
            )
        if extra_node:
            spans.append(
                Span(3, 1, "deduct", 0.5, wall=0.25,
                     attrs={"node": extra_node})
            )
            events.append(
                ObsEvent("graph.node", 0.5, {"node": extra_node,
                                             "fun": "g1!f",
                                             "parent": "aaa", "depth": 1},
                         "forensics", 1)
            )
        return spans, events

    def test_only_in_marks_created_and_retired_nodes(self):
        spans_a, events_a = self._stream(0.4, extra_node="ccc")
        spans_b, events_b = self._stream(0.4, extra_node="ddd")
        diff = build_diff(spans_a, events_a, spans_b, events_b)
        by_id = {n.node_id: n for n in diff.nodes}
        assert by_id["ccc"].only_in == "A"
        assert by_id["ddd"].only_in == "B"
        assert by_id["aaa"].only_in is None
        # Absent nodes contribute their full self wall to the partition.
        assert by_id["ccc"].delta == pytest.approx(-0.25)
        assert by_id["ddd"].delta == pytest.approx(0.25)
        assert diff.attributed_delta() == pytest.approx(
            diff.total_delta, abs=1e-9
        )

    def test_strategy_drift_detected(self):
        spans_a, events_a = self._stream(0.4, strategy="fixed-term")
        spans_b, events_b = self._stream(0.4, strategy="subterm")
        diff = build_diff(spans_a, events_a, spans_b, events_b)
        drifted = {n.node_id for n in diff.strategy_drift}
        assert "aaa" in drifted
        assert "strategy drift" in render_diff(diff)

    def test_solved_set_changes(self):
        spans_a, events_a = self._stream(0.4, solved=True)
        spans_b, events_b = self._stream(0.4, solved=False)
        diff = build_diff(spans_a, events_a, spans_b, events_b)
        assert diff.solved_lost == ["p1"]
        assert diff.solved_gained == []
        rendered = render_diff(diff)
        assert "solved-set" in rendered
        assert "lost p1" in rendered

    def test_rule_firing_drift(self):
        spans_a, events_a = self._stream(0.4, rule_fired=3)
        spans_b, events_b = self._stream(0.4, rule_fired=7)
        diff = build_diff(spans_a, events_a, spans_b, events_b)
        match = next(r for r in diff.rules if r.rule == "match")
        assert match.fired_delta == 4
        assert "rule-firing drift" in render_diff(diff)

    def test_nodes_sorted_by_absolute_delta(self):
        spans_a, events_a = self._stream(0.1)
        spans_b, events_b = self._stream(0.9)
        diff = build_diff(spans_a, events_a, spans_b, events_b)
        deltas = [abs(n.delta) for n in diff.nodes]
        assert deltas == sorted(deltas, reverse=True)

    def test_to_json_shape(self):
        spans_a, events_a = self._stream(0.4)
        spans_b, events_b = self._stream(0.6)
        diff = build_diff(spans_a, events_a, spans_b, events_b)
        payload = diff.to_json()
        assert payload["format"] == "repro-run-diff/1"
        assert payload["attributed_delta"] == payload["total_delta"]
        assert {n["node"] for n in payload["nodes"]} == {"aaa", "bbb"}
        import json

        json.dumps(payload)  # must serialize as-is

    def test_truncated_flag_warns_in_render(self):
        spans, events = self._stream(0.4)
        diff = build_diff(spans, events, spans, events, truncated_a=True)
        assert diff.truncated
        assert "WARNING" in render_diff(diff)


class TestProblemTools:
    def _multi_problem_stream(self):
        spans = [
            Span(1, None, "synth", 0.0, wall=1.0,
                 attrs={"problem": "p1", "solved": True, "node": "aaa"}),
            Span(2, 1, "enum", 0.2, wall=0.4, attrs={}),
            Span(3, None, "synth", 1.0, wall=2.0,
                 attrs={"problem": "p2", "solved": False, "node": "bbb"}),
            Span(4, None, "scaffold", 0.0, wall=0.1, attrs={}),
        ]
        events = [
            ObsEvent("graph.node", 0.0, {"node": "aaa", "fun": "f",
                                         "depth": 0}, "forensics", 1),
            ObsEvent("graph.node", 1.0, {"node": "bbb", "fun": "g",
                                         "depth": 0}, "forensics", 3),
        ]
        return spans, events

    def test_problem_rollup_groups_roots(self):
        spans, _ = self._multi_problem_stream()
        rollup = problem_rollup(spans)
        assert rollup["p1"]["wall"] == pytest.approx(1.0)
        assert rollup["p1"]["solved"] is True
        assert rollup["p2"]["solved"] is False
        assert "scaffold" not in rollup

    def test_split_by_problem_partitions_streams(self):
        spans, events = self._multi_problem_stream()
        groups = split_by_problem(spans, events)
        assert set(groups) == {"p1", "p2"}
        p1_spans, p1_events = groups["p1"]
        assert [s.span_id for s in p1_spans] == [1, 2]
        assert [e.attrs["node"] for e in p1_events] == ["aaa"]

    def test_problem_breakdown_names_phases_and_nodes(self):
        spans, events = self._multi_problem_stream()
        text = problem_breakdown(spans, events, ["p2", "absent"])
        assert "p2: wall 2.000s" in text
        assert "node bbb g" in text
        assert "absent: no spans in the dump" in text


class TestCommittedDumps:
    """The committed demo-subset pair (bench_dumps/) under the real diff."""

    A = "bench_dumps/budget2s.spans.jsonl"
    B = "bench_dumps/budget5s.spans.jsonl"

    @pytest.fixture(scope="class")
    def dumps(self):
        import os

        root = os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        )
        path_a = os.path.join(root, self.A)
        path_b = os.path.join(root, self.B)
        if not (os.path.exists(path_a) and os.path.exists(path_b)):
            pytest.skip("committed bench_dumps/ pair not present")
        return path_a, path_b

    def test_partition_is_exact_on_committed_dumps(self, dumps):
        """Acceptance: on the committed 2s-vs-5s demo dumps the per-node
        deltas plus the (run) bucket sum to the total delta to 1e-9."""
        from repro.obs.diff import diff_from_files

        diff = diff_from_files(*dumps)
        assert diff.total_delta > 0  # the 5 s run really is slower
        assert diff.attributed_delta() == pytest.approx(
            diff.total_delta, abs=1e-9
        )
        assert len(diff.nodes) > 100  # the whole demo subset aligned

    def test_budget_growth_converts_a_timeout(self, dumps):
        from repro.obs.diff import diff_from_files, render_diff

        diff = diff_from_files(*dumps)
        assert "array_search_2" in diff.solved_gained
        assert diff.solved_lost == []
        text = render_diff(diff)
        assert "attribution check" in text
