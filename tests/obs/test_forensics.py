"""Forensics events: graph/divide/deduct/cegis records on the span stream.

Covers the tentpole wiring (semantic events keyed by stable node IDs ride
the ordinary span stream) and the span-cap satellite: dropped records are
counted, exports carry a ``truncated`` flag, and the renderers warn.
"""

import json

from repro import obs
from repro.bench.runner import make_solver
from repro.obs import forensics
from repro.obs.export import dump_spans_jsonl, read_spans_jsonl
from repro.obs.spans import SpanRecorder
from repro.sygus.parser import parse_sygus_text

MAX2 = """
(set-logic LIA)
(synth-fun max2 ((x Int) (y Int)) Int
  ((Start Int (x y 0 1 (+ Start Start) (- Start Start)
               (ite StartBool Start Start)))
   (StartBool Bool ((<= Start Start) (= Start Start) (>= Start Start)))))
(declare-var x Int)
(declare-var y Int)
(constraint (>= (max2 x y) x))
(constraint (>= (max2 x y) y))
(constraint (or (= x (max2 x y)) (= y (max2 x y))))
(check-synth)
"""


def _solve_recorded(recorder=None, timeout=5.0):
    problem = parse_sygus_text(MAX2, "max2")
    solver = make_solver("dryadsynth", timeout)
    with obs.recording(recorder) as rec:
        outcome = solver.synthesize(problem)
    return outcome, rec


def _events(recorder, name):
    return [
        e for e in recorder.events
        if e.domain == forensics.DOMAIN and e.name == name
    ]


class TestForensicsEvents:
    def test_disabled_without_recorder(self):
        assert forensics.enabled() is False
        forensics.emit(forensics.GRAPH_NODE, node="dead")  # must not raise

    def test_graph_node_and_solve_events(self):
        outcome, recorder = _solve_recorded()
        assert outcome.solution is not None
        created = _events(recorder, forensics.GRAPH_NODE)
        assert created, "the source node must be announced"
        source = created[0]
        assert source.attrs["fun"] == "max2"
        assert source.attrs["depth"] == 0
        assert len(source.attrs["node"]) == 12
        solves = _events(recorder, forensics.GRAPH_SOLVE)
        assert any(e.attrs["node"] == source.attrs["node"] for e in solves)

    def test_deduction_rule_events(self):
        _, recorder = _solve_recorded()
        rules = _events(recorder, forensics.DEDUCT_RULE)
        assert rules, "max2 deduction must attempt Figure 7/8 rules"
        outcomes = {e.attrs["outcome"] for e in rules}
        assert "fired" in outcomes
        # The max2 spec merges its >= clauses: the merging rules report it.
        fired = {e.attrs["rule"] for e in rules if e.attrs["outcome"] == "fired"}
        assert fired & {"ge-max", "ge-min", "le-max", "eq"}

    def test_spans_carry_node_attribution(self):
        _, recorder = _solve_recorded()
        node = _events(recorder, forensics.GRAPH_NODE)[0].attrs["node"]
        attributed = {
            span.name for span in recorder.spans
            if span.attrs.get("node") == node
        }
        assert "deduct" in attributed

    def test_render_example_is_deterministic(self):
        assert forensics.render_example(None) == "{}"
        assert (
            forensics.render_example({"y": 2, "x": 1})
            == '{"x":1,"y":2}'
        )


class TestSpanCapAccounting:
    """Satellite: the recorder cap drops loudly, never silently."""

    def test_cap_counts_drops_and_flags_truncation(self):
        recorder = SpanRecorder(max_spans=4)
        _, rec = _solve_recorded(recorder)
        assert rec.dropped > 0
        assert rec.truncated is True
        counters = rec.metrics.snapshot()["counters"]
        assert counters["obs.spans_dropped"] == rec.dropped
        assert rec.to_json()["truncated"] is True

    def test_uncapped_run_is_not_truncated(self):
        _, rec = _solve_recorded()
        assert rec.dropped == 0
        assert rec.truncated is False

    def test_export_header_carries_truncated_flag(self, tmp_path):
        recorder = SpanRecorder(max_spans=4)
        _, rec = _solve_recorded(recorder)
        path = tmp_path / "spans.jsonl"
        with open(path, "w") as handle:
            dump_spans_jsonl(rec, handle)
        with open(path) as handle:
            header = json.loads(handle.readline())
        assert header["truncated"] is True
        _, _, parsed_header = read_spans_jsonl(str(path))
        assert parsed_header["truncated"] is True

    def test_profile_cli_warns_on_truncated_stream(self, tmp_path, capsys):
        from repro.cli import main

        recorder = SpanRecorder(max_spans=4)
        _, rec = _solve_recorded(recorder)
        path = str(tmp_path / "spans.jsonl")
        with open(path, "w") as handle:
            dump_spans_jsonl(rec, handle)
        assert main(["profile", path]) == 0
        captured = capsys.readouterr()
        assert "truncated" in captured.err

    def test_explain_warns_on_truncated_stream(self, tmp_path, capsys):
        from repro.cli import main

        recorder = SpanRecorder(max_spans=4)
        _, rec = _solve_recorded(recorder)
        path = str(tmp_path / "spans.jsonl")
        with open(path, "w") as handle:
            dump_spans_jsonl(rec, handle)
        assert main(["explain", path]) == 0
        captured = capsys.readouterr()
        assert "truncated" in captured.out
