"""Prometheus text exposition-format conformance for the metrics dump.

Validates ``MetricsRegistry.to_prometheus`` against the text-format grammar
(version 0.0.4): per-family ``# HELP``/``# TYPE`` comment lines, legal metric
and label names, float-parsable sample values, counters suffixed ``_total``,
and complete histogram families (cumulative buckets ending in ``le="+Inf"``
plus ``_sum`` and ``_count`` whose values agree).
"""

import math
import re

from repro.obs.metrics import MetricsRegistry

METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)$"
)
LABEL = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$')
TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    return float(text)  # raises (failing the test) on garbage


class Exposition:
    """A parsed-and-validated exposition payload."""

    def __init__(self, text: str):
        self.help: dict = {}
        self.types: dict = {}
        self.samples: list = []  # (name, labels-dict, value)
        assert text == "" or text.endswith("\n"), "payload must end in newline"
        for line in text.splitlines():
            assert line == line.strip(), f"stray whitespace: {line!r}"
            if line.startswith("# HELP "):
                _, _, rest = line.partition("# HELP ")
                name, _, help_text = rest.partition(" ")
                assert METRIC_NAME.match(name), name
                assert name not in self.help, f"duplicate HELP for {name}"
                assert help_text, f"empty HELP for {name}"
                self.help[name] = help_text
            elif line.startswith("# TYPE "):
                _, _, rest = line.partition("# TYPE ")
                name, _, kind = rest.partition(" ")
                assert METRIC_NAME.match(name), name
                assert kind in TYPES, kind
                assert name not in self.types, f"duplicate TYPE for {name}"
                assert not [
                    s for s in self.samples if _family(s[0]) == name
                ], f"TYPE for {name} must precede its samples"
                self.types[name] = kind
            else:
                match = SAMPLE.match(line)
                assert match, f"unparsable sample line: {line!r}"
                labels = {}
                if match.group("labels"):
                    for pair in match.group("labels").split(","):
                        assert LABEL.match(pair), f"bad label: {pair!r}"
                        key, _, value = pair.partition("=")
                        labels[key] = value[1:-1]
                self.samples.append(
                    (match.group("name"), labels,
                     _parse_value(match.group("value")))
                )


def _family(sample_name: str) -> str:
    """The family a histogram child series belongs to."""
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            return sample_name[: -len(suffix)]
    return sample_name


def _populated() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("smt.rounds").inc(9)
    registry.counter("pool.status.solved").inc(2)  # dots sanitised
    registry.gauge("sat.vars").set(42.5)
    hist = registry.histogram("smt.solve_seconds", bounds=(0.1, 1.0))
    hist.observe(0.05)
    hist.observe(0.5)
    hist.observe(30.0)
    return registry


class TestConformance:
    def test_every_family_has_help_and_type(self):
        exposition = Exposition(_populated().to_prometheus())
        families = {_family(name) for name, _, _ in exposition.samples}
        for family in families:
            # Counters are exposed as <family>; HELP/TYPE name the series.
            assert family in exposition.types, f"no TYPE for {family}"
            assert family in exposition.help, f"no HELP for {family}"

    def test_counter_names_end_in_total(self):
        exposition = Exposition(_populated().to_prometheus())
        for name, kind in exposition.types.items():
            if kind == "counter":
                assert name.endswith("_total"), name

    def test_histogram_family_is_complete_and_cumulative(self):
        exposition = Exposition(_populated().to_prometheus())
        buckets = [
            (labels["le"], value)
            for name, labels, value in exposition.samples
            if name == "repro_smt_solve_seconds_bucket"
        ]
        assert buckets, "histogram emitted no buckets"
        assert buckets[-1][0] == "+Inf", "last bucket must be le=+Inf"
        counts = [count for _, count in buckets]
        assert counts == sorted(counts), "buckets must be cumulative"
        bounds = [_parse_value(le) for le, _ in buckets]
        assert bounds == sorted(bounds), "le values must ascend"
        count = next(
            v for n, _, v in exposition.samples
            if n == "repro_smt_solve_seconds_count"
        )
        total = next(
            v for n, _, v in exposition.samples
            if n == "repro_smt_solve_seconds_sum"
        )
        assert counts[-1] == count == 3
        assert abs(total - 30.55) < 1e-9

    def test_sample_values_parse_as_floats(self):
        exposition = Exposition(_populated().to_prometheus())
        assert all(
            isinstance(value, float) or isinstance(value, int)
            for _, _, value in exposition.samples
        )

    def test_unknown_metric_gets_generated_help(self):
        registry = MetricsRegistry()
        registry.counter("made.up.metric").inc()
        exposition = Exposition(registry.to_prometheus())
        assert "repro_made_up_metric_total" in exposition.help

    def test_help_text_escapes_newlines_and_backslashes(self):
        from repro.obs.metrics import register_metric_help

        registry = MetricsRegistry()
        registry.counter("weird").inc()
        register_metric_help("weird", "line one\nline two \\ slash")
        try:
            text = registry.to_prometheus()
        finally:
            from repro.obs.metrics import METRIC_HELP

            METRIC_HELP.pop("weird", None)
        exposition = Exposition(text)  # still one line per record
        assert exposition.help["repro_weird_total"] == (
            "line one\\nline two \\\\ slash"
        )
