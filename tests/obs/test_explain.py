"""The subproblem-graph explainer: attribution, rule table, frontier."""

import pytest

from repro import obs
from repro.bench.runner import make_solver
from repro.obs.explain import (
    RUN_BUCKET,
    build_explain,
    explain_text,
    render_explain,
)
from repro.obs.spans import ObsEvent, Span
from repro.sygus.parser import parse_sygus_text

from tests.obs.test_forensics import MAX2

def _run(text, name, timeout):
    problem = parse_sygus_text(text, name)
    solver = make_solver("dryadsynth", timeout)
    with obs.recording() as recorder:
        outcome = solver.synthesize(problem)
    return outcome, recorder


@pytest.fixture(scope="module")
def solved_report():
    outcome, recorder = _run(MAX2, "max2", 5.0)
    assert outcome.solution is not None
    return build_explain(recorder.spans, recorder.events)


class TestAttribution:
    def test_self_times_partition_traced_wall(self, solved_report):
        """Acceptance: per-node self times sum to 100% of traced wall."""
        report = solved_report
        assert report.total_wall > 0
        assert report.attributed_wall() == pytest.approx(
            report.total_wall, abs=1e-9
        )

    def test_source_node_dominates_a_single_node_run(self, solved_report):
        report = solved_report
        assert len(report.roots) == 1
        source = report.nodes[report.roots[0]]
        assert source.fun == "max2"
        assert source.solved
        assert source.self_wall > report.run_self_wall

    def test_smt_rounds_are_aggregated_per_node(self, solved_report):
        source = solved_report.nodes[solved_report.roots[0]]
        assert source.smt_calls > 0
        assert source.smt_rounds > 0

    def test_rule_table_is_populated(self, solved_report):
        rules = {row.rule for row in solved_report.rules}
        assert rules & {"ge-max", "ge-min", "le-max", "eq"}

    def test_render_mentions_tree_rules_and_run_bucket(self, solved_report):
        rendered = render_explain(solved_report)
        assert "subproblem tree" in rendered
        assert "deduction rules" in rendered
        assert RUN_BUCKET in rendered
        assert "failure frontier" not in rendered  # solved run


class TestFailureFrontier:
    def test_timed_out_run_reports_frontier(self):
        """Acceptance: a timed-out problem names the last division strategy
        and deduction rule on a non-empty failure frontier."""
        from repro.bench.quick_bench import demo_subset

        # qm-max3's restricted grammar defeats direct deduction; the
        # cooperative loop divides and enumerates well past this budget.
        bench = next(b for b in demo_subset() if b.name == "qm-max3")
        solver = make_solver("dryadsynth", 0.4)
        with obs.recording() as recorder:
            outcome = solver.synthesize(bench.problem())
        assert outcome.solution is None
        report = build_explain(recorder.spans, recorder.events)
        assert not report.solved
        assert report.frontier, "unsolved run must expose a frontier"
        assert report.attributed_wall() == pytest.approx(
            report.total_wall, abs=1e-9
        )
        named_strategy = any(
            n.last_strategy or n.strategy for n in report.frontier
        )
        named_rule = any(n.last_rule for n in report.frontier)
        assert named_strategy, "frontier must name a division strategy"
        assert named_rule, "frontier must name a deduction rule"
        rendered = render_explain(report)
        assert "failure frontier" in rendered
        assert "UNSOLVED" in rendered


class TestSyntheticStreams:
    """Tree building from hand-made events (no solver run)."""

    def _events(self):
        return [
            ObsEvent("graph.node", 0.0, {"node": "aaa", "fun": "f",
                                         "depth": 0}, "forensics", 1),
            ObsEvent("graph.node", 0.1, {"node": "bbb", "fun": "g0!f",
                                         "parent": "aaa", "depth": 1,
                                         "strategy": "fixed-term"},
                     "forensics", 1),
            ObsEvent("graph.share", 0.2, {"node": "bbb", "fun": "g0!f",
                                          "parent": "aaa", "depth": 1,
                                          "strategy": "subterm"},
                     "forensics", 1),
            ObsEvent("graph.solve", 0.3, {"node": "bbb", "fun": "g0!f",
                                          "how": "direct", "depth": 1},
                     "forensics", 2),
            ObsEvent("deduct.rule", 0.25, {"rule": "match",
                                           "outcome": "failed"},
                     "forensics", 2),
        ]

    def _spans(self):
        return [
            Span(1, None, "synth", 0.0, wall=1.0, attrs={"node": "aaa"}),
            Span(2, 1, "enum", 0.2, wall=0.4, attrs={"node": "bbb"}),
        ]

    def test_tree_share_and_event_resolution(self):
        report = build_explain(self._spans(), self._events())
        assert report.roots == ["aaa"]
        assert report.nodes["aaa"].children == ["bbb"]
        assert report.nodes["bbb"].extra_parents == 1
        assert report.nodes["bbb"].solved_how == "direct"
        # deduct.rule carried no node attr: resolved via its span's ancestry
        assert report.nodes["bbb"].last_rule == "match"
        assert report.nodes["aaa"].self_wall == pytest.approx(0.6)
        assert report.nodes["bbb"].self_wall == pytest.approx(0.4)
        assert report.attributed_wall() == pytest.approx(report.total_wall)

    def test_unsolved_root_is_the_frontier(self):
        report = build_explain(self._spans(), self._events())
        assert not report.solved
        assert [n.node_id for n in report.frontier] == ["aaa"]

    def test_truncated_flag_rides_into_render(self):
        text = explain_text(self._spans(), self._events(), truncated=True)
        assert "WARNING" in text
        assert "truncated" in text

    def test_empty_streams(self):
        report = build_explain([], [])
        assert report.nodes == {}
        assert report.total_wall == 0.0
        assert "0 node(s)" in render_explain(report)


class TestRequestRows:
    """serve.request spans from a daemon dump render as a request table."""

    def _spans(self):
        return [
            Span(1, None, "serve.request", 0.0, wall=2.5,
                 attrs={"trace_id": "a" * 32, "serve_id": "sv-1",
                        "client": "alice", "problem": "max2",
                        "job_status": "solved"}),
            Span(2, 1, "serve.queue_wait", 0.0, wall=0.5,
                 attrs={"trace_id": "a" * 32}),
            Span(3, None, "serve.request", 0.5, wall=0.3,
                 attrs={"trace_id": "b" * 32, "serve_id": "sv-2",
                        "client": "bob", "problem": "max2",
                        "job_status": "solved", "from_cache": True}),
        ]

    def test_rows_collated_slowest_first(self):
        report = build_explain(self._spans(), [])
        assert [row.serve_id for row in report.requests] == ["sv-1", "sv-2"]
        first = report.requests[0]
        assert first.trace_id == "a" * 32
        assert first.queue_wait == 0.5
        assert first.latency == 2.5
        assert report.requests[1].from_cache is True

    def test_rendered_table_contains_trace_ids(self):
        report = build_explain(self._spans(), [])
        text = render_explain(report)
        assert "daemon requests" in text
        assert "a" * 32 in text
        assert "alice" in text
        assert "solved*" in text  # cache-hit marker
        assert "served from the result cache" in text

    def test_no_requests_no_section(self):
        report = build_explain([], [])
        assert report.requests == []
        assert "daemon requests" not in render_explain(report)
