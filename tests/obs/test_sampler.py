"""Tests for the wall-clock stack sampler and its collapsed-stack format.

The contract from the issue: collapsed lines are valid FlameGraph input
(``frame;frame;frame count``), start/stop are idempotent, profiles merge
across the WorkerPool process boundary like span trees (on both start
methods), ``.collapsed`` loading follows the torn-tail tolerance contract,
and samples taken while a thread had no open span are classified dark.
"""

import os
import re
import threading
import time

import pytest

from repro.obs.sampler import (
    StackProfile,
    StackSampler,
    collapse_frame,
    frame_label,
    load_collapsed,
    read_profile_record,
    write_collapsed,
)
from repro.obs.spans import SpanRecorder

#: One collapsed line: semicolon-joined frames (no spaces) then a count.
COLLAPSED_LINE = re.compile(r"^[^ ;]+(;[^ ;]+)* \d+$")


def _busy_wait(seconds):
    deadline = time.monotonic() + seconds
    while time.monotonic() < deadline:
        sum(range(100))


class TestCollapsedFormat:
    def test_frame_label_sanitizes_structural_characters(self):
        class Code:
            co_filename = "/tmp/weird path;x/repro/synth/a b.py"
            co_name = "fn;with tabs\t"

        label = frame_label(Code())
        assert ";" not in label.replace(",", "")
        assert " " not in label
        assert "\t" not in label
        assert label.startswith("repro/synth/")

    def test_collapse_frame_is_root_to_leaf(self):
        import sys

        frame = sys._getframe()
        stack = collapse_frame(frame)
        # The leaf (this test function) is the LAST frame, FlameGraph-style.
        assert stack.rsplit(";", 1)[-1].endswith("test_collapse_frame_is_root_to_leaf")

    def test_to_collapsed_lines_are_flamegraph_valid(self):
        profile = StackProfile()
        profile.record("a.py:main;b.py:solve", count=3)
        profile.record("a.py:main", count=1)
        lines = profile.to_collapsed().splitlines()
        assert len(lines) == 2
        for line in lines:
            assert COLLAPSED_LINE.match(line), line
        # Sorted by count descending.
        assert lines[0] == "a.py:main;b.py:solve 3"


class TestSampler:
    def test_collects_samples_and_duration(self):
        sampler = StackSampler(interval=0.002)
        sampler.start()
        _busy_wait(0.15)
        profile = sampler.stop()
        assert profile.samples > 5
        assert profile.duration > 0.1
        assert os.getpid() in profile.pids
        for line in profile.to_collapsed().splitlines():
            assert COLLAPSED_LINE.match(line), line

    def test_start_stop_idempotent(self):
        sampler = StackSampler(interval=0.002)
        assert sampler.start() is sampler
        thread = sampler._thread
        sampler.start()  # second start is a no-op
        assert sampler._thread is thread
        sampler.stop()
        assert not sampler.running
        sampler.stop()  # second stop is a no-op
        assert not sampler.running
        # And the sampler is restartable after a stop.
        sampler.start()
        assert sampler.running
        sampler.stop()

    def test_context_manager(self):
        with StackSampler(interval=0.002) as sampler:
            assert sampler.running
            _busy_wait(0.05)
        assert not sampler.running
        assert sampler.profile.samples > 0

    def test_dark_classification_against_recorder(self):
        recorder = SpanRecorder()
        sampler = StackSampler(interval=0.002, recorder=recorder)
        sampler.start()
        with recorder.span("lit.phase"):
            _busy_wait(0.08)
        _busy_wait(0.08)  # no span open: these samples are dark
        profile = sampler.stop()
        dark = sum(profile.dark.values())
        assert 0 < dark < profile.samples

    def test_no_recorder_means_everything_dark(self):
        with StackSampler(interval=0.002) as sampler:
            _busy_wait(0.05)
        profile = sampler.profile
        assert sum(profile.dark.values()) == profile.samples

    def test_other_threads_are_sampled(self):
        stop = threading.Event()
        worker = threading.Thread(
            target=lambda: _busy_wait(0.3) or stop.wait(0.01)
        )
        worker.start()
        try:
            with StackSampler(interval=0.002) as sampler:
                _busy_wait(0.1)
        finally:
            worker.join()
        assert sampler.profile.samples > 0


class TestMergeAndSerialization:
    def test_merge_adds_counts_keywise(self):
        a = StackProfile()
        a.record("m:f;m:g", dark=True, count=2)
        b = StackProfile()
        b.record("m:f;m:g", count=3)
        b.record("m:h", count=1)
        b.pids = [123]
        a.merge(b)
        assert a.counts == {"m:f;m:g": 5, "m:h": 1}
        assert a.dark == {"m:f;m:g": 2}
        assert a.samples == 6
        assert 123 in a.pids

    def test_json_roundtrip(self):
        a = StackProfile(interval=0.01)
        a.record("m:f;m:g", dark=True, count=4)
        a.duration = 1.5
        a.pids = [7]
        b = StackProfile.from_json(a.to_json())
        assert b.counts == a.counts
        assert b.dark == a.dark
        assert b.samples == a.samples
        assert b.pids == [7]

    def test_merge_accepts_json_dict(self):
        a = StackProfile()
        b = StackProfile()
        b.record("m:f", count=2)
        a.merge(b.to_json())
        assert a.counts == {"m:f": 2}


class TestCollapsedFiles:
    def test_write_load_roundtrip(self, tmp_path):
        profile = StackProfile()
        profile.record("a:main;b:solve", count=3)
        profile.record("a:main;c:check", count=1)
        path = str(tmp_path / "p.collapsed")
        write_collapsed(profile, path)
        loaded = load_collapsed(path)
        assert loaded.counts == profile.counts

    def test_torn_tail_dropped(self, tmp_path):
        path = str(tmp_path / "torn.collapsed")
        with open(path, "wb") as handle:
            handle.write(b"a:main;b:solve 3\n")
            handle.write(b"a:main;c:che")  # killed mid-append
        loaded = load_collapsed(path)
        assert loaded.counts == {"a:main;b:solve": 3}

    def test_torn_mid_multibyte_tail_dropped(self, tmp_path):
        path = str(tmp_path / "mb.collapsed")
        payload = "a:main;b:solé 3\n".encode("utf-8")
        with open(path, "wb") as handle:
            handle.write(b"a:main 2\n")
            handle.write(payload[:-4])  # cut inside the two-byte e-acute
        loaded = load_collapsed(path)
        assert loaded.counts == {"a:main": 2}

    def test_corrupt_interior_line_raises(self, tmp_path):
        path = str(tmp_path / "bad.collapsed")
        with open(path, "w") as handle:
            handle.write("not a collapsed line\n")
            handle.write("a:main 2\n")
        with pytest.raises(ValueError, match="bad.collapsed:1"):
            load_collapsed(path)


class TestProfileInSpanDump:
    def test_dump_carries_profile_record(self, tmp_path):
        from repro.obs.export import write_spans_jsonl

        recorder = SpanRecorder()
        with recorder.span("phase"):
            pass
        profile = StackProfile()
        profile.record("m:f", count=2)
        recorder.profile = profile
        path = str(tmp_path / "spans.jsonl")
        write_spans_jsonl(recorder, path)
        loaded = read_profile_record(path)
        assert loaded is not None
        assert loaded.counts == {"m:f": 2}

    def test_dump_without_profile_reads_none(self, tmp_path):
        from repro.obs.export import write_spans_jsonl

        recorder = SpanRecorder()
        with recorder.span("phase"):
            pass
        path = str(tmp_path / "spans.jsonl")
        write_spans_jsonl(recorder, path)
        assert read_profile_record(path) is None


def _available_start_methods():
    import multiprocessing as mp

    return [m for m in ("fork", "spawn") if m in mp.get_all_start_methods()]


class TestCrossProcessMerge:
    @pytest.mark.parametrize("start_method", _available_start_methods())
    def test_worker_profiles_merge_into_parent(self, start_method):
        from repro import obs
        from repro.service.jobs import SynthesisJob
        from repro.service.pool import WorkerPool

        jobs = [
            SynthesisJob(problem_text="", solver="debug-sleep@0.3",
                         hard_timeout=60, name=f"s{i}", sample=True)
            for i in range(2)
        ]
        with obs.recording() as recorder:
            with WorkerPool(workers=2, start_method=start_method) as pool:
                results = pool.run(jobs)
        assert all(r.status == "unsolved" for r in results)
        # Each worker shipped a profile; the parent merged them by stack key.
        merged = recorder.profile
        assert merged is not None
        assert merged.samples > 0
        assert len(merged.pids) == 2
        worker_pids = {r.rusage is not None for r in results}
        assert worker_pids == {True}
        for line in merged.to_collapsed().splitlines():
            assert COLLAPSED_LINE.match(line), line

    def test_sample_only_job_ships_no_spans(self):
        from repro.service.jobs import SynthesisJob, execute_job

        job = SynthesisJob(problem_text="", solver="debug-sleep@0.1",
                           hard_timeout=60, sample=True)
        result = execute_job(job)
        assert result.telemetry is not None
        assert "spans" not in result.telemetry
        assert "profile" in result.telemetry

    def test_sample_is_fingerprint_neutral(self):
        from repro.service.jobs import SynthesisJob

        plain = SynthesisJob(problem_text="x", solver="debug-solve")
        sampled = SynthesisJob(problem_text="x", solver="debug-solve",
                               sample=True)
        assert plain.fingerprint() == sampled.fingerprint()


class TestFlameCli:
    def _profile_dump(self, tmp_path, counts, name="spans.jsonl"):
        from repro.obs.export import write_spans_jsonl

        recorder = SpanRecorder()
        with recorder.span("phase"):
            pass
        profile = StackProfile()
        for stack, count in counts.items():
            profile.record(stack, count=count)
        profile.duration = 1.0
        recorder.profile = profile
        path = str(tmp_path / name)
        write_spans_jsonl(recorder, path)
        return path

    def test_flame_renders_top_frames(self, tmp_path, capsys):
        from repro.cli import main

        path = self._profile_dump(
            tmp_path, {"a:main;b:solve": 30, "a:main;c:check": 10}
        )
        assert main(["flame", path, "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "b:solve" in out
        assert "40 samples" in out

    def test_flame_collapsed_out_is_valid(self, tmp_path, capsys):
        from repro.cli import main

        path = self._profile_dump(tmp_path, {"a:main;b:solve": 3})
        out_path = str(tmp_path / "out.collapsed")
        assert main(["flame", path, "--collapsed-out", out_path]) == 0
        with open(out_path) as handle:
            lines = handle.read().splitlines()
        assert lines == ["a:main;b:solve 3"]
        # And the exported file is itself a valid flame target.
        assert main(["flame", out_path]) == 0

    def test_flame_diff_mode(self, tmp_path, capsys):
        from repro.cli import main

        current = self._profile_dump(
            tmp_path, {"a:main;b:solve": 30, "a:main;c:check": 10}, "b.jsonl"
        )
        baseline = self._profile_dump(
            tmp_path, {"a:main;b:solve": 10, "a:main;c:check": 30}, "a.jsonl"
        )
        assert main(["flame", current, "--diff", baseline]) == 0
        out = capsys.readouterr().out
        assert "profile diff" in out
        assert "b:solve" in out and "c:check" in out

    def test_flame_without_profile_errors(self, tmp_path, capsys):
        from repro.cli import main
        from repro.obs.export import write_spans_jsonl

        recorder = SpanRecorder()
        with recorder.span("phase"):
            pass
        path = str(tmp_path / "plain.jsonl")
        write_spans_jsonl(recorder, path)
        assert main(["flame", path]) == 2
        assert "no sampled profile" in capsys.readouterr().err
