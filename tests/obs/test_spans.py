"""Span recorder semantics: nesting, exception safety, typing, no-op mode."""

import pytest

from repro import obs
from repro.obs.spans import NULL_SPAN, Span, SpanRecorder


class TestNesting:
    def test_parent_child_links(self):
        recorder = SpanRecorder()
        with recorder.span("outer"):
            with recorder.span("inner"):
                pass
        inner, outer = recorder.spans
        assert inner.name == "inner"
        assert outer.name == "outer"
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None

    def test_siblings_share_parent(self):
        recorder = SpanRecorder()
        with recorder.span("root"):
            with recorder.span("a"):
                pass
            with recorder.span("b"):
                pass
        a, b, root = recorder.spans
        assert a.parent_id == root.span_id
        assert b.parent_id == root.span_id
        assert a.span_id != b.span_id

    def test_deep_nesting_chain(self):
        recorder = SpanRecorder()
        with recorder.span("l0"):
            with recorder.span("l1"):
                with recorder.span("l2"):
                    pass
        by_name = {s.name: s for s in recorder.spans}
        assert by_name["l2"].parent_id == by_name["l1"].span_id
        assert by_name["l1"].parent_id == by_name["l0"].span_id

    def test_children_wall_bounded_by_parent(self):
        recorder = SpanRecorder()
        with recorder.span("outer"):
            with recorder.span("inner"):
                pass
        inner, outer = recorder.spans
        assert 0.0 <= inner.wall <= outer.wall

    def test_events_attach_to_innermost_span(self):
        recorder = SpanRecorder()
        with recorder.span("outer"):
            with recorder.span("inner") as inner:
                recorder.add_event("hit", detail="x")
        assert recorder.events[0].span_id == inner.span_id

    def test_current_span_id_tracks_stack(self):
        recorder = SpanRecorder()
        assert recorder.current_span_id is None
        with recorder.span("s") as live:
            assert recorder.current_span_id == live.span_id
        assert recorder.current_span_id is None


class TestExceptionSafety:
    def test_exception_marks_status_error_and_closes(self):
        recorder = SpanRecorder()
        with pytest.raises(ValueError):
            with recorder.span("boom"):
                raise ValueError("x")
        (span,) = recorder.spans
        assert span.status == "error"
        assert recorder.current_span_id is None

    def test_leaked_inner_span_does_not_corrupt_stack(self):
        recorder = SpanRecorder()
        with recorder.span("outer"):
            # Simulate a leaked span: entered but never exited.
            leaked = recorder.span("leaked")
            leaked.__enter__()
        # Outer's exit popped past the leaked entry; new spans are roots.
        with recorder.span("after"):
            pass
        after = recorder.spans[-1]
        assert after.parent_id is None

    def test_outer_span_still_ok_after_inner_error(self):
        recorder = SpanRecorder()
        with recorder.span("outer"):
            with pytest.raises(RuntimeError):
                with recorder.span("inner"):
                    raise RuntimeError("inner fails")
        by_name = {s.name: s for s in recorder.spans}
        assert by_name["inner"].status == "error"
        assert by_name["outer"].status == "ok"


class TestAttributeTyping:
    def test_scalars_preserved(self):
        recorder = SpanRecorder()
        with recorder.span("s", n=3, x=1.5, flag=True, text="hi", none=None):
            pass
        attrs = recorder.spans[0].attrs
        assert attrs == {"n": 3, "x": 1.5, "flag": True, "text": "hi",
                         "none": None}

    def test_non_scalars_coerced_to_str(self):
        recorder = SpanRecorder()
        with recorder.span("s", items=[1, 2], mapping={"a": 1}):
            pass
        attrs = recorder.spans[0].attrs
        assert attrs["items"] == "[1, 2]"
        assert attrs["mapping"] == "{'a': 1}"

    def test_set_updates_open_span(self):
        recorder = SpanRecorder()
        with recorder.span("s", a=1) as live:
            live.set(b=2, a=10)
        assert recorder.spans[0].attrs == {"a": 10, "b": 2}

    def test_attrs_json_round_trip(self):
        recorder = SpanRecorder()
        with recorder.span("s", height=2, obj=object()):
            pass
        span = Span.from_json(recorder.spans[0].to_json())
        assert span.attrs["height"] == 2
        assert isinstance(span.attrs["obj"], str)


class TestDisabledMode:
    def test_ambient_span_is_null_when_disabled(self):
        assert obs.active() is None
        assert obs.span("anything", x=1) is NULL_SPAN

    def test_null_span_is_inert(self):
        with obs.span("nothing") as span:
            span.set(a=1)
        # No recorder: nothing anywhere to assert beyond "does not raise".
        assert not obs.enabled()

    def test_disabled_metrics_do_not_leak_into_recordings(self):
        obs.metrics().counter("leak.test").inc(100)
        with obs.recording() as recorder:
            pass
        assert recorder.metrics.counter("leak.test").value == 0

    def test_disabled_recorder_returns_null_span(self):
        recorder = SpanRecorder(enabled=False)
        assert recorder.span("s") is NULL_SPAN
        recorder.add_event("e")
        assert recorder.spans == []
        assert recorder.events == []

    def test_recording_installs_and_restores(self):
        assert obs.active() is None
        with obs.recording() as recorder:
            assert obs.active() is recorder
            with obs.recording() as inner:
                assert obs.active() is inner
            assert obs.active() is recorder
        assert obs.active() is None

    def test_recording_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with obs.recording():
                raise RuntimeError("x")
        assert obs.active() is None


class TestCapacity:
    def test_span_cap_drops_and_counts(self):
        recorder = SpanRecorder(max_spans=2)
        for _ in range(4):
            with recorder.span("s"):
                pass
        assert len(recorder.spans) == 2
        assert recorder.dropped == 2

    def test_to_json_shape(self):
        recorder = SpanRecorder()
        with recorder.span("s"):
            recorder.add_event("e")
        data = recorder.to_json()
        assert data["format"] == "repro-spans/1"
        assert len(data["spans"]) == 1
        assert len(data["events"]) == 1
