"""W3C-traceparent-style trace context (repro.obs.trace)."""

import re

from repro.obs import trace


HEX32 = re.compile(r"^[0-9a-f]{32}$")
HEX16 = re.compile(r"^[0-9a-f]{16}$")


class TestMint:
    def test_mint_produces_valid_ids(self):
        ctx = trace.mint()
        assert HEX32.match(ctx.trace_id)
        assert HEX16.match(ctx.span_id)
        assert ctx.parent_span_id is None

    def test_minted_contexts_are_distinct(self):
        seen = {trace.mint().trace_id for _ in range(32)}
        assert len(seen) == 32

    def test_traceparent_header_shape(self):
        header = trace.mint().traceparent()
        version, trace_id, span_id, flags = header.split("-")
        assert version == trace.TRACEPARENT_VERSION
        assert HEX32.match(trace_id)
        assert HEX16.match(span_id)
        assert flags == trace.TRACE_FLAGS


class TestParse:
    def test_roundtrip(self):
        ctx = trace.mint()
        parsed = trace.parse_traceparent(ctx.traceparent())
        assert parsed is not None
        assert parsed.trace_id == ctx.trace_id
        assert parsed.span_id == ctx.span_id

    def test_malformed_headers_rejected(self):
        bad = [
            None,
            "",
            "garbage",
            "00-zz-zz-01",
            "00-" + "0" * 32 + "-" + "a" * 16 + "-01",  # all-zero trace id
            "00-" + "a" * 32 + "-" + "0" * 16 + "-01",  # all-zero span id
            "00-" + "a" * 31 + "-" + "b" * 16 + "-01",  # short trace id
            "ff-" + "a" * 32 + "-" + "b" * 16 + "-01",  # reserved version
        ]
        for header in bad:
            assert trace.parse_traceparent(header) is None, header

    def test_future_version_accepted(self):
        # Per W3C: parsers accept versions other than ff if the tail parses.
        header = "01-" + "a" * 32 + "-" + "b" * 16 + "-01"
        parsed = trace.parse_traceparent(header)
        assert parsed is not None
        assert parsed.trace_id == "a" * 32


class TestContinueOrMint:
    def test_valid_header_continues_the_trace(self):
        caller = trace.mint()
        ctx = trace.continue_or_mint(caller.traceparent())
        assert ctx.trace_id == caller.trace_id
        assert ctx.parent_span_id == caller.span_id
        assert ctx.span_id != caller.span_id

    def test_malformed_header_degrades_to_fresh_mint(self):
        ctx = trace.continue_or_mint("not-a-traceparent")
        assert HEX32.match(ctx.trace_id)
        assert ctx.parent_span_id is None

    def test_missing_header_mints(self):
        ctx = trace.continue_or_mint(None)
        assert HEX32.match(ctx.trace_id)


class TestChild:
    def test_child_keeps_trace_and_links_parent(self):
        parent = trace.mint()
        child = parent.child()
        assert child.trace_id == parent.trace_id
        assert child.parent_span_id == parent.span_id
        assert child.span_id != parent.span_id


class TestParamsCarrier:
    def test_inject_extract_roundtrip(self):
        ctx = trace.mint()
        params = {"existing": 1}
        trace.inject(params, ctx)
        assert params["existing"] == 1
        extracted = trace.extract(params)
        assert extracted is not None
        assert extracted.trace_id == ctx.trace_id
        assert extracted.span_id == ctx.span_id

    def test_extract_missing_or_malformed_is_none(self):
        assert trace.extract({}) is None
        assert trace.extract({trace.PARAMS_KEY: "junk"}) is None
        assert trace.extract(None) is None

    def test_worker_span_attrs_mint_child_under_parent_trace(self):
        ctx = trace.mint()
        params = {}
        trace.inject(params, ctx)
        attrs = trace.worker_span_attrs(params)
        assert attrs["trace_id"] == ctx.trace_id
        assert attrs["trace_parent_span_id"] == ctx.span_id
        assert HEX16.match(attrs["trace_span_id"])
        assert attrs["trace_span_id"] != ctx.span_id

    def test_worker_span_attrs_without_context_is_empty(self):
        assert trace.worker_span_attrs({}) == {}


class TestSpanAttrs:
    def test_span_attrs_shape(self):
        ctx = trace.mint()
        attrs = ctx.span_attrs()
        assert attrs == {"trace_id": ctx.trace_id,
                         "trace_span_id": ctx.span_id}
        child = ctx.child()
        attrs = child.span_attrs()
        assert attrs["trace_parent_span_id"] == ctx.span_id
