"""Setup shim for environments without the `wheel` package.

`pip install -e . --no-build-isolation` falls back to the legacy
`setup.py develop` path through this file when PEP 660 editable wheels are
unavailable. All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
