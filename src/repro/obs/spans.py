"""Hierarchical spans: timed, attributed, nestable regions of a run.

A :class:`SpanRecorder` owns one span stream and one
:class:`~repro.obs.metrics.MetricsRegistry`.  Code under measurement opens
spans with ``with recorder.span("enum", problem=..., height=...)``; each
span records wall and CPU time, its parent (the innermost span open on the
same thread) and a flat dict of typed attributes.  Instant *events* (the
trace's currency) attach to the same stream without a duration.

Recording is opt-in: the ambient recorder installed by
:func:`repro.obs.recording` is what the instrumented modules talk to, and
when none is installed every ``span()`` call returns a shared no-op — the
disabled path costs one function call and a dict literal, nothing else.

Span trees serialize to JSON (:meth:`SpanRecorder.to_json`) and merge
across processes (:meth:`SpanRecorder.merge_serialized`): the parent
re-roots a worker's tree under a synthetic span, remapping ids in payload
order so repeated merges are deterministic.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

AttrValue = Union[str, int, float, bool, None]

#: Spans beyond this cap are dropped (counted), so a pathological run cannot
#: exhaust memory through its own telemetry.
DEFAULT_MAX_SPANS = 250_000


def _coerce_attrs(attrs: Dict) -> Dict[str, AttrValue]:
    """Restrict attribute values to JSON scalars; everything else is str()ed."""
    out: Dict[str, AttrValue] = {}
    for key, value in attrs.items():
        if value is None or isinstance(value, (bool, int, float, str)):
            out[key] = value
        else:
            out[key] = str(value)
    return out


@dataclass
class Span:
    """One completed region of execution."""

    span_id: int
    parent_id: Optional[int]
    name: str
    start: float  # seconds since the recorder's epoch
    wall: float = 0.0
    cpu: float = 0.0
    attrs: Dict[str, AttrValue] = field(default_factory=dict)
    status: str = "ok"  # ok | error
    pid: int = 0

    def to_json(self) -> Dict:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": round(self.start, 6),
            "wall": round(self.wall, 6),
            "cpu": round(self.cpu, 6),
            "attrs": self.attrs,
            "status": self.status,
            "pid": self.pid,
        }

    @staticmethod
    def from_json(data: Dict) -> "Span":
        return Span(
            span_id=data["span_id"],
            parent_id=data.get("parent_id"),
            name=data["name"],
            start=data.get("start", 0.0),
            wall=data.get("wall", 0.0),
            cpu=data.get("cpu", 0.0),
            attrs=dict(data.get("attrs", {})),
            status=data.get("status", "ok"),
            pid=data.get("pid", 0),
        )


@dataclass
class ObsEvent:
    """An instant (duration-less) record attached to the span stream."""

    name: str
    elapsed: float
    attrs: Dict[str, AttrValue] = field(default_factory=dict)
    domain: str = "obs"
    span_id: Optional[int] = None

    def to_json(self) -> Dict:
        return {
            "name": self.name,
            "elapsed": round(self.elapsed, 6),
            "attrs": self.attrs,
            "domain": self.domain,
            "span_id": self.span_id,
        }

    @staticmethod
    def from_json(data: Dict) -> "ObsEvent":
        return ObsEvent(
            name=data["name"],
            elapsed=data.get("elapsed", 0.0),
            attrs=dict(data.get("attrs", {})),
            domain=data.get("domain", "obs"),
            span_id=data.get("span_id"),
        )


class _NullSpan:
    """The shared do-nothing span returned while recording is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def set(self, **attrs) -> None:
        pass


NULL_SPAN = _NullSpan()


class _LiveSpan:
    """An open span; created by :meth:`SpanRecorder.span`."""

    __slots__ = ("_recorder", "name", "attrs", "span_id", "parent_id",
                 "_t0", "_c0")

    def __init__(self, recorder: "SpanRecorder", name: str, attrs: Dict):
        self._recorder = recorder
        self.name = name
        self.attrs = _coerce_attrs(attrs)
        self.span_id = 0
        self.parent_id: Optional[int] = None
        self._t0 = 0.0
        self._c0 = 0.0

    def set(self, **attrs) -> None:
        """Attach (or overwrite) attributes on the open span."""
        self.attrs.update(_coerce_attrs(attrs))

    def __enter__(self) -> "_LiveSpan":
        recorder = self._recorder
        stack = recorder._stack()
        self.span_id = next(recorder._ids)
        self.parent_id = stack[-1] if stack else None
        stack.append(self.span_id)
        self._t0 = time.monotonic()
        self._c0 = time.process_time()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        now = time.monotonic()
        cpu = time.process_time()
        recorder = self._recorder
        stack = recorder._stack()
        # Exception-safe closure: pop down to (and including) this span even
        # if an inner span leaked, so the stack never corrupts.
        while stack and stack[-1] != self.span_id:
            stack.pop()
        if stack:
            stack.pop()
        recorder._finish(
            Span(
                span_id=self.span_id,
                parent_id=self.parent_id,
                name=self.name,
                start=self._t0 - recorder.epoch,
                wall=now - self._t0,
                cpu=cpu - self._c0,
                attrs=self.attrs,
                status="error" if exc_type is not None else "ok",
                pid=recorder.pid,
            )
        )
        return False


class SpanRecorder:
    """One process's span stream, event stream and metrics registry."""

    def __init__(
        self,
        metrics=None,
        enabled: bool = True,
        max_spans: int = DEFAULT_MAX_SPANS,
    ) -> None:
        from repro.obs.metrics import MetricsRegistry

        self.epoch = time.monotonic()
        self.enabled = enabled
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.spans: List[Span] = []
        self.events: List[ObsEvent] = []
        self.max_spans = max_spans
        self.dropped = 0
        self.pid = os.getpid()
        #: Optional streaming sink (``on_span(span)`` / ``on_event(event)``)
        #: notified as records complete — the flight recorder's hook.  Sinks
        #: see records even past ``max_spans``: the cap protects memory, and
        #: a journaling sink is bounded on its own.
        self.sink = None
        #: Sampled stack profile (:class:`repro.obs.sampler.StackProfile`)
        #: merged from workers / attached by a local sampler; rides in the
        #: span dump so ``dryadsynth flame``/``profile`` can reconcile it.
        self.profile = None
        self._ids = itertools.count(1)
        self._tls = threading.local()
        #: Per-thread open-span stacks, keyed by thread ident.  The same
        #: list objects as the thread-local view — registered here so the
        #: stack *sampler* thread can ask whether a sampled thread currently
        #: has a span open (the dark-time classification) without touching
        #: another thread's locals.
        self._thread_stacks: Dict[int, List[int]] = {}

    def _stack(self) -> List[int]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
            self._thread_stacks[threading.get_ident()] = stack
        return stack

    def thread_has_open_span(self, thread_ident: int) -> bool:
        """Whether ``thread_ident`` has at least one span open right now.

        Called from the sampler thread; safe because list/dict reads are
        atomic under the GIL and the answer only needs to be sample-accurate.
        """
        return bool(self._thread_stacks.get(thread_ident))

    def merge_profile(self, data) -> None:
        """Fold a serialized (or live) stack profile into this recorder."""
        if not data:
            return
        from repro.obs.sampler import StackProfile

        if self.profile is None:
            self.profile = (
                StackProfile.from_json(data) if isinstance(data, dict)
                else data
            )
        else:
            self.profile.merge(data)

    def _finish(self, span: Span) -> None:
        if self.sink is not None:
            self.sink.on_span(span)
        if len(self.spans) >= self.max_spans:
            self._drop()
            return
        self.spans.append(span)

    def _drop(self, count: int = 1) -> None:
        """Account for records lost to the cap — never silently.

        Drops are tallied on the recorder *and* in its metrics registry
        (``obs.spans_dropped``), so a truncated stream is visible in every
        export surface: the JSONL header, the Prometheus dump, and the
        ``truncated`` flag consumers like ``explain``/``profile`` warn on.
        """
        if count <= 0:
            return
        self.dropped += count
        self.metrics.counter("obs.spans_dropped").inc(count)

    @property
    def truncated(self) -> bool:
        """True when the cap forced at least one span/event drop."""
        return self.dropped > 0

    # -- Recording -------------------------------------------------------------

    def span(self, name: str, **attrs):
        """Open a span; use as a context manager.

        The span nests under the innermost span open on the calling thread
        (threads have independent stacks; span *storage* is shared).
        """
        if not self.enabled:
            return NULL_SPAN
        return _LiveSpan(self, name, attrs)

    def add_event(self, name: str, domain: str = "obs", **attrs) -> None:
        """Record an instant event at the current position in the stream."""
        if not self.enabled:
            return
        stack = self._stack()
        event = ObsEvent(
            name=name,
            elapsed=time.monotonic() - self.epoch,
            attrs=_coerce_attrs(attrs),
            domain=domain,
            span_id=stack[-1] if stack else None,
        )
        if self.sink is not None:
            self.sink.on_event(event)
        if len(self.events) >= self.max_spans:
            self._drop()
            return
        self.events.append(event)

    @property
    def current_span_id(self) -> Optional[int]:
        stack = self._stack()
        return stack[-1] if stack else None

    def record_span(
        self,
        name: str,
        *,
        wall: float,
        start: Optional[float] = None,
        parent_id: Optional[int] = None,
        status: str = "ok",
        cpu: float = 0.0,
        **attrs,
    ) -> Optional[int]:
        """Record a span retroactively, without having held it open.

        The serving daemon uses this for phases whose start and end happen
        on different threads (queue wait: admission thread → dispatcher
        thread), where a context manager cannot straddle the boundary.
        ``start`` is seconds since the recorder's epoch; when omitted the
        span is back-dated ``wall`` seconds from now.  Returns the span id
        (None while recording is disabled).
        """
        if not self.enabled:
            return None
        now_rel = time.monotonic() - self.epoch
        if start is None:
            start = max(0.0, now_rel - wall)
        span_id = next(self._ids)
        self._finish(
            Span(
                span_id=span_id,
                parent_id=parent_id,
                name=name,
                start=start,
                wall=wall,
                cpu=cpu,
                attrs=_coerce_attrs(attrs),
                status=status,
                pid=self.pid,
            )
        )
        return span_id

    # -- Serialization and cross-process merge ----------------------------------

    def to_json(self) -> Dict:
        return {
            "format": "repro-spans/1",
            "pid": self.pid,
            "dropped": self.dropped,
            "truncated": self.truncated,
            "spans": [span.to_json() for span in self.spans],
            "events": [event.to_json() for event in self.events],
        }

    def merge_serialized(
        self,
        data: Optional[Dict],
        root_name: str = "job",
        attrs: Optional[Dict] = None,
        wall: Optional[float] = None,
        parent_id: Optional[int] = None,
    ) -> Optional[int]:
        """Graft a serialized child recorder under a synthetic root span.

        The child's spans keep their shape but get fresh ids (allocated in
        payload order, so merging the same payloads in the same order is
        deterministic) and a start offset placing them inside the root.  The
        root's start is back-dated by ``wall`` from *now* — the parent does
        not share a clock with the worker, so this is the best alignment
        available.  ``parent_id`` nests the synthetic root under an existing
        span (how the daemon attaches a worker tree to its request span)
        instead of making it a new top-level root.  Returns the new root
        span id (None for empty payloads).
        """
        if not data:
            return None
        child_spans = [Span.from_json(s) for s in data.get("spans", [])]
        child_events = [ObsEvent.from_json(e) for e in data.get("events", [])]
        now_rel = time.monotonic() - self.epoch
        if wall is None:
            wall = max(
                [s.start + s.wall for s in child_spans] + [0.0]
            )
        offset = max(0.0, now_rel - wall)
        root_id = next(self._ids)
        id_map: Dict[int, int] = {}
        for span in child_spans:  # first pass: allocate ids in payload order
            id_map[span.span_id] = next(self._ids)
        for span in child_spans:
            parent = span.parent_id
            self._finish(
                Span(
                    span_id=id_map[span.span_id],
                    parent_id=id_map.get(parent, root_id),
                    name=span.name,
                    start=span.start + offset,
                    wall=span.wall,
                    cpu=span.cpu,
                    attrs=span.attrs,
                    status=span.status,
                    pid=span.pid,
                )
            )
        for event in child_events:
            if len(self.events) >= self.max_spans:
                self._drop()
                break
            self.events.append(
                ObsEvent(
                    name=event.name,
                    elapsed=event.elapsed + offset,
                    attrs=event.attrs,
                    domain=event.domain,
                    span_id=id_map.get(event.span_id, root_id),
                )
            )
        self._drop(int(data.get("dropped", 0)))
        self._finish(
            Span(
                span_id=root_id,
                parent_id=parent_id,
                name=root_name,
                start=offset,
                wall=wall,
                cpu=sum(s.cpu for s in child_spans if s.parent_id is None),
                attrs=_coerce_attrs(attrs or {}),
                pid=data.get("pid", 0),
            )
        )
        return root_id
