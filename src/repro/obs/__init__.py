"""``repro.obs`` — low-overhead telemetry for the cooperative solver.

Six layers (see ``docs/OBSERVABILITY.md``):

- **Spans** (:mod:`repro.obs.spans`): hierarchical timed regions with typed
  attributes, from the cooperative loop down to individual SMT queries.
- **Metrics** (:mod:`repro.obs.metrics`): named counters/gauges/histograms
  with mergeable snapshots — the cross-process aggregation format.
- **Exports** (:mod:`repro.obs.export`, :mod:`repro.obs.profile`): JSONL
  span sink, Prometheus text dump, and the ``dryadsynth profile``
  time-attribution report.  On top of the dumps sit the forensics
  reports: ``dryadsynth explain`` (:mod:`repro.obs.explain`) for one run
  and ``dryadsynth diff`` (:mod:`repro.obs.diff`) for run-over-run
  regression attribution.
- **Structured logging** (:mod:`repro.obs.log`): JSON-lines service log
  with job/problem correlation IDs (``--log-json``).
- **Live telemetry** (:mod:`repro.obs.live`): an in-process HTTP endpoint
  serving ``/metrics``, ``/healthz`` and ``/jobs`` while a batch runs
  (``dryadsynth batch --serve-telemetry PORT``).
- **Flight recorder** (:mod:`repro.obs.flight`): a crash-resistant journal
  of recent telemetry, recovered as ``JobResult.postmortem`` when a worker
  dies (``dryadsynth postmortem <journal>``).

Recording is **disabled by default**.  Instrumented modules call the
ambient helpers in this module (:func:`span`, :func:`event`,
:func:`metrics`); until a recorder is installed with :func:`recording`
every call is a near-free no-op, so the instrumentation can stay inline in
hot paths.  Install a recorder around a region to capture it::

    from repro import obs

    with obs.recording() as recorder:
        solver.synthesize(problem)
    print(recorder.metrics.to_prometheus())
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import fields as _dataclass_fields
from typing import Dict, Optional

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    QuantileSketch,
)
from repro.obs.spans import (
    NULL_SPAN,
    ObsEvent,
    Span,
    SpanRecorder,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ObsEvent",
    "QuantileSketch",
    "Span",
    "SpanRecorder",
    "active",
    "enabled",
    "event",
    "merge_job_telemetry",
    "metrics",
    "publish_stats",
    "recording",
    "span",
]

#: The ambient recorder; None means telemetry is off (the default).
_active: Optional[SpanRecorder] = None

#: Sink for metric increments made while no recorder is installed.  Writing
#: to it is as cheap as writing to a real registry and keeps call sites
#: branch-free; it is never exported, so disabled-mode recording is a no-op
#: from the outside.
_disabled_registry = MetricsRegistry()


def active() -> Optional[SpanRecorder]:
    """The installed recorder, or None when telemetry is disabled."""
    return _active


def enabled() -> bool:
    return _active is not None


def span(name: str, **attrs):
    """Open a span on the ambient recorder (no-op when disabled)."""
    recorder = _active
    if recorder is None:
        return NULL_SPAN
    return recorder.span(name, **attrs)


def event(name: str, **attrs) -> None:
    """Record an instant event on the ambient recorder (no-op when disabled)."""
    recorder = _active
    if recorder is not None:
        recorder.add_event(name, **attrs)


def metrics() -> MetricsRegistry:
    """The ambient metrics registry.

    While no recorder is installed this returns a private throwaway
    registry, so unconditional ``obs.metrics().counter(...).inc()`` calls
    are safe (and cheap) everywhere.
    """
    recorder = _active
    return recorder.metrics if recorder is not None else _disabled_registry


@contextmanager
def recording(recorder: Optional[SpanRecorder] = None):
    """Install ``recorder`` (or a fresh one) as the ambient recorder.

    Nested recordings stack: the innermost recorder wins and the previous
    one is restored on exit.  Yields the installed recorder.
    """
    global _active
    if recorder is None:
        recorder = SpanRecorder()
    previous = _active
    _active = recorder
    try:
        yield recorder
    finally:
        _active = previous


def publish_stats(stats, registry: Optional[MetricsRegistry] = None,
                  prefix: str = "synth.") -> None:
    """Mirror a :class:`SynthesisStats`-style dataclass into counters.

    Every integer field becomes a ``synth.<field>`` counter increment, so
    the legacy per-run dataclass and the registry report the same numbers.
    Boolean fields are skipped (they are flags, not tallies).
    """
    registry = registry if registry is not None else metrics()
    for spec in _dataclass_fields(stats):
        value = getattr(stats, spec.name)
        if isinstance(value, bool) or not isinstance(value, int):
            continue
        if value:
            registry.counter(prefix + spec.name).inc(value)


def merge_job_telemetry(
    telemetry: Optional[Dict],
    name: str = "job",
    status: str = "",
    wall_time: Optional[float] = None,
    parent_id: Optional[int] = None,
    attrs: Optional[Dict] = None,
) -> Optional[int]:
    """Fold one worker's serialized telemetry into the ambient recorder.

    No-op when telemetry is disabled or the payload is empty.  The worker's
    span tree is re-rooted under a ``job`` span carrying the job's name and
    status (plus any extra ``attrs`` — the daemon stamps trace ids here);
    ``parent_id`` nests that root under an existing span, how a
    ``serve.request`` span adopts its worker tree.  Its metric snapshot
    merges into the ambient registry.  Returns the grafted root span id.
    """
    recorder = _active
    if recorder is None or not telemetry:
        return None
    root_attrs = {"name": name, "status": status}
    if attrs:
        root_attrs.update(attrs)
    root_id = recorder.merge_serialized(
        telemetry.get("spans"),
        root_name="job",
        attrs=root_attrs,
        wall=wall_time,
        parent_id=parent_id,
    )
    recorder.metrics.merge(telemetry.get("metrics"))
    # Sampled stack profiles merge by collapsed-stack key, exactly like
    # metric snapshots; per-job rusage lands as fleet-wide gauges/counters.
    recorder.merge_profile(telemetry.get("profile"))
    rusage = telemetry.get("rusage")
    if rusage:
        peak = rusage.get("peak_rss_bytes")
        if peak:
            recorder.metrics.gauge("process.peak_rss_bytes").set_max(
                float(peak)
            )
        if rusage.get("user_cpu"):
            recorder.metrics.counter("process.user_cpu_seconds").inc(
                rusage["user_cpu"]
            )
        if rusage.get("sys_cpu"):
            recorder.metrics.counter("process.sys_cpu_seconds").inc(
                rusage["sys_cpu"]
            )
    return root_id
