"""Telemetry exports: JSONL span sink and Prometheus text dump.

The JSONL format is line-oriented so huge runs stream without a giant
in-memory document:

- line 1: a header record ``{"format": "repro-spans/1", ...}``;
- then one record per span (``{"span": {...}}``) and one per instant event
  (``{"event": {...}}``), in completion order.

``dryadsynth profile`` consumes this file; see :mod:`repro.obs.profile`.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, TextIO, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import ObsEvent, Span, SpanRecorder

SPANS_FORMAT = "repro-spans/1"


def write_spans_jsonl(recorder: SpanRecorder, path: str) -> None:
    """Write a recorder's span and event streams as JSONL."""
    with open(path, "w") as handle:
        dump_spans_jsonl(recorder, handle)


def dump_spans_jsonl(recorder: SpanRecorder, handle: TextIO) -> None:
    header = {
        "format": SPANS_FORMAT,
        "pid": recorder.pid,
        "dropped": recorder.dropped,
        "truncated": recorder.truncated,
        "num_spans": len(recorder.spans),
        "num_events": len(recorder.events),
    }
    handle.write(json.dumps(header) + "\n")
    for span in recorder.spans:
        handle.write(json.dumps({"span": span.to_json()}) + "\n")
    for event in recorder.events:
        handle.write(json.dumps({"event": event.to_json()}) + "\n")
    # The sampled stack profile (when a sampler ran) rides in the same dump
    # as its own record kind; older readers skip unknown kinds.
    profile = getattr(recorder, "profile", None)
    if profile is not None:
        handle.write(json.dumps({"profile": profile.to_json()}) + "\n")


def read_jsonl_tolerant(path: str) -> List[Dict]:
    """Read a JSONL file whose *final* line may be torn mid-write.

    The shared contract for every append-only store in the repo (span
    dumps, ``BENCH_history.jsonl``, the per-node analytics store): a writer
    killed mid-append (SIGKILL, hard deadline, power loss) leaves a
    truncated trailing line behind, and that torn tail — including one cut
    in the middle of a multi-byte UTF-8 character, which a text-mode read
    would die on before reaching any line — is silently dropped so every
    complete record before it is still recovered.  A corrupt *interior*
    line still raises, because that means the file is damaged, not merely
    unfinished.
    """
    with open(path, "rb") as handle:
        raw_lines = handle.read().split(b"\n")
    last = max(
        (i for i, raw in enumerate(raw_lines) if raw.strip()), default=-1
    )
    records: List[Dict] = []
    for index, raw in enumerate(raw_lines):
        if not raw.strip():
            continue
        try:
            records.append(json.loads(raw))
        except (json.JSONDecodeError, UnicodeDecodeError):
            if index == last:
                continue  # torn tail from an interrupted append
            raise
    return records


def read_spans_jsonl(path: str) -> Tuple[List[Span], List[ObsEvent], Dict]:
    """Load a spans JSONL file; returns ``(spans, events, header)``.

    Unknown record kinds are skipped so future writers stay readable;
    torn-tail tolerance follows :func:`read_jsonl_tolerant`.
    """
    spans: List[Span] = []
    events: List[ObsEvent] = []
    header: Dict = {}
    for record in read_jsonl_tolerant(path):
        if "span" in record:
            spans.append(Span.from_json(record["span"]))
        elif "event" in record:
            events.append(ObsEvent.from_json(record["event"]))
        elif record.get("format", "").startswith("repro-spans/"):
            header = record
    return spans, events, header


def write_metrics_text(registry: MetricsRegistry, path: str) -> None:
    """Write the registry as Prometheus text exposition format."""
    with open(path, "w") as handle:
        handle.write(registry.to_prometheus())


def telemetry_payload(
    recorder: Optional[SpanRecorder],
    profile=None,
    rusage: Optional[Dict] = None,
) -> Optional[Dict]:
    """The worker-to-parent wire payload stored in ``JobResult.telemetry``.

    ``profile`` (a :class:`~repro.obs.sampler.StackProfile`) and ``rusage``
    (a :func:`repro.obs.rusage.delta` dict) ride along when the job sampled
    stacks / accounted resources; the parent folds them into its own
    recorder and registry exactly like the span tree and metric snapshot.
    """
    if recorder is None:
        return None
    payload = {
        "spans": recorder.to_json(),
        "metrics": recorder.metrics.snapshot(),
    }
    if profile is not None:
        payload["profile"] = profile.to_json()
    if rusage:
        payload["rusage"] = dict(rusage)
    return payload
