"""Telemetry exports: JSONL span sink and Prometheus text dump.

The JSONL format is line-oriented so huge runs stream without a giant
in-memory document:

- line 1: a header record ``{"format": "repro-spans/1", ...}``;
- then one record per span (``{"span": {...}}``) and one per instant event
  (``{"event": {...}}``), in completion order.

``dryadsynth profile`` consumes this file; see :mod:`repro.obs.profile`.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, TextIO, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import ObsEvent, Span, SpanRecorder

SPANS_FORMAT = "repro-spans/1"


def write_spans_jsonl(recorder: SpanRecorder, path: str) -> None:
    """Write a recorder's span and event streams as JSONL."""
    with open(path, "w") as handle:
        dump_spans_jsonl(recorder, handle)


def dump_spans_jsonl(recorder: SpanRecorder, handle: TextIO) -> None:
    header = {
        "format": SPANS_FORMAT,
        "pid": recorder.pid,
        "dropped": recorder.dropped,
        "truncated": recorder.truncated,
        "num_spans": len(recorder.spans),
        "num_events": len(recorder.events),
    }
    handle.write(json.dumps(header) + "\n")
    for span in recorder.spans:
        handle.write(json.dumps({"span": span.to_json()}) + "\n")
    for event in recorder.events:
        handle.write(json.dumps({"event": event.to_json()}) + "\n")


def read_spans_jsonl(path: str) -> Tuple[List[Span], List[ObsEvent], Dict]:
    """Load a spans JSONL file; returns ``(spans, events, header)``.

    Unknown record kinds are skipped so future writers stay readable.  A
    *truncated final line* — what a writer killed mid-write (SIGKILL, hard
    deadline) leaves behind — is silently dropped, so every complete record
    before the torn tail is still recovered; a corrupt *interior* line still
    raises, because that means the file is damaged, not merely unfinished.
    """
    spans: List[Span] = []
    events: List[ObsEvent] = []
    header: Dict = {}
    with open(path) as handle:
        lines = handle.read().split("\n")
    last = max((i for i, line in enumerate(lines) if line.strip()), default=-1)
    for index, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            if index == last:
                break
            raise
        if "span" in record:
            spans.append(Span.from_json(record["span"]))
        elif "event" in record:
            events.append(ObsEvent.from_json(record["event"]))
        elif record.get("format", "").startswith("repro-spans/"):
            header = record
    return spans, events, header


def write_metrics_text(registry: MetricsRegistry, path: str) -> None:
    """Write the registry as Prometheus text exposition format."""
    with open(path, "w") as handle:
        handle.write(registry.to_prometheus())


def telemetry_payload(recorder: Optional[SpanRecorder]) -> Optional[Dict]:
    """The worker-to-parent wire payload stored in ``JobResult.telemetry``."""
    if recorder is None:
        return None
    return {"spans": recorder.to_json(), "metrics": recorder.metrics.snapshot()}
