"""Live telemetry endpoint: scrape a running batch (or daemon) over HTTP.

Stdlib-only (:mod:`http.server` on daemon threads) so the service layer
keeps its zero-dependency promise.  Three built-in endpoints:

- ``/metrics`` — the merged :class:`~repro.obs.metrics.MetricsRegistry` in
  Prometheus text exposition format (a scrape target, version 0.0.4);
- ``/healthz`` — liveness JSON (status, uptime, pid).  A provider that
  reports ``status`` other than ``"ok"`` (dead workers, queue saturation)
  turns the reply into **503**, so load balancers and orchestrators can act
  on degradation instead of parsing JSON;
- ``/jobs`` — the pool's per-job view: state (queued / running / retrying /
  done), queue wait, remaining hard deadline, assigned worker pid.

The server never *computes* anything: it renders provider callbacks
(``metrics_fn`` returning exposition text, ``jobs_fn`` returning a list of
dicts) supplied by whoever owns the run — ``dryadsynth batch
--serve-telemetry PORT`` wires them to the ambient recorder and the
:class:`~repro.service.pool.WorkerPool`, whose scheduler keeps the job
states fresh.  Handlers run on server threads while the pool mutates on its
scheduler thread; providers must therefore return snapshots (the pool's
``jobs_snapshot`` copies under its lock, and the registry render is retried
on the rare mid-mutation ``RuntimeError``).

Beyond the built-ins the server is a tiny route table: callers register
``add_route(method, pattern, handler)`` for extra endpoints (the
:mod:`repro.serve` daemon mounts its ``/v1/...`` API this way, folding the
service API and the telemetry scrape into one listener).  Handlers receive
``(request, body, **path_params)`` and reply via :meth:`TelemetryServer.
reply_json` / :meth:`reply` / :meth:`stream_chunks`.
"""

from __future__ import annotations

import json
import re
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, Iterable, List, Optional, Pattern, Union

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Largest request body accepted by the built-in reader (a SyGuS problem is
#: a few KB; this is a hard stop against accidental or hostile uploads).
MAX_BODY_BYTES = 4 * 1024 * 1024


class TelemetryServer:
    """Serve ``/metrics``, ``/healthz``, ``/jobs`` and registered routes."""

    def __init__(
        self,
        port: int = 0,
        host: str = "127.0.0.1",
        metrics_fn: Optional[Callable[[], str]] = None,
        jobs_fn: Optional[Callable[[], List[Dict]]] = None,
        health_extra: Optional[Callable[[], Dict]] = None,
    ) -> None:
        self.metrics_fn = metrics_fn
        self.jobs_fn = jobs_fn
        self.health_extra = health_extra
        self.started_at = time.monotonic()
        self._routes: List[tuple] = []
        server = self

        class Handler(BaseHTTPRequestHandler):
            # HTTP/1.1 enables chunked transfer encoding for the streaming
            # routes; non-streaming replies always carry Content-Length.
            protocol_version = "HTTP/1.1"

            def log_message(self, *args) -> None:  # noqa: A003 - stdlib name
                pass  # scrapes must not spam the operator's stderr

            def do_GET(self) -> None:  # noqa: N802 - stdlib name
                server._handle(self, "GET")

            def do_POST(self) -> None:  # noqa: N802 - stdlib name
                server._handle(self, "POST")

            def do_DELETE(self) -> None:  # noqa: N802 - stdlib name
                server._handle(self, "DELETE")

        self._httpd = ThreadingHTTPServer((host, port), Handler)
        self._httpd.daemon_threads = True
        self.host = host
        self.port = self._httpd.server_address[1]  # resolved when port was 0
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def add_route(
        self,
        method: str,
        pattern: Union[str, Pattern],
        handler: Callable,
    ) -> None:
        """Register ``handler(request, body, **params)`` for a path.

        ``pattern`` is an exact path string or a compiled regex whose named
        groups become keyword arguments.  Routes are matched in
        registration order, before the built-in endpoints.
        """
        if isinstance(pattern, str):
            pattern = re.compile(re.escape(pattern) + r"$")
        self._routes.append((method.upper(), pattern, handler))

    def start(self) -> str:
        """Serve on a daemon thread; returns the bound URL.

        The return value is the machine-readable discovery point: with
        ``port=0`` the OS picks a free port, and callers (scripts, the
        batch CLI's ``TELEMETRY_URL=`` line) need the resolved address.
        """
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-telemetry",
            daemon=True,
        )
        self._thread.start()
        return self.url

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "TelemetryServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- Request handling (runs on server threads) ------------------------------

    def _handle(self, request: BaseHTTPRequestHandler, method: str) -> None:
        path = request.path.split("?", 1)[0].rstrip("/") or "/"
        try:
            for route_method, pattern, handler in self._routes:
                if route_method != method:
                    continue
                match = pattern.match(path)
                if match is None:
                    continue
                body = self._read_body(request) if method == "POST" else None
                handler(request, body, **match.groupdict())
                return
            if method == "GET" and path == "/metrics":
                body = self._render_metrics().encode()
                self.reply(request, 200, PROMETHEUS_CONTENT_TYPE, body)
            elif method == "GET" and path == "/healthz":
                payload = self._health()
                code = 200 if payload.get("status") == "ok" else 503
                self.reply_json(request, code, payload)
            elif method == "GET" and path == "/jobs":
                self.reply_json(request, 200, self._jobs())
            else:
                self.reply_json(
                    request, 404,
                    {"error": "not found",
                     "endpoints": self._known_endpoints()},
                )
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-reply
        except Exception as exc:  # noqa: BLE001 - keep the server alive
            try:
                self.reply_json(
                    request, 500, {"error": f"{type(exc).__name__}: {exc}"}
                )
            except OSError:
                pass

    def _known_endpoints(self) -> List[str]:
        known = ["/metrics", "/healthz", "/jobs"]
        for _method, pattern, _handler in self._routes:
            known.append(pattern.pattern.replace("\\", "").rstrip("$"))
        return known

    @staticmethod
    def _read_body(request: BaseHTTPRequestHandler) -> bytes:
        length = int(request.headers.get("Content-Length") or 0)
        if length <= 0:
            return b""
        return request.rfile.read(min(length, MAX_BODY_BYTES))

    def _render_metrics(self) -> str:
        if self.metrics_fn is None:
            return ""
        # The registry may gain a metric mid-render on the pool thread; the
        # dump only reads, so a retry after the rare RuntimeError suffices.
        for attempt in range(3):
            try:
                return self.metrics_fn()
            except RuntimeError:
                if attempt == 2:
                    raise
                time.sleep(0.005)
        return ""

    def _health(self) -> Dict:
        import os

        payload: Dict = {
            "status": "ok",
            "uptime_seconds": round(time.monotonic() - self.started_at, 3),
            "pid": os.getpid(),
        }
        if self.health_extra is not None:
            try:
                payload.update(self.health_extra())
            except Exception as exc:  # noqa: BLE001 - health must not 500
                # Keep degraded replies machine-readable even when the
                # provider itself is the failure: name the condition the
                # same way the daemon's health() names its own.
                detail = f"{type(exc).__name__}: {exc}"
                payload["status"] = "degraded"
                payload["error"] = detail
                payload.setdefault("conditions", {})["health_provider_error"] = {
                    "tripped": True,
                    "error": detail,
                }
                payload.setdefault("reasons", []).append(
                    f"health provider raised: {detail}"
                )
        return payload

    def _jobs(self) -> Dict:
        jobs = list(self.jobs_fn()) if self.jobs_fn is not None else []
        counts: Dict[str, int] = {}
        for job in jobs:
            state = str(job.get("state", "unknown"))
            counts[state] = counts.get(state, 0) + 1
        return {"jobs": jobs, "counts": counts, "total": len(jobs)}

    # -- Reply helpers (for registered route handlers too) ----------------------

    @staticmethod
    def reply(
        request,
        code: int,
        content_type: str,
        body: bytes,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        request.send_response(code)
        request.send_header("Content-Type", content_type)
        request.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            request.send_header(name, value)
        request.end_headers()
        request.wfile.write(body)

    @classmethod
    def reply_json(
        cls,
        request,
        code: int,
        payload: Dict,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode()
        cls.reply(request, code, "application/json", body, headers=headers)

    @staticmethod
    def stream_chunks(
        request,
        chunks: Iterable[bytes],
        content_type: str = "application/x-ndjson",
    ) -> None:
        """Stream an iterable as a chunked HTTP/1.1 response.

        Each yielded byte string is flushed as its own chunk the moment the
        iterable produces it — the transport behind ``GET
        /v1/jobs/<id>/events``.  The client sees an incremental body and a
        clean end-of-stream marker instead of a connection reset.
        """
        request.send_response(200)
        request.send_header("Content-Type", content_type)
        request.send_header("Transfer-Encoding", "chunked")
        request.end_headers()
        try:
            for chunk in chunks:
                if not chunk:
                    continue
                request.wfile.write(b"%x\r\n" % len(chunk))
                request.wfile.write(chunk)
                request.wfile.write(b"\r\n")
                request.wfile.flush()
        finally:
            try:
                request.wfile.write(b"0\r\n\r\n")
                request.wfile.flush()
            except OSError:
                pass
