"""Live telemetry endpoint: scrape a running batch over HTTP.

Stdlib-only (:mod:`http.server` on a daemon thread) so the service layer
keeps its zero-dependency promise.  Three endpoints:

- ``/metrics`` — the merged :class:`~repro.obs.metrics.MetricsRegistry` in
  Prometheus text exposition format (a scrape target, version 0.0.4);
- ``/healthz`` — liveness JSON (status, uptime, pid);
- ``/jobs`` — the pool's per-job view: state (queued / running / retrying /
  done), queue wait, remaining hard deadline, assigned worker pid.

The server never *computes* anything: it renders provider callbacks
(``metrics_fn`` returning exposition text, ``jobs_fn`` returning a list of
dicts) supplied by whoever owns the run — ``dryadsynth batch
--serve-telemetry PORT`` wires them to the ambient recorder and the
:class:`~repro.service.pool.WorkerPool`, whose scheduler loop keeps the job
states fresh.  Handlers run on the server thread while the pool mutates on
the main thread; providers must therefore return snapshots (the pool's
``jobs_snapshot`` copies under its lock, and the registry render is retried
on the rare mid-mutation ``RuntimeError``).
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, List, Optional

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class TelemetryServer:
    """Serve ``/metrics``, ``/healthz`` and ``/jobs`` on a daemon thread."""

    def __init__(
        self,
        port: int = 0,
        host: str = "127.0.0.1",
        metrics_fn: Optional[Callable[[], str]] = None,
        jobs_fn: Optional[Callable[[], List[Dict]]] = None,
        health_extra: Optional[Callable[[], Dict]] = None,
    ) -> None:
        self.metrics_fn = metrics_fn
        self.jobs_fn = jobs_fn
        self.health_extra = health_extra
        self.started_at = time.monotonic()
        server = self

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, *args) -> None:  # noqa: A003 - stdlib name
                pass  # scrapes must not spam the operator's stderr

            def do_GET(self) -> None:  # noqa: N802 - stdlib name
                server._handle(self)

        self._httpd = ThreadingHTTPServer((host, port), Handler)
        self._httpd.daemon_threads = True
        self.host = host
        self.port = self._httpd.server_address[1]  # resolved when port was 0
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "TelemetryServer":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-telemetry",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "TelemetryServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- Request handling (runs on the server thread) ---------------------------

    def _handle(self, request: BaseHTTPRequestHandler) -> None:
        path = request.path.split("?", 1)[0].rstrip("/") or "/"
        try:
            if path == "/metrics":
                body = self._render_metrics().encode()
                self._reply(request, 200, PROMETHEUS_CONTENT_TYPE, body)
            elif path == "/healthz":
                self._reply_json(request, 200, self._health())
            elif path == "/jobs":
                self._reply_json(request, 200, self._jobs())
            else:
                self._reply_json(
                    request, 404,
                    {"error": "not found",
                     "endpoints": ["/metrics", "/healthz", "/jobs"]},
                )
        except (BrokenPipeError, ConnectionResetError):
            pass  # scraper went away mid-reply
        except Exception as exc:  # noqa: BLE001 - keep the server alive
            try:
                self._reply_json(
                    request, 500, {"error": f"{type(exc).__name__}: {exc}"}
                )
            except OSError:
                pass

    def _render_metrics(self) -> str:
        if self.metrics_fn is None:
            return ""
        # The registry may gain a metric mid-render on the pool thread; the
        # dump only reads, so a retry after the rare RuntimeError suffices.
        for attempt in range(3):
            try:
                return self.metrics_fn()
            except RuntimeError:
                if attempt == 2:
                    raise
                time.sleep(0.005)
        return ""

    def _health(self) -> Dict:
        import os

        payload: Dict = {
            "status": "ok",
            "uptime_seconds": round(time.monotonic() - self.started_at, 3),
            "pid": os.getpid(),
        }
        if self.health_extra is not None:
            try:
                payload.update(self.health_extra())
            except Exception as exc:  # noqa: BLE001 - health must not 500
                payload["status"] = "degraded"
                payload["error"] = f"{type(exc).__name__}: {exc}"
        return payload

    def _jobs(self) -> Dict:
        jobs = list(self.jobs_fn()) if self.jobs_fn is not None else []
        counts: Dict[str, int] = {}
        for job in jobs:
            state = str(job.get("state", "unknown"))
            counts[state] = counts.get(state, 0) + 1
        return {"jobs": jobs, "counts": counts, "total": len(jobs)}

    @staticmethod
    def _reply(request, code: int, content_type: str, body: bytes) -> None:
        request.send_response(code)
        request.send_header("Content-Type", content_type)
        request.send_header("Content-Length", str(len(body)))
        request.end_headers()
        request.wfile.write(body)

    @classmethod
    def _reply_json(cls, request, code: int, payload: Dict) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode()
        cls._reply(request, code, "application/json", body)
