"""Per-process resource accounting: peak RSS and user/sys CPU.

Two complementary vantage points, mirroring how the pool watches workers:

- **Inside a process** — :func:`snapshot` / :func:`delta` wrap
  ``resource.getrusage(RUSAGE_SELF)``: peak RSS (``ru_maxrss``, normalized
  to bytes — Linux reports KiB, macOS bytes) and user/sys CPU seconds.
  ``ru_maxrss`` is a high-water mark, not a counter, so a delta reports
  the *absolute* peak alongside the CPU-time differences.
- **From the parent** — :func:`process_rss_bytes` reads another process's
  *current* RSS from ``/proc/<pid>/statm`` (the poll the pool's
  ``max_rss_mb`` budget enforcement runs alongside its deadline checks),
  and :func:`children_peak_rss_bytes` reads ``RUSAGE_CHILDREN`` as the
  kernel-side cross-check on what reaped workers peaked at.

Everything degrades gracefully off-Linux: missing ``/proc`` or a missing
``resource`` module yields ``None``/zeros, never an exception, so the
telemetry layer stays optional on every platform.
"""

from __future__ import annotations

import os
import sys
from typing import Dict, Optional

try:
    import resource as _resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    _resource = None

try:
    _PAGE_SIZE = os.sysconf("SC_PAGE_SIZE")
except (AttributeError, ValueError, OSError):  # pragma: no cover
    _PAGE_SIZE = 4096


def _maxrss_bytes(ru) -> int:
    """Normalize ``ru_maxrss`` to bytes (KiB on Linux, bytes on macOS)."""
    scale = 1 if sys.platform == "darwin" else 1024
    return int(ru.ru_maxrss) * scale


def snapshot(children: bool = False) -> Dict[str, float]:
    """Current rusage: peak RSS bytes plus cumulative user/sys CPU seconds."""
    if _resource is None:  # pragma: no cover - non-POSIX platforms
        return {"peak_rss_bytes": 0, "user_cpu": 0.0, "sys_cpu": 0.0}
    who = _resource.RUSAGE_CHILDREN if children else _resource.RUSAGE_SELF
    ru = _resource.getrusage(who)
    return {
        "peak_rss_bytes": _maxrss_bytes(ru),
        "user_cpu": ru.ru_utime,
        "sys_cpu": ru.ru_stime,
    }


def delta(before: Dict[str, float]) -> Dict[str, float]:
    """Per-job usage since ``before`` (a :func:`snapshot`).

    CPU times are true deltas; ``peak_rss_bytes`` is the process high-water
    mark at the end of the window (the kernel offers no resettable peak),
    which for a warm worker is "the largest this worker has ever been" —
    still the number a memory budget cares about.
    """
    after = snapshot()
    return {
        "peak_rss_bytes": after["peak_rss_bytes"],
        "user_cpu": round(max(0.0, after["user_cpu"] - before["user_cpu"]), 6),
        "sys_cpu": round(max(0.0, after["sys_cpu"] - before["sys_cpu"]), 6),
    }


def self_peak_rss_bytes() -> int:
    """This process's lifetime peak RSS in bytes."""
    return int(snapshot()["peak_rss_bytes"])


def children_peak_rss_bytes() -> int:
    """Peak RSS across *reaped* child processes (``RUSAGE_CHILDREN``)."""
    if _resource is None:  # pragma: no cover - non-POSIX platforms
        return 0
    return _maxrss_bytes(_resource.getrusage(_resource.RUSAGE_CHILDREN))


def process_rss_bytes(pid: Optional[int] = None) -> Optional[int]:
    """A process's *current* resident set size, from ``/proc/<pid>/statm``.

    Returns ``None`` when the process is gone or ``/proc`` is unavailable
    (non-Linux); callers treat an unreadable RSS as "cannot enforce", never
    as zero.
    """
    target = pid if pid is not None else os.getpid()
    try:
        with open(f"/proc/{target}/statm", "rb") as handle:
            fields = handle.read().split()
        return int(fields[1]) * _PAGE_SIZE
    except (OSError, ValueError, IndexError):
        return None
