"""Structured JSON logging: one JSON object per line, correlation-ID aware.

This is the *service log* of the stack — the stream an operator tails (or
ships to a log aggregator) while a batch runs, as opposed to the span/metric
telemetry that is analysed after the fact.  It is a thin adapter over stdlib
:mod:`logging`:

- :func:`configure_json_logging` attaches a :class:`JsonLineFormatter`
  handler to the ``repro`` logger tree, so every module logger
  (``repro.service.pool``, ``repro.synth.cooperative``, ...) feeds it;
- :func:`log_context` pushes correlation fields (``job_id``, ``problem``,
  ``solver``) onto a :mod:`contextvars` context, and the formatter stamps
  them onto every record emitted underneath — this is how one job's pool
  events, cooperative-loop milestones and SMT events correlate across the
  log without threading IDs through every call signature;
- :func:`jlog` emits one structured event: the message is a stable
  ``dotted.event.name`` and the payload travels as typed fields, never
  interpolated into the message.

Workers never log through inherited handlers: forked children first scrub
them (:func:`reset_after_fork` — an inherited stream's lock may have been
held by another parent thread at fork time), then the job carries the
target path in ``params["log_json"]`` and the worker re-attaches a fresh
handler idempotently (:func:`ensure_worker_logging`), under ``spawn`` too.
All processes append to the same file; each record is a single ``write()``
of one line, so concurrent appends interleave per-line, not mid-line.
"""

from __future__ import annotations

import contextvars
import json
import logging
import sys
from contextlib import contextmanager
from typing import Dict, Optional

LOG_FORMAT = "repro-log/1"

#: Correlation fields stamped onto every record emitted in this context.
_context: contextvars.ContextVar = contextvars.ContextVar(
    "repro_log_context", default=None
)

#: Targets already configured in this process (inherited across fork, which
#: is exactly the bookkeeping that makes re-attachment idempotent).
_configured: Dict[str, logging.Handler] = {}


def current_context() -> Dict:
    """The correlation fields in effect (empty outside any :func:`log_context`)."""
    return dict(_context.get() or {})


@contextmanager
def log_context(**fields):
    """Push correlation fields for every record emitted in the body.

    Nested contexts merge (inner wins on key collision); ``None`` values are
    dropped.  Uses :mod:`contextvars`, so threads and the pool's scheduler
    loop each see their own stack.
    """
    base = _context.get() or {}
    merged = dict(base)
    merged.update({k: v for k, v in fields.items() if v is not None})
    token = _context.set(merged)
    try:
        yield
    finally:
        _context.reset(token)


def jlog(logger: logging.Logger, event: str, /,
         level: int = logging.INFO, **fields) -> None:
    """Emit one structured event (``event`` is the message, fields are data).

    A no-op at disabled levels before any formatting work happens, so
    hot-path call sites (per-SMT-query events at DEBUG) stay cheap when the
    operator did not ask for them.
    """
    if logger.isEnabledFor(level):
        logger.log(level, event, extra={"repro_fields": fields})


class JsonLineFormatter(logging.Formatter):
    """Render a log record as one JSON object per line.

    Field order: envelope (timestamp, level, logger, event, pid), then the
    ambient correlation context, then the record's own structured fields —
    later sources win on collision, so an event can override its context.
    """

    def format(self, record: logging.LogRecord) -> str:
        payload: Dict = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "event": record.getMessage(),
            "pid": record.process,
        }
        payload.update(_context.get() or {})
        fields = getattr(record, "repro_fields", None)
        if fields:
            payload.update(fields)
        if record.exc_info and record.exc_info[0] is not None:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=str)


def configure_json_logging(
    target: str,
    level: int = logging.INFO,
    logger_name: str = "repro",
) -> logging.Handler:
    """Attach a JSON-lines handler for ``target`` (a path, or ``-`` for stderr).

    Returns the handler so the caller can :func:`remove_json_logging` it.
    ``-`` goes to *stderr* (not stdout) because the CLIs reserve stdout for
    results — solutions and batch JSONL records.
    """
    if target == "-":
        handler: logging.Handler = logging.StreamHandler(sys.stderr)
    else:
        handler = logging.FileHandler(target, mode="a")
    handler.setFormatter(JsonLineFormatter())
    handler.setLevel(level)
    logger = logging.getLogger(logger_name)
    logger.addHandler(handler)
    if logger.level == logging.NOTSET or logger.level > level:
        logger.setLevel(level)
    _configured[target] = handler
    return handler


def remove_json_logging(
    handler: logging.Handler, logger_name: str = "repro"
) -> None:
    """Detach and close a handler installed by :func:`configure_json_logging`."""
    logging.getLogger(logger_name).removeHandler(handler)
    handler.close()
    for target, installed in list(_configured.items()):
        if installed is handler:
            del _configured[target]


def reset_after_fork() -> None:
    """Make logging safe inside a just-forked worker process.

    CPython reinitialises *logging* locks after fork, but not the buffered
    stream objects handlers write to: if any other parent thread was
    mid-write at fork time, the inherited ``TextIOWrapper`` lock stays held
    forever in the child and its first ``flush()`` deadlocks — observed as
    a worker hanging silently until its hard deadline, then being retried.
    A pool that forks from its scheduler thread while the daemon's
    dispatcher (or a test harness) logs concurrently hits this for real, so
    workers must stop using every inherited stream before their first log
    call: detach all inherited handlers (without ``close()`` — closing
    flushes, which is the very call that deadlocks), park a
    :class:`~logging.NullHandler` on the ``repro`` logger so the
    no-handler fallback never touches the inherited ``sys.stderr``
    wrapper, and forget :data:`_configured` so
    :func:`ensure_worker_logging` reopens the JSONL target on a fresh
    file object with fresh locks.
    """
    for name in (None, "repro"):
        logger = logging.getLogger(name)
        for handler in list(logger.handlers):
            logger.removeHandler(handler)
    logging.getLogger("repro").addHandler(logging.NullHandler())
    _configured.clear()


def ensure_worker_logging(target: Optional[str]) -> None:
    """Idempotently attach JSON logging inside a worker process.

    Under ``fork`` the parent's handler (and ``_configured``) were inherited
    and this is a no-op; under ``spawn`` the worker starts clean and attaches
    its own appending handler.  ``-`` is parent-only (worker stderr is not
    the operator's terminal), so it is ignored here.
    """
    if not target or target == "-" or target in _configured:
        return
    configure_json_logging(target)
