"""Cross-run regression attribution (``dryadsynth diff``).

``explain`` (:mod:`repro.obs.explain`) answers *where one run's time went*;
this module answers *where the time moved between two runs*.  It aligns two
runs' span streams and forensics events by the process-stable subproblem
node id (``stable_node_id``: spec s-expr + signature + grammar hash — the
same id across runs, threads and worker processes), then computes:

- **per-node self-wall deltas** — which subproblems got slower or faster,
  including nodes that exist in only one run (a changed division strategy
  creates/retires nodes);
- **per-problem movers** — root ``synth`` spans grouped by their ``problem``
  attr, with solved-set gains/losses;
- **rule-firing and strategy drift** — which Figure 7/8 deduction rules
  fired more/less, and which nodes changed division strategy between runs;
- **SMT-round deltas** per node.

The report keeps ``explain``'s discipline: the per-node deltas plus the
``(run)`` bucket delta partition the total traced-wall delta *exactly*
(each run's self times partition its own wall, so their differences
partition the difference).  ``render_diff`` is an attribution of the
regression, not a collection of timers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.explain import (
    ExplainReport,
    NodeReport,
    ancestor_attr,
    build_explain,
)
from repro.obs.spans import ObsEvent, Span


@dataclass
class NodeDelta:
    """One aligned subproblem node across the two runs."""

    node_id: str
    fun: str = "?"
    present_a: bool = False
    present_b: bool = False
    self_a: float = 0.0
    self_b: float = 0.0
    smt_rounds_a: int = 0
    smt_rounds_b: int = 0
    cegis_iters_a: int = 0
    cegis_iters_b: int = 0
    status_a: Optional[str] = None  # solved_how | "unsolved" | None (absent)
    status_b: Optional[str] = None
    strategy_a: Optional[str] = None  # last division strategy seen on node
    strategy_b: Optional[str] = None
    heights_a: List[int] = field(default_factory=list)
    heights_b: List[int] = field(default_factory=list)
    problems: List[str] = field(default_factory=list)

    @property
    def delta(self) -> float:
        return self.self_b - self.self_a

    @property
    def drifted(self) -> bool:
        """Both runs saw the node but chose different division strategies."""
        return (
            self.present_a
            and self.present_b
            and self.strategy_a != self.strategy_b
        )

    @property
    def only_in(self) -> Optional[str]:
        if self.present_a and not self.present_b:
            return "A"
        if self.present_b and not self.present_a:
            return "B"
        return None


@dataclass
class ProblemDelta:
    """One problem (root ``synth`` span group) across the two runs."""

    name: str
    present_a: bool = False
    present_b: bool = False
    wall_a: float = 0.0
    wall_b: float = 0.0
    solved_a: bool = False
    solved_b: bool = False

    @property
    def delta(self) -> float:
        return self.wall_b - self.wall_a

    @property
    def status_change(self) -> str:
        def mark(present: bool, solved: bool) -> str:
            if not present:
                return "absent"
            return "solved" if solved else "unsolved"

        return f"{mark(self.present_a, self.solved_a)}->" \
               f"{mark(self.present_b, self.solved_b)}"


@dataclass
class RuleDelta:
    """One deduction rule's firing counts across the two runs."""

    rule: str
    fired_a: int = 0
    fired_b: int = 0
    failed_a: int = 0
    failed_b: int = 0

    @property
    def fired_delta(self) -> int:
        return self.fired_b - self.fired_a

    @property
    def failed_delta(self) -> int:
        return self.failed_b - self.failed_a


@dataclass
class DiffReport:
    """The computed cross-run attribution."""

    label_a: str
    label_b: str
    report_a: ExplainReport
    report_b: ExplainReport
    nodes: List[NodeDelta] = field(default_factory=list)
    problems: List[ProblemDelta] = field(default_factory=list)
    rules: List[RuleDelta] = field(default_factory=list)

    @property
    def total_delta(self) -> float:
        return self.report_b.total_wall - self.report_a.total_wall

    @property
    def run_self_delta(self) -> float:
        return self.report_b.run_self_wall - self.report_a.run_self_wall

    def attributed_delta(self) -> float:
        """(run)-bucket delta + per-node deltas; equals ``total_delta``."""
        return self.run_self_delta + sum(n.delta for n in self.nodes)

    @property
    def solved_lost(self) -> List[str]:
        return [
            p.name for p in self.problems
            if p.present_a and p.present_b and p.solved_a and not p.solved_b
        ]

    @property
    def solved_gained(self) -> List[str]:
        return [
            p.name for p in self.problems
            if p.present_a and p.present_b and p.solved_b and not p.solved_a
        ]

    @property
    def strategy_drift(self) -> List[NodeDelta]:
        return [n for n in self.nodes if n.drifted]

    @property
    def truncated(self) -> bool:
        return self.report_a.truncated or self.report_b.truncated

    def to_json(self) -> Dict:
        return {
            "format": "repro-run-diff/1",
            "label_a": self.label_a,
            "label_b": self.label_b,
            "total_wall_a": round(self.report_a.total_wall, 6),
            "total_wall_b": round(self.report_b.total_wall, 6),
            "total_delta": round(self.total_delta, 6),
            "run_self_delta": round(self.run_self_delta, 6),
            "attributed_delta": round(self.attributed_delta(), 6),
            "truncated": self.truncated,
            "solved_lost": self.solved_lost,
            "solved_gained": self.solved_gained,
            "problems": [
                {
                    "name": p.name,
                    "wall_a": round(p.wall_a, 6),
                    "wall_b": round(p.wall_b, 6),
                    "delta": round(p.delta, 6),
                    "status": p.status_change,
                }
                for p in self.problems
            ],
            "nodes": [
                {
                    "node": n.node_id,
                    "fun": n.fun,
                    "self_a": round(n.self_a, 6),
                    "self_b": round(n.self_b, 6),
                    "delta": round(n.delta, 6),
                    "smt_rounds_a": n.smt_rounds_a,
                    "smt_rounds_b": n.smt_rounds_b,
                    "status_a": n.status_a,
                    "status_b": n.status_b,
                    "strategy_a": n.strategy_a,
                    "strategy_b": n.strategy_b,
                    "only_in": n.only_in,
                    "problems": n.problems,
                }
                for n in self.nodes
            ],
            "rules": [
                {
                    "rule": r.rule,
                    "fired_a": r.fired_a,
                    "fired_b": r.fired_b,
                    "failed_a": r.failed_a,
                    "failed_b": r.failed_b,
                }
                for r in self.rules
            ],
        }


# ---------------------------------------------------------------------------
# Building
# ---------------------------------------------------------------------------


def problem_rollup(spans: Sequence[Span]) -> Dict[str, Dict]:
    """Group root spans by their ``problem`` attr: wall + solved per problem.

    Root spans without a ``problem`` attr (daemon bookkeeping, merge roots)
    are skipped — the problem table is informational; the exact-partition
    invariant lives on the node table.
    """
    by_id = {span.span_id: span for span in spans}
    rollup: Dict[str, Dict] = {}
    for span in spans:
        if span.parent_id is not None and span.parent_id in by_id:
            continue  # not a root
        problem = span.attrs.get("problem")
        if not isinstance(problem, str) or not problem:
            continue
        entry = rollup.setdefault(
            problem, {"wall": 0.0, "solved": False, "runs": 0}
        )
        entry["wall"] += span.wall
        entry["runs"] += 1
        if span.attrs.get("solved"):
            entry["solved"] = True
    return rollup


def split_by_problem(
    spans: Sequence[Span], events: Sequence[ObsEvent]
) -> Dict[str, Tuple[List[Span], List[ObsEvent]]]:
    """Partition a multi-problem stream into per-problem sub-streams.

    Each span/event is assigned to the ``problem`` attr of its nearest
    annotated ancestor (root ``synth`` spans carry it).  Spans outside any
    problem (daemon scaffolding) are dropped.
    """
    by_id = {span.span_id: span for span in spans}
    prob_of: Dict[int, Optional[str]] = {}
    groups: Dict[str, Tuple[List[Span], List[ObsEvent]]] = {}

    def group(problem: str) -> Tuple[List[Span], List[ObsEvent]]:
        if problem not in groups:
            groups[problem] = ([], [])
        return groups[problem]

    for span in spans:
        problem = ancestor_attr(span.span_id, by_id, "problem")
        prob_of[span.span_id] = problem
        if problem:
            group(problem)[0].append(span)
    for event in events:
        problem = prob_of.get(event.span_id)
        if problem:
            group(problem)[1].append(event)
    return groups


def _node_strategy(report: NodeReport) -> Optional[str]:
    return report.last_strategy or report.strategy


def _node_status(report: NodeReport) -> str:
    return report.solved_how or "unsolved"


def build_diff(
    spans_a: Sequence[Span],
    events_a: Sequence[ObsEvent],
    spans_b: Sequence[Span],
    events_b: Sequence[ObsEvent],
    label_a: str = "A",
    label_b: str = "B",
    truncated_a: bool = False,
    truncated_b: bool = False,
) -> DiffReport:
    """Align two runs' streams by node id and compute the attribution."""
    report_a = build_explain(spans_a, events_a, truncated=truncated_a)
    report_b = build_explain(spans_b, events_b, truncated=truncated_b)
    diff = DiffReport(label_a, label_b, report_a, report_b)

    # -- Nodes: union of the two runs's stable ids, A-order first ------------
    node_ids = list(report_a.nodes)
    node_ids.extend(n for n in report_b.nodes if n not in report_a.nodes)
    for node_id in node_ids:
        a = report_a.nodes.get(node_id)
        b = report_b.nodes.get(node_id)
        delta = NodeDelta(node_id)
        if a is not None:
            delta.present_a = True
            delta.fun = a.fun
            delta.self_a = a.self_wall
            delta.smt_rounds_a = a.smt_rounds
            delta.cegis_iters_a = a.cegis_iters
            delta.status_a = _node_status(a)
            delta.strategy_a = _node_strategy(a)
            delta.heights_a = list(a.heights)
            delta.problems = list(a.problems)
        if b is not None:
            delta.present_b = True
            if delta.fun == "?":
                delta.fun = b.fun
            delta.self_b = b.self_wall
            delta.smt_rounds_b = b.smt_rounds
            delta.cegis_iters_b = b.cegis_iters
            delta.status_b = _node_status(b)
            delta.strategy_b = _node_strategy(b)
            delta.heights_b = list(b.heights)
            for problem in b.problems:
                if problem not in delta.problems:
                    delta.problems.append(problem)
        diff.nodes.append(delta)
    diff.nodes.sort(key=lambda n: (-abs(n.delta), n.node_id))

    # -- Problems: union of the root-span rollups ----------------------------
    rollup_a = problem_rollup(spans_a)
    rollup_b = problem_rollup(spans_b)
    names = list(rollup_a)
    names.extend(n for n in rollup_b if n not in rollup_a)
    for name in names:
        a = rollup_a.get(name)
        b = rollup_b.get(name)
        problem = ProblemDelta(name)
        if a is not None:
            problem.present_a = True
            problem.wall_a = a["wall"]
            problem.solved_a = a["solved"]
        if b is not None:
            problem.present_b = True
            problem.wall_b = b["wall"]
            problem.solved_b = b["solved"]
        diff.problems.append(problem)
    diff.problems.sort(key=lambda p: (-abs(p.delta), p.name))

    # -- Rules: union of the two firing tables -------------------------------
    rules_a = {row.rule: row for row in report_a.rules}
    rules_b = {row.rule: row for row in report_b.rules}
    rule_names = list(rules_a)
    rule_names.extend(r for r in rules_b if r not in rules_a)
    for rule in rule_names:
        a = rules_a.get(rule)
        b = rules_b.get(rule)
        diff.rules.append(
            RuleDelta(
                rule,
                fired_a=a.fired if a else 0,
                fired_b=b.fired if b else 0,
                failed_a=a.failed if a else 0,
                failed_b=b.failed if b else 0,
            )
        )
    diff.rules.sort(
        key=lambda r: (
            -(abs(r.fired_delta) + abs(r.failed_delta)), r.rule
        )
    )
    return diff


def diff_from_files(path_a: str, path_b: str) -> DiffReport:
    """Build a diff from two ``--spans-out`` JSONL dumps."""
    from repro.obs.export import read_spans_jsonl

    spans_a, events_a, header_a = read_spans_jsonl(path_a)
    spans_b, events_b, header_b = read_spans_jsonl(path_b)
    return build_diff(
        spans_a,
        events_a,
        spans_b,
        events_b,
        label_a=path_a,
        label_b=path_b,
        truncated_a=bool(header_a.get("truncated")),
        truncated_b=bool(header_b.get("truncated")),
    )


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------


def _secs(value: float) -> str:
    return f"{value:.3f}s"


def _delta_secs(value: float) -> str:
    return f"{value:+.3f}s"


def render_diff(diff: DiffReport, top: int = 10) -> str:
    """The full ``dryadsynth diff`` text report (top-k culprits first)."""
    lines: List[str] = []
    if diff.truncated:
        lines.append(
            "WARNING: at least one span stream was truncated by the "
            "recorder cap; attribution below is computed from partial "
            "streams."
        )
    a, b = diff.report_a, diff.report_b
    lines.append(
        f"run diff: A={diff.label_a} ({len(a.nodes)} node(s), wall "
        f"{_secs(a.total_wall)}) vs B={diff.label_b} ({len(b.nodes)} "
        f"node(s), wall {_secs(b.total_wall)})"
    )
    lines.append(
        f"wall delta {_delta_secs(diff.total_delta)}: "
        f"{_delta_secs(diff.attributed_delta() - diff.run_self_delta)} in "
        f"{len(diff.nodes)} aligned node(s), "
        f"{_delta_secs(diff.run_self_delta)} in (run) "
        "[parsing, queues, bookkeeping]"
    )
    if diff.solved_lost or diff.solved_gained:
        parts = []
        if diff.solved_lost:
            parts.append(f"lost {', '.join(sorted(diff.solved_lost))}")
        if diff.solved_gained:
            parts.append(f"gained {', '.join(sorted(diff.solved_gained))}")
        lines.append("solved-set: " + "; ".join(parts))

    movers = [p for p in diff.problems if p.delta or not (
        p.present_a and p.present_b)]
    if movers:
        lines.append("")
        lines.append(f"top problem movers (of {len(diff.problems)}):")
        lines.append(
            f"  {'problem':<24} {'wall A':>9} {'wall B':>9} {'delta':>9}  "
            "status"
        )
        for problem in movers[:top]:
            lines.append(
                f"  {problem.name:<24} {_secs(problem.wall_a):>9} "
                f"{_secs(problem.wall_b):>9} {_delta_secs(problem.delta):>9}"
                f"  {problem.status_change}"
            )

    if diff.nodes:
        lines.append("")
        lines.append(f"top node movers (of {len(diff.nodes)} aligned):")
        lines.append(
            f"  {'node':<14} {'fun':<12} {'self A':>9} {'self B':>9} "
            f"{'delta':>9} {'smt A->B':>11}  notes"
        )
        for node in diff.nodes[:top]:
            notes = []
            if node.only_in:
                notes.append(f"only in {node.only_in}")
            if node.drifted:
                notes.append(
                    f"strategy {node.strategy_a or '-'}"
                    f"->{node.strategy_b or '-'}"
                )
            if node.status_a != node.status_b and not node.only_in:
                notes.append(f"{node.status_a}->{node.status_b}")
            if node.problems:
                notes.append("in " + ",".join(node.problems[:2]))
            lines.append(
                f"  {node.node_id:<14} {node.fun:<12} "
                f"{_secs(node.self_a):>9} {_secs(node.self_b):>9} "
                f"{_delta_secs(node.delta):>9} "
                f"{node.smt_rounds_a:>5}->{node.smt_rounds_b:<5} "
                f"{'; '.join(notes)}"
            )

    drifted = diff.strategy_drift
    if drifted:
        lines.append("")
        lines.append(
            f"strategy drift: {len(drifted)} node(s) changed division "
            "strategy between runs"
        )

    changed_rules = [
        r for r in diff.rules if r.fired_delta or r.failed_delta
    ]
    if changed_rules:
        lines.append("")
        lines.append("rule-firing drift:")
        lines.append(
            f"  {'rule':<16} {'fired A->B':>12} {'failed A->B':>13}"
        )
        for rule in changed_rules[:top]:
            lines.append(
                f"  {rule.rule:<16} "
                f"{rule.fired_a:>5}->{rule.fired_b:<5} "
                f"{rule.failed_a:>6}->{rule.failed_b:<5}"
            )

    lines.append("")
    lines.append(
        f"attribution check: node + (run) deltas sum to "
        f"{_delta_secs(diff.attributed_delta())} of "
        f"{_delta_secs(diff.total_delta)} total"
    )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Per-problem drill-down (bench-compare --explain's node/phase attribution)
# ---------------------------------------------------------------------------


def problem_breakdown(
    spans: Sequence[Span],
    events: Sequence[ObsEvent],
    problems: Sequence[str],
    top: int = 3,
) -> str:
    """Attribute the named problems' time to phases and nodes.

    Used by ``bench-compare --explain`` when only the *current* run's span
    dump is available: the culprit problems come from the history deltas,
    and this drill-down says where inside each culprit the time sits (top
    phases by self wall, top subproblem nodes, frontier state for unsolved
    nodes).
    """
    from repro.obs.profile import build_profile

    groups = split_by_problem(spans, events)
    lines: List[str] = []
    for name in problems:
        if name not in groups:
            lines.append(f"  {name}: no spans in the dump")
            continue
        problem_spans, problem_events = groups[name]
        profile = build_profile(problem_spans)
        phases = ", ".join(
            f"{row.name} {row.self_wall:.3f}s"
            for row in profile.phases[:top]
        )
        lines.append(f"  {name}: wall {profile.total_wall:.3f}s ({phases})")
        report = build_explain(problem_spans, problem_events)
        hot = sorted(
            report.nodes.values(), key=lambda n: -n.self_wall
        )[:top]
        for node in hot:
            detail = [
                f"self {node.self_wall:.3f}s",
                _node_status(node),
            ]
            if node.smt_rounds:
                detail.append(f"smt {node.smt_rounds}r")
            strategy = _node_strategy(node)
            if strategy:
                detail.append(f"strategy {strategy}")
            if node.last_rule:
                detail.append(f"last rule {node.last_rule}")
            if node.last_height is not None:
                detail.append(f"height {node.last_height}")
            lines.append(
                f"    node {node.node_id} {node.fun}: " + ", ".join(detail)
            )
    return "\n".join(lines)
