"""Crash flight recorder: a journaled ring buffer of recent telemetry.

A worker that is SIGKILLed — by the pool enforcing a hard deadline, by the
kernel's OOM killer — loses its in-memory :class:`~repro.obs.spans.SpanRecorder`
and everything it would have shipped back in ``JobResult.telemetry``.  The
:class:`FlightRecorder` exists for exactly that moment: it mirrors the most
recent spans/events/notes into a bounded in-memory ring *and* an on-disk
journal, written one record per line and flushed per record, so the parent
can recover a post-mortem from the file the dead worker left behind.

Crash-resistance contract:

- every record is appended as one line and flushed to the OS immediately —
  a SIGKILL can tear at most the final line (the tolerant readers drop it);
- the journal is bounded: once appends exceed ``2 × capacity`` the file is
  *rotated atomically* (ring contents written to a temp file, fsynced,
  ``os.replace``d over the journal), so a runaway worker cannot fill the
  disk and a reader never observes a half-rotated file.

The parent recovers with :func:`read_postmortem` (attached to
``JobResult.postmortem`` by the pool) and operators render journals with
``dryadsynth postmortem <journal>``.
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from typing import Dict, List, Optional

FLIGHT_FORMAT = "repro-flight/1"

#: Ring capacity: how many recent records survive a crash.
DEFAULT_CAPACITY = 256


class FlightRecorder:
    """Journal the most recent telemetry records crash-resistantly.

    Implements the :class:`~repro.obs.spans.SpanRecorder` sink protocol
    (:meth:`on_span` / :meth:`on_event`), so attaching one to a recorder
    mirrors the span stream into the journal as spans complete.  Plain
    :meth:`note` records mark lifecycle points (job start/end) that exist
    even when no span ever completes — a worker killed inside its first
    span still leaves a readable journal.
    """

    def __init__(
        self,
        path: str,
        capacity: int = DEFAULT_CAPACITY,
        meta: Optional[Dict] = None,
    ) -> None:
        self.path = path
        self.capacity = max(1, capacity)
        self._ring: deque = deque(maxlen=self.capacity)
        self._appended = 0
        self._closed = False
        self._header = {
            "format": FLIGHT_FORMAT,
            "pid": os.getpid(),
            "capacity": self.capacity,
            "created": round(time.time(), 3),
        }
        if meta:
            self._header["meta"] = dict(meta)
        self._handle = open(path, "w")
        self._append(self._header, to_ring=False)

    # -- Record kinds ----------------------------------------------------------

    def note(self, name: str, **attrs) -> None:
        """A lifecycle marker (``job.start``, ``job.end``, ...)."""
        self._record({"note": {"name": name, "ts": round(time.time(), 3),
                               "attrs": attrs}})

    def on_span(self, span) -> None:
        self._record({"span": span.to_json()})

    def on_event(self, event) -> None:
        self._record({"event": event.to_json()})

    # -- Journal mechanics -----------------------------------------------------

    def _record(self, record: Dict) -> None:
        if self._closed:
            return
        self._append(record)
        if self._appended > 2 * self.capacity:
            self._rotate()

    def _append(self, record: Dict, to_ring: bool = True) -> None:
        if to_ring:
            self._ring.append(record)
            self._appended += 1
        try:
            self._handle.write(json.dumps(record) + "\n")
            self._handle.flush()
        except (OSError, ValueError):
            # A failing journal must never take the job down with it.
            self._closed = True

    def _rotate(self) -> None:
        """Rewrite the journal as header + ring, atomically."""
        tmp = self.path + ".rotate"
        try:
            with open(tmp, "w") as handle:
                handle.write(json.dumps(self._header) + "\n")
                for record in self._ring:
                    handle.write(json.dumps(record) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            self._handle.close()
            os.replace(tmp, self.path)
            self._handle = open(self.path, "a")
            self._appended = len(self._ring)
        except OSError:
            self._closed = True
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def close(self) -> None:
        if not self._closed:
            try:
                self._handle.close()
            except OSError:
                pass
        self._closed = True


# ---------------------------------------------------------------------------
# Recovery
# ---------------------------------------------------------------------------


def append_kill_record(path: str, **info) -> None:
    """Append a parent-authored ``{"kill": ...}`` record to a dead journal.

    The worker is dead by the time its parent knows *why* (deadline overrun,
    RSS-budget kill, a signal of the worker's own making), so the cause is
    appended by the parent instead.  The record is newline-*prefixed*: the
    worker may have died mid-write, and gluing onto its torn half-line would
    corrupt both records.  Best-effort — a failing append never takes the
    scheduler down.
    """
    record = {"kill": {**info, "ts": round(time.time(), 3)}}
    try:
        with open(path, "a") as handle:
            handle.write("\n" + json.dumps(record) + "\n")
            handle.flush()
    except OSError:
        pass


def read_flight_journal(path: str) -> Dict:
    """Parse a journal tolerantly; returns header + record lists.

    A truncated final line (the writer died mid-write) is expected and
    dropped — including one torn mid-multibyte-character, which is why the
    read is binary; so are blank lines.  Corrupt *interior* lines are
    counted in ``"corrupt"`` rather than raised — a post-mortem reader
    salvages what it can, because the alternative is losing the whole
    journal to one torn byte.
    """
    header: Dict = {}
    notes: List[Dict] = []
    spans: List[Dict] = []
    events: List[Dict] = []
    kill: Optional[Dict] = None
    corrupt = 0
    truncated = False
    with open(path, "rb") as handle:
        lines = handle.read().split(b"\n")
    last = max((i for i, line in enumerate(lines) if line.strip()), default=-1)
    for index, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except (json.JSONDecodeError, UnicodeDecodeError):
            if index == last:
                truncated = True
            else:
                corrupt += 1
            continue
        if "note" in record:
            notes.append(record["note"])
        elif "span" in record:
            spans.append(record["span"])
        elif "event" in record:
            events.append(record["event"])
        elif "kill" in record:
            kill = record["kill"]
        elif record.get("format") == FLIGHT_FORMAT:
            header = record
    return {
        "header": header,
        "notes": notes,
        "spans": spans,
        "events": events,
        "kill": kill,
        "corrupt": corrupt,
        "truncated": truncated,
    }


def _forensics_frontier(spans: List[Dict], events: List[Dict]) -> Optional[Dict]:
    """The subproblem-graph node the worker touched last, plus context.

    Reconstructed purely from journaled records: the latest span or event
    carrying a ``node`` attr names the frontier node; the latest forensics
    ``divide.*`` / ``deduct.rule`` / ``cegis.cex`` records say what the
    search was attempting there.  Returns ``None`` when the journal holds no
    node-attributed record (forensics was off, or the ring rotated past it).
    """
    records = [
        (s.get("start", 0.0) + s.get("wall", 0.0), "span", s) for s in spans
    ]
    records += [(e.get("elapsed", 0.0), "event", e) for e in events]
    records.sort(key=lambda r: r[0])
    frontier: Dict = {}
    node_meta: Dict[str, Dict] = {}
    for _ts, kind, record in records:
        attrs = record.get("attrs") or {}
        name = record.get("name", "?")
        if kind == "event" and record.get("domain") == "forensics":
            node = attrs.get("node")
            if name == "graph.node" and node:
                node_meta[node] = {
                    "fun": attrs.get("fun"),
                    "depth": attrs.get("depth"),
                }
            elif name.startswith("divide.") and attrs.get("strategy"):
                frontier["last_strategy"] = attrs["strategy"]
            elif name == "deduct.rule" and attrs.get("rule"):
                frontier["last_rule"] = attrs["rule"]
            elif name == "cegis.cex" and attrs.get("cex"):
                frontier["last_cex"] = attrs["cex"]
            if node:
                frontier["node"] = node
                frontier["via"] = name
        elif attrs.get("node"):
            frontier["node"] = attrs["node"]
            frontier["via"] = name
    if "node" not in frontier:
        return None
    meta = node_meta.get(frontier["node"])
    if meta:
        frontier.update({k: v for k, v in meta.items() if v is not None})
    return frontier


def read_postmortem(path: str, tail: int = 25) -> Optional[Dict]:
    """Build the ``JobResult.postmortem`` payload from a journal file.

    Returns ``None`` when the journal is missing or holds no records at all
    (not even a header) — there is nothing to report.  The payload is
    bounded: only the last ``tail`` spans/events ride along, plus every
    lifecycle note and a summary of what the worker was doing last.
    """
    try:
        journal = read_flight_journal(path)
    except OSError:
        return None
    if not (journal["header"] or journal["notes"] or journal["spans"]
            or journal["events"]):
        return None
    spans = journal["spans"]
    events = journal["events"]
    last_record: Optional[Dict] = None
    if spans or events:
        # The journal is append-ordered; the later of the two stream tails
        # is what the worker touched last.
        last_span = spans[-1] if spans else None
        last_event = events[-1] if events else None
        if last_span and last_event:
            span_end = last_span.get("start", 0.0) + last_span.get("wall", 0.0)
            last_record = (
                {"span": last_span}
                if span_end >= last_event.get("elapsed", 0.0)
                else {"event": last_event}
            )
        else:
            last_record = (
                {"span": last_span} if last_span else {"event": last_event}
            )
    elif journal["notes"]:
        last_record = {"note": journal["notes"][-1]}
    return {
        "journal": path,
        "pid": journal["header"].get("pid"),
        "meta": journal["header"].get("meta", {}),
        "kill": journal.get("kill"),
        "notes": journal["notes"],
        "num_spans": len(spans),
        "num_events": len(events),
        "spans": spans[-tail:],
        "events": events[-tail:],
        "truncated": journal["truncated"],
        "corrupt": journal["corrupt"],
        "last": last_record,
        "frontier": _forensics_frontier(spans, events),
    }


def render_postmortem(postmortem: Dict) -> str:
    """Human-readable report for ``dryadsynth postmortem``."""
    lines: List[str] = []
    meta = postmortem.get("meta") or {}
    title = meta.get("job_id") or meta.get("name") or postmortem.get("journal")
    lines.append(f"post-mortem: {title}")
    if meta:
        rendered = " ".join(f"{k}={v}" for k, v in sorted(meta.items()))
        lines.append(f"  job: {rendered}")
    if postmortem.get("pid"):
        lines.append(f"  worker pid: {postmortem['pid']}")
    kill = postmortem.get("kill")
    if kill:
        cause = kill.get("cause", "crash")
        if cause == "deadline":
            headline = "hard deadline exceeded; parent terminated worker"
        elif cause == "oom_budget":
            headline = "RSS budget exceeded; parent terminated worker"
        else:
            headline = "worker died on its own"
        detail = []
        if kill.get("signal"):
            detail.append(f"signal={kill['signal']}")
        if kill.get("exitcode") is not None:
            detail.append(f"exitcode={kill['exitcode']}")
        if kill.get("last_rss_bytes"):
            rss_mb = kill["last_rss_bytes"] / (1024 * 1024)
            detail.append(f"last_rss={rss_mb:.1f}MB")
        lines.append(
            f"  killed ({cause}): {headline}"
            + (f" [{' '.join(detail)}]" if detail else "")
        )
        if kill.get("reason"):
            lines.append(f"    reason: {kill['reason']}")
    flags = []
    if postmortem.get("truncated"):
        flags.append("final line torn (writer died mid-write)")
    if postmortem.get("corrupt"):
        flags.append(f"{postmortem['corrupt']} corrupt interior line(s)")
    if flags:
        lines.append(f"  journal: {'; '.join(flags)}")
    lines.append(
        f"  recorded: {postmortem.get('num_spans', 0)} span(s), "
        f"{postmortem.get('num_events', 0)} event(s), "
        f"{len(postmortem.get('notes', []))} note(s)"
    )
    notes = postmortem.get("notes") or []
    if notes:
        lines.append("  lifecycle:")
        for note in notes:
            attrs = note.get("attrs") or {}
            rendered = " ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
            lines.append(f"    {note.get('name', '?')} {rendered}".rstrip())
    spans = postmortem.get("spans") or []
    if spans:
        lines.append(f"  last {len(spans)} span(s):")
        for span in spans:
            attrs = span.get("attrs") or {}
            rendered = " ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
            lines.append(
                f"    +{span.get('start', 0.0):8.3f}s "
                f"{span.get('name', '?'):<12s} "
                f"wall={span.get('wall', 0.0):.4f}s {rendered}".rstrip()
            )
    events = postmortem.get("events") or []
    if events:
        lines.append(f"  last {len(events)} event(s):")
        for event in events:
            attrs = event.get("attrs") or {}
            rendered = " ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
            lines.append(
                f"    +{event.get('elapsed', 0.0):8.3f}s "
                f"{event.get('name', '?'):<12s} {rendered}".rstrip()
            )
    last = postmortem.get("last")
    if last:
        kind, payload = next(iter(last.items()))
        name = payload.get("name", "?")
        lines.append(f"  last activity: {kind} {name!r}")
    frontier = postmortem.get("frontier")
    if frontier:
        detail = [f"node {frontier['node']}"]
        if frontier.get("fun"):
            detail.append(f"fun={frontier['fun']}")
        if frontier.get("depth") is not None:
            detail.append(f"depth={frontier['depth']}")
        if frontier.get("via"):
            detail.append(f"via={frontier['via']}")
        if frontier.get("last_strategy"):
            detail.append(f"last_strategy={frontier['last_strategy']}")
        if frontier.get("last_rule"):
            detail.append(f"last_rule={frontier['last_rule']}")
        lines.append(f"  frontier: {' '.join(detail)}")
        if frontier.get("last_cex"):
            lines.append(f"    last counterexample: {frontier['last_cex']}")
    return "\n".join(lines)
