"""The subproblem-graph explainer (``dryadsynth explain``).

Collates one run's span stream and forensics events into a *search
explanation*: the subproblem tree annotated with per-node wall/SMT
attribution, a Figure 7/8 rule-firing table, and — for unsolved runs — the
failure frontier (deepest unsolved nodes, last division strategy, last
deduction rule, last counterexample).

Attribution follows the same discipline as :mod:`repro.obs.profile`: each
span's *self* time (wall minus child walls) is charged to the nearest
enclosing span carrying a ``node`` attribute; time outside any node-attributed
span lands in a ``(run)`` bucket.  The buckets therefore partition the traced
wall clock exactly — per-node percentages sum to 100, so the tree is an
attribution, not a collection of timers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs import forensics
from repro.obs.spans import ObsEvent, Span

#: Bucket for self time outside any node-attributed span (parsing, queue
#: bookkeeping, result assembly).
RUN_BUCKET = "(run)"


@dataclass
class NodeReport:
    """Everything the explainer knows about one subproblem-graph node."""

    node_id: str
    fun: str = "?"
    parent: Optional[str] = None
    strategy: Optional[str] = None  # strategy of the creating edge
    depth: int = 0
    children: List[str] = field(default_factory=list)
    extra_parents: int = 0  # graph.share count (DAG sharing)
    solved_how: Optional[str] = None  # direct | propagated | None (unsolved)
    parked: int = 0
    last_height: Optional[int] = None
    self_wall: float = 0.0
    smt_rounds: int = 0
    smt_calls: int = 0
    cegis_iters: int = 0
    last_strategy: Optional[str] = None  # last divide.choice/reject on node
    last_rule: Optional[str] = None  # last deduct.rule resolved to node
    last_cex: Optional[str] = None
    rejects: Dict[str, int] = field(default_factory=dict)
    #: Problems (root ``synth`` spans) this node was worked under — node IDs
    #: are problem-independent, so a shared subproblem can list several.
    problems: List[str] = field(default_factory=list)
    #: Distinct enumeration heights seen (cegis.iter / graph.park events).
    heights: List[int] = field(default_factory=list)
    #: Per-node deduction-rule tallies: rule -> [fired, failed] (the global
    #: run-wide table is :class:`RuleRow`; this is the per-node analytics cut).
    rule_outcomes: Dict[str, List[int]] = field(default_factory=dict)

    @property
    def solved(self) -> bool:
        return self.solved_how is not None

    def note_problem(self, problem: Optional[str]) -> None:
        if problem and problem not in self.problems:
            self.problems.append(problem)

    def note_height(self, height) -> None:
        if height is None:
            return
        height = int(height)
        if height not in self.heights:
            self.heights.append(height)
            self.heights.sort()


@dataclass
class RuleRow:
    """Aggregated outcomes of one deduction rule across the run."""

    rule: str
    fired: int = 0
    failed: int = 0
    attempts: int = 0
    merges: int = 0  # sum of the ``count`` attr (merge-style rules)
    delta: int = 0  # summed spec-size delta of firings


@dataclass
class RequestRow:
    """One daemon request (``serve.request`` span) found in the stream."""

    trace_id: Optional[str]
    serve_id: Optional[str]
    client: Optional[str]
    problem: Optional[str]
    status: Optional[str]
    latency: float
    queue_wait: float = 0.0
    from_cache: bool = False


@dataclass
class ExplainReport:
    """The computed explanation."""

    nodes: Dict[str, NodeReport]
    roots: List[str]
    total_wall: float  # sum of root span walls
    run_self_wall: float  # the (run) bucket
    rules: List[RuleRow]
    solved: bool
    frontier: List[NodeReport]
    truncated: bool = False
    requests: List[RequestRow] = field(default_factory=list)

    def attributed_wall(self) -> float:
        return self.run_self_wall + sum(n.self_wall for n in self.nodes.values())


def ancestor_attr(
    span_id: Optional[int], by_id: Dict[int, Span], key: str
) -> Optional[str]:
    """The ``key`` attr of the nearest enclosing span, walking ancestors."""
    seen = set()
    current = span_id
    while current is not None and current not in seen:
        seen.add(current)
        span = by_id.get(current)
        if span is None:
            return None
        value = span.attrs.get(key)
        if isinstance(value, str) and value:
            return value
        current = span.parent_id
    return None


def _node_of_span(span_id: Optional[int], by_id: Dict[int, Span]) -> Optional[str]:
    return ancestor_attr(span_id, by_id, "node")


def build_explain(
    spans: Sequence[Span],
    events: Sequence[ObsEvent],
    truncated: bool = False,
) -> ExplainReport:
    """Collate spans + forensics events into an :class:`ExplainReport`."""
    nodes: Dict[str, NodeReport] = {}

    def node(node_id: str) -> NodeReport:
        report = nodes.get(node_id)
        if report is None:
            report = nodes[node_id] = NodeReport(node_id)
        return report

    order: List[str] = []
    for event in forensics.iter_events(events):
        attrs = event.attrs
        node_id = attrs.get("node")
        if event.name == forensics.GRAPH_NODE and isinstance(node_id, str):
            report = node(node_id)
            report.fun = str(attrs.get("fun", report.fun))
            report.depth = int(attrs.get("depth", 0) or 0)
            parent = attrs.get("parent")
            if isinstance(parent, str) and parent:
                report.parent = parent
                node(parent)  # ensure existence even across truncation
            strategy = attrs.get("strategy")
            if isinstance(strategy, str):
                report.strategy = strategy
            if node_id not in order:
                order.append(node_id)
        elif event.name == forensics.GRAPH_SHARE and isinstance(node_id, str):
            node(node_id).extra_parents += 1
        elif event.name == forensics.GRAPH_SOLVE and isinstance(node_id, str):
            node(node_id).solved_how = str(attrs.get("how", "direct"))
        elif event.name == forensics.GRAPH_PARK and isinstance(node_id, str):
            report = node(node_id)
            report.parked += 1
            if attrs.get("height") is not None:
                report.last_height = int(attrs["height"])
                report.note_height(attrs["height"])

    # Parent/child links (preserving event order for stable rendering).
    for node_id in order:
        report = nodes[node_id]
        if report.parent is not None and report.parent in nodes:
            nodes[report.parent].children.append(node_id)
    roots = [n for n in order if nodes[n].parent is None]

    # -- Span attribution: self time to nearest node-attributed ancestor -----
    by_id: Dict[int, Span] = {span.span_id: span for span in spans}
    child_wall: Dict[int, float] = {}
    for span in spans:
        if span.parent_id is not None and span.parent_id in by_id:
            child_wall[span.parent_id] = (
                child_wall.get(span.parent_id, 0.0) + span.wall
            )
    total_wall = 0.0
    run_self = 0.0
    for span in spans:
        if span.parent_id is None or span.parent_id not in by_id:
            total_wall += span.wall
        self_wall = max(0.0, span.wall - child_wall.get(span.span_id, 0.0))
        owner = _node_of_span(span.span_id, by_id)
        if owner is None:
            run_self += self_wall
        else:
            report = node(owner)
            report.self_wall += self_wall
            report.note_problem(ancestor_attr(span.span_id, by_id, "problem"))
        if span.name == "smt.solve":
            target = node(owner) if owner is not None else None
            if target is not None:
                target.smt_calls += 1
                rounds = span.attrs.get("rounds")
                if rounds is not None:
                    target.smt_rounds += int(rounds)

    # -- Event-to-node resolution for rules / choices / cexes ----------------
    rules: Dict[str, RuleRow] = {}
    for event in forensics.iter_events(events):
        attrs = event.attrs
        owner = attrs.get("node")
        if not isinstance(owner, str) or not owner:
            owner = _node_of_span(event.span_id, by_id)
        report = node(owner) if owner else None
        if event.name == forensics.DEDUCT_RULE:
            rule_name = str(attrs.get("rule", "?"))
            row = rules.get(rule_name)
            if row is None:
                row = rules[rule_name] = RuleRow(rule_name)
            outcome = attrs.get("outcome")
            if outcome == "fired":
                row.fired += 1
            elif outcome == "failed":
                row.failed += 1
            else:
                row.attempts += 1
            if attrs.get("count") is not None:
                row.merges += int(attrs["count"])
            if outcome == "fired" and attrs.get("delta") is not None:
                row.delta += int(attrs["delta"])
            if report is not None:
                report.last_rule = rule_name
                tally = report.rule_outcomes.setdefault(rule_name, [0, 0])
                if outcome == "fired":
                    tally[0] += 1
                elif outcome == "failed":
                    tally[1] += 1
        elif event.name in (forensics.DIVIDE_CHOICE, forensics.DIVIDE_REJECT):
            if report is not None:
                strategy = attrs.get("strategy")
                if isinstance(strategy, str):
                    report.last_strategy = strategy
                if event.name == forensics.DIVIDE_REJECT:
                    reason = str(attrs.get("reason", "?"))
                    report.rejects[reason] = report.rejects.get(reason, 0) + 1
        elif event.name == forensics.CEGIS_ITER:
            if report is not None:
                report.cegis_iters += 1
                if attrs.get("height") is not None:
                    report.last_height = int(attrs["height"])
                    report.note_height(attrs["height"])
        elif event.name == forensics.CEGIS_CEX:
            if report is not None and attrs.get("cex") is not None:
                report.last_cex = str(attrs["cex"])

    # -- Daemon requests: serve.request spans minted at HTTP admission ------
    requests: List[RequestRow] = []
    for span in spans:
        if span.name != "serve.request":
            continue
        queue_wait = 0.0
        for child in spans:
            if child.parent_id == span.span_id and child.name == "serve.queue_wait":
                queue_wait += child.wall
        requests.append(
            RequestRow(
                trace_id=span.attrs.get("trace_id"),
                serve_id=span.attrs.get("serve_id"),
                client=span.attrs.get("client"),
                problem=span.attrs.get("problem"),
                status=span.attrs.get("job_status"),
                latency=span.wall,
                queue_wait=queue_wait,
                from_cache=bool(span.attrs.get("from_cache")),
            )
        )
    requests.sort(key=lambda row: -row.latency)

    solved = bool(roots) and all(nodes[r].solved for r in roots)
    unsolved = [nodes[n] for n in order if not nodes[n].solved]
    unsolved.sort(key=lambda n: (-n.depth, -n.self_wall))
    frontier = [] if solved else unsolved

    rule_rows = sorted(
        rules.values(), key=lambda r: (-(r.fired + r.failed + r.attempts), r.rule)
    )
    return ExplainReport(
        nodes=nodes,
        roots=roots,
        total_wall=total_wall,
        run_self_wall=run_self,
        rules=rule_rows,
        solved=solved,
        frontier=frontier,
        truncated=truncated,
        requests=requests,
    )


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------


def _node_line(report: NodeReport, total: float) -> str:
    state = f"solved:{report.solved_how}" if report.solved else "UNSOLVED"
    pct = 100.0 * report.self_wall / total if total > 0 else 0.0
    parts = [
        f"{report.node_id}",
        f"{report.fun}",
        f"[{state}]",
        f"self {report.self_wall:.3f}s ({pct:.1f}%)",
    ]
    if report.smt_calls:
        parts.append(f"smt {report.smt_rounds}r/{report.smt_calls}q")
    if report.cegis_iters:
        parts.append(f"cegis {report.cegis_iters}it")
    if report.parked:
        parts.append(f"parked x{report.parked}")
    if report.extra_parents:
        parts.append(f"shared +{report.extra_parents}")
    return "  ".join(parts)


def _render_tree(
    report: ExplainReport, node_id: str, prefix: str, is_last: bool,
    lines: List[str], seen: set,
) -> None:
    node = report.nodes[node_id]
    connector = "`- " if is_last else "|- "
    label = f"[{node.strategy}] " if node.strategy else ""
    lines.append(prefix + connector + label + _node_line(node, report.total_wall))
    if node_id in seen:  # sharing cycle guard; the DAG is rendered as a tree
        return
    seen.add(node_id)
    child_prefix = prefix + ("   " if is_last else "|  ")
    for index, child in enumerate(node.children):
        _render_tree(
            report, child, child_prefix, index == len(node.children) - 1,
            lines, seen,
        )


def render_explain(report: ExplainReport) -> str:
    """The full ``dryadsynth explain`` text report."""
    lines: List[str] = []
    if report.truncated:
        lines.append(
            "WARNING: span stream was truncated by the recorder cap; "
            "attribution below is computed from a partial stream."
        )
    total = report.total_wall
    attributed = report.attributed_wall()
    pct = 100.0 * attributed / total if total > 0 else 100.0
    lines.append(
        f"subproblem tree: {len(report.nodes)} node(s), traced wall "
        f"{total:.3f}s, attributed {pct:.1f}%"
    )
    seen: set = set()
    for index, root in enumerate(report.roots):
        _render_tree(
            report, root, "", index == len(report.roots) - 1, lines, seen
        )
    run_pct = 100.0 * report.run_self_wall / total if total > 0 else 0.0
    lines.append(
        f"   {RUN_BUCKET}  self {report.run_self_wall:.3f}s ({run_pct:.1f}%)"
        "  [parsing, queues, bookkeeping]"
    )

    if report.requests:
        lines.append("")
        lines.append("daemon requests (slowest first):")
        lines.append(
            f"  {'trace_id':<32} {'client':<12} {'problem':<20} "
            f"{'status':<8} {'queue':>8} {'latency':>8}"
        )
        for row in report.requests:
            status = row.status or "?"
            if row.from_cache:
                status += "*"
            lines.append(
                f"  {row.trace_id or '-':<32} {row.client or '-':<12} "
                f"{row.problem or '-':<20} {status:<8} "
                f"{row.queue_wait:>7.3f}s {row.latency:>7.3f}s"
            )
        if any(row.from_cache for row in report.requests):
            lines.append("  (* = served from the result cache)")

    if report.rules:
        lines.append("")
        lines.append("deduction rules (Figures 7/8):")
        lines.append(
            f"  {'rule':<16} {'fired':>6} {'failed':>7} {'attempts':>9} "
            f"{'merges':>7} {'delta':>6}"
        )
        for row in report.rules:
            lines.append(
                f"  {row.rule:<16} {row.fired:>6} {row.failed:>7} "
                f"{row.attempts:>9} {row.merges:>7} {row.delta:>+6}"
            )

    if not report.solved:
        lines.append("")
        lines.append("failure frontier (deepest unsolved first):")
        if not report.frontier:
            lines.append("  (no unsolved nodes recorded)")
        for node in report.frontier:
            detail = [
                f"depth {node.depth}",
                f"self {node.self_wall:.3f}s",
            ]
            if node.last_strategy:
                detail.append(f"last strategy {node.last_strategy}")
            elif node.strategy:
                detail.append(f"via {node.strategy}")
            if node.last_rule:
                detail.append(f"last rule {node.last_rule}")
            if node.last_height is not None:
                detail.append(f"height {node.last_height}")
            if node.rejects:
                rejected = ", ".join(
                    f"{reason} x{count}"
                    for reason, count in sorted(node.rejects.items())
                )
                detail.append(f"rejected [{rejected}]")
            lines.append(f"  {node.node_id} {node.fun}: " + ", ".join(detail))
            if node.last_cex:
                lines.append(f"      last counterexample: {node.last_cex}")
    return "\n".join(lines)


def explain_text(
    spans: Sequence[Span],
    events: Sequence[ObsEvent],
    truncated: bool = False,
) -> str:
    """Convenience wrapper: build and render in one call."""
    return render_explain(build_explain(spans, events, truncated=truncated))
