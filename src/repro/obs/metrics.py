"""Named counters, gauges and histograms with mergeable snapshots.

The registry is the cross-process currency of the telemetry layer: every
worker keeps one, serializes a :meth:`MetricsRegistry.snapshot` into its
:class:`~repro.service.jobs.JobResult`, and the parent folds the snapshots
together with :meth:`MetricsRegistry.merge` so a batch reports fleet-wide
totals.  Metric names are dotted (``smt.rounds``, ``cache.hits``); the
Prometheus text dump rewrites dots to underscores and prefixes ``repro_``.

Merge semantics: counters add, gauges keep the maximum, histograms add
bucket-wise (bounds must match; mismatched histograms fall back to merging
only ``count`` and ``sum``).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

#: Default histogram bucket upper bounds (seconds-flavoured, exponential).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Help strings for the well-known metric names (dotted form).  Metrics not
#: listed here get a generated placeholder, so every family in the text dump
#: still carries a ``# HELP`` line (the exposition format expects one).
METRIC_HELP: Dict[str, str] = {
    "smt.checks": "SmtSolver.solve calls",
    "smt.rounds": "DPLL(T) rounds across all checks",
    "smt.lemmas": "theory lemmas learned",
    "smt.theory_conflicts": "theory-layer conflicts",
    "smt.simplex_pivots": "simplex pivot operations",
    "smt.solve_seconds": "per-query SMT latency",
    "smt.memo_hits": "semantic query-memo hits (decided result served from cache)",
    "smt.memo_misses": "semantic query-memo misses",
    "sat.conflicts": "CDCL conflicts",
    "sat.decisions": "CDCL decisions",
    "sat.learnts_deleted": "learned clauses deleted by DB reduction",
    "sat.learnts": "learned-clause DB high-water mark",
    "sat.vars": "SAT variable high-water mark",
    "cache.hits": "result-cache hits",
    "cache.misses": "result-cache misses",
    "cache.evictions": "result-cache evictions",
    "obs.spans_dropped": "telemetry spans/events dropped at the recorder cap",
    "obs.stack_samples": "wall-clock stack samples taken by the profiler",
    "process.peak_rss_bytes": "peak resident set size (getrusage high-water)",
    "process.user_cpu_seconds": "user-mode CPU time accumulated by jobs",
    "process.sys_cpu_seconds": "kernel-mode CPU time accumulated by jobs",
    "pool.jobs_completed": "worker-pool job completions",
    "pool.jobs_running": "jobs currently assigned to a worker",
    "pool.jobs_queued": "jobs admitted but not yet assigned",
    "pool.workers_alive": "live worker processes",
    "pool.queue_wait_seconds": "submission-to-assignment latency",
    "pool.postmortems_recovered": "flight-recorder post-mortems recovered",
    "pool.peak_rss_bytes": "largest worker RSS the scheduler has observed",
    "pool.children_peak_rss_bytes":
        "getrusage(RUSAGE_CHILDREN) high-water — cross-checks worker peaks",
    "pool.oom_budget_kills": "workers terminated for exceeding --max-rss-mb",
}


def register_metric_help(name: str, text: str) -> None:
    """Register (or override) the ``# HELP`` text for a dotted metric name."""
    METRIC_HELP[name] = text


class Counter:
    """A monotonically increasing tally."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value; merges take the maximum across processes."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def set_max(self, value: float) -> None:
        if value > self.value:
            self.value = value


class Histogram:
    """A fixed-bound bucket histogram (Prometheus-style, cumulative on dump)."""

    __slots__ = ("name", "bounds", "counts", "sum", "count")

    def __init__(self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS):
        self.name = name
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)  # last bucket is +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


class QuantileSketch:
    """A mergeable log-bucketed quantile sketch (HDR-histogram flavoured).

    Latency percentiles need *streaming* estimation under the same
    constraints as the rest of the registry: bounded memory no matter how
    many samples arrive, and a cross-process merge so worker/daemon/client
    sketches fold into fleet-wide quantiles.  Fixed-bound histograms can't
    answer "p99" with useful resolution across four decades of latency, and
    raw sample lists grow without bound — so this sketch buckets values on a
    geometric grid (4% growth per bucket → ~2% worst-case relative error,
    at most ~470 sparse buckets over 100µs..10000s) like an HDR histogram,
    and merges bucket-wise like a t-digest, keeping exact min/max/sum/count
    alongside.

    Quantile queries interpolate at the geometric midpoint of the selected
    bucket and clamp into the exact observed ``[min, max]``, so degenerate
    streams (all-equal samples, tiny counts) report exact values.
    """

    #: Values at or below this land in the underflow bucket (index 0).
    MIN_TRACKABLE = 1e-4
    #: Values above this are clamped into the final bucket.
    MAX_TRACKABLE = 1e4
    #: Per-bucket geometric growth factor (bounds the relative error).
    GROWTH = 1.04
    _LOG_GROWTH = math.log(GROWTH)

    __slots__ = ("name", "buckets", "count", "sum", "min", "max")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.buckets: Dict[int, int] = {}
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = 0.0

    def _index(self, value: float) -> int:
        if value <= self.MIN_TRACKABLE:
            return 0
        clamped = min(value, self.MAX_TRACKABLE)
        return 1 + int(math.log(clamped / self.MIN_TRACKABLE) / self._LOG_GROWTH)

    def _bucket_value(self, index: int) -> float:
        if index <= 0:
            return self.MIN_TRACKABLE
        # Geometric midpoint of [MIN·g^(i-1), MIN·g^i].
        return self.MIN_TRACKABLE * math.exp((index - 0.5) * self._LOG_GROWTH)

    def observe(self, value: float) -> None:
        value = max(0.0, float(value))
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        index = self._index(value)
        self.buckets[index] = self.buckets.get(index, 0) + 1

    def quantile(self, q: float) -> float:
        """The estimated ``q``-quantile (0..1) of everything observed."""
        if not self.count:
            return 0.0
        q = min(1.0, max(0.0, q))
        target = q * self.count
        cumulative = 0
        estimate = self.min
        for index in sorted(self.buckets):
            cumulative += self.buckets[index]
            if cumulative >= target:
                estimate = self._bucket_value(index)
                break
        return min(self.max, max(self.min, estimate))

    def percentiles(self) -> Dict[str, float]:
        """The dashboard staples, rounded for display."""
        return {
            key: round(self.quantile(q), 6)
            for key, q in (
                ("p50", 0.50), ("p90", 0.90), ("p95", 0.95), ("p99", 0.99),
            )
        }

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    # -- Cross-process merge ---------------------------------------------------

    def to_json(self) -> Dict:
        return {
            "buckets": {str(i): c for i, c in sorted(self.buckets.items())},
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }

    def merge(self, data: Optional[Dict]) -> None:
        """Fold a serialized sketch (``to_json`` output) into this one."""
        if not data:
            return
        for key, count in data.get("buckets", {}).items():
            index = int(key)
            self.buckets[index] = self.buckets.get(index, 0) + int(count)
        self.count += int(data.get("count", 0))
        self.sum += float(data.get("sum", 0.0))
        other_min = data.get("min")
        other_max = data.get("max")
        if other_min is not None and other_min < self.min:
            self.min = float(other_min)
        if other_max is not None and other_max > self.max:
            self.max = float(other_max)

    @staticmethod
    def from_json(data: Optional[Dict], name: str = "") -> "QuantileSketch":
        sketch = QuantileSketch(name)
        sketch.merge(data)
        return sketch


class MetricsRegistry:
    """A process-local namespace of metrics, snapshot-able and mergeable."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._sketches: Dict[str, QuantileSketch] = {}

    # -- Accessors (memoized; repeated lookups return the same instrument) ----

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(name, bounds)
        return metric

    def sketch(self, name: str) -> QuantileSketch:
        metric = self._sketches.get(name)
        if metric is None:
            metric = self._sketches[name] = QuantileSketch(name)
        return metric

    def __len__(self) -> int:
        return (
            len(self._counters) + len(self._gauges)
            + len(self._histograms) + len(self._sketches)
        )

    # -- Serialization ---------------------------------------------------------

    def snapshot(self) -> Dict:
        """A JSON-able snapshot (the worker-to-parent wire format)."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: {
                    "bounds": list(h.bounds),
                    "counts": list(h.counts),
                    "sum": h.sum,
                    "count": h.count,
                }
                for n, h in sorted(self._histograms.items())
            },
            "sketches": {
                n: s.to_json() for n, s in sorted(self._sketches.items())
            },
        }

    def merge(self, snapshot: Optional[Dict]) -> None:
        """Fold another registry's snapshot into this one."""
        if not snapshot:
            return
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set_max(value)
        for name, data in snapshot.get("histograms", {}).items():
            bounds = tuple(data.get("bounds", DEFAULT_BUCKETS))
            hist = self.histogram(name, bounds)
            if hist.bounds == bounds and len(hist.counts) == len(data["counts"]):
                for index, count in enumerate(data["counts"]):
                    hist.counts[index] += count
            # Mismatched bounds: totals still merge, buckets are dropped.
            hist.sum += data.get("sum", 0.0)
            hist.count += data.get("count", 0)
        for name, data in snapshot.get("sketches", {}).items():
            self.sketch(name).merge(data)

    # -- Prometheus text dump --------------------------------------------------

    def to_prometheus(self, prefix: str = "repro_") -> str:
        """The text exposition format (``--metrics-out`` and ``/metrics``).

        Conforms to the Prometheus text format (version 0.0.4): every metric
        family gets ``# HELP`` and ``# TYPE`` lines, counters are suffixed
        ``_total``, histograms expose cumulative ``_bucket`` series ending in
        ``le="+Inf"`` plus ``_sum`` and ``_count``.
        """
        lines: List[str] = []

        def head(metric: str, name: str, kind: str) -> None:
            help_text = METRIC_HELP.get(name, f"repro metric {name}")
            lines.append(f"# HELP {metric} {_escape_help(help_text)}")
            lines.append(f"# TYPE {metric} {kind}")

        for name, counter in sorted(self._counters.items()):
            metric = prefix + _sanitize(name) + "_total"
            head(metric, name, "counter")
            lines.append(f"{metric} {counter.value}")
        for name, gauge in sorted(self._gauges.items()):
            metric = prefix + _sanitize(name)
            head(metric, name, "gauge")
            lines.append(f"{metric} {_format(gauge.value)}")
        for name, hist in sorted(self._histograms.items()):
            metric = prefix + _sanitize(name)
            head(metric, name, "histogram")
            cumulative = 0
            for bound, count in zip(hist.bounds, hist.counts):
                cumulative += count
                lines.append(
                    f'{metric}_bucket{{le="{_format(bound)}"}} {cumulative}'
                )
            lines.append(f'{metric}_bucket{{le="+Inf"}} {hist.count}')
            lines.append(f"{metric}_sum {_format(hist.sum)}")
            lines.append(f"{metric}_count {hist.count}")
        for name, sketch in sorted(self._sketches.items()):
            metric = prefix + _sanitize(name)
            head(metric, name, "summary")
            for q in (0.5, 0.9, 0.95, 0.99):
                lines.append(
                    f'{metric}{{quantile="{_format(q)}"}} '
                    f"{_format(sketch.quantile(q))}"
                )
            lines.append(f"{metric}_sum {_format(sketch.sum)}")
            lines.append(f"{metric}_count {sketch.count}")
        return "\n".join(lines) + ("\n" if lines else "")


def _sanitize(name: str) -> str:
    return "".join(c if c.isalnum() or c == "_" else "_" for c in name)


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))
