"""Search forensics: semantic events keyed by stable subproblem-node IDs.

The span layer (:mod:`repro.obs.spans`) answers *where the time went*; this
module answers *what the search did*: which subproblem-graph nodes were
created and by which division strategy, which Figure 7/8 deduction rules
were attempted and which fired, where CEGIS counterexamples appeared, and —
for unsolved runs — where the frontier got stuck.

Forensics records are ordinary instant events on the ambient span stream
(domain ``"forensics"``), so they ride everything the span stream already
flows through for free: ``JobResult.telemetry`` payloads, ``--spans-out``
JSONL dumps, and the crash flight recorder.  ``dryadsynth explain``
(:mod:`repro.obs.explain`) is the consumer.

Event inventory (all attrs are flat JSON scalars):

``graph.node``
    A subproblem-graph node was created.  ``node`` (stable ID), ``fun``
    (synth-fun name), ``parent`` (creating parent's node ID, absent for the
    source), ``strategy`` (division strategy of the creating edge),
    ``depth``.
``graph.share``
    An existing node gained another parent (Figure 3's shared structure).
``graph.solve``
    A node was solved; ``how`` is ``direct`` (own search/deduction) or
    ``propagated`` (combined from children).
``graph.park`` / ``graph.free``
    A node's enumeration was preempted (slice expired; ``height`` rides
    along) / a solved node released its parked solver sessions.
``divide.choice``
    Algorithm 1 committed to a division; ``strategy``, ``child``,
    ``created``.
``divide.reject``
    A division was abandoned; ``reason`` says why (``trivial-a-solution``,
    ``not-in-grammar``, ``no-resolution``, ...).
``deduct.rule``
    One Figure 7/8 rule application: ``rule``, ``outcome``
    (``fired``/``failed``/``attempt``), optional ``delta`` (spec-size
    change; negative means the rewrite shrank the spec) and ``count``
    (number of merges for the merging rules).
``cegis.iter`` / ``cegis.cex``
    One CEGIS iteration / a fresh counterexample (``cex`` is the rendered
    assignment), with ``iteration`` and ``height`` where known.

Like every ``repro.obs`` surface, emission is a no-op until a recorder is
installed; the disabled cost is one attribute load and a ``None`` check.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, Iterator, Optional

from repro import obs

#: Event-stream domain for forensics records.
DOMAIN = "forensics"

# Event names (importable so emitters and consumers cannot drift apart).
GRAPH_NODE = "graph.node"
GRAPH_SHARE = "graph.share"
GRAPH_SOLVE = "graph.solve"
GRAPH_PARK = "graph.park"
GRAPH_FREE = "graph.free"
DIVIDE_CHOICE = "divide.choice"
DIVIDE_REJECT = "divide.reject"
DEDUCT_RULE = "deduct.rule"
CEGIS_ITER = "cegis.iter"
CEGIS_CEX = "cegis.cex"


def enabled() -> bool:
    """True when forensics events are being recorded."""
    return obs.active() is not None


def iter_events(events: Iterable, *names: str) -> Iterator:
    """Yield the forensics-domain events of a stream, oldest first.

    ``names`` optionally restricts the yield to specific event names.  Every
    consumer of the event stream (``explain``, ``diff``, the analytics
    folder) needs the same domain filter; sharing it here keeps them from
    drifting on what counts as a forensics record.
    """
    wanted = frozenset(names) if names else None
    for event in events:
        if event.domain != DOMAIN:
            continue
        if wanted is None or event.name in wanted:
            yield event


def emit(event: str, **attrs) -> None:
    """Record one forensics event on the ambient stream (no-op when off)."""
    recorder = obs.active()
    if recorder is not None:
        recorder.add_event(event, domain=DOMAIN, **attrs)


def render_example(example: Optional[Dict]) -> str:
    """One-line, deterministic rendering of a counterexample assignment."""
    if not example:
        return "{}"
    return json.dumps(
        {str(k): example[k] for k in sorted(example)}, separators=(",", ":")
    )
