"""Wall-clock stack sampling profiler (the py-spy/FlameGraph model).

Spans answer "how long was this *instrumented* region open"; the sampler
answers the complementary question — "which *code* was on-CPU (or blocked)
while the wall clock ran" — with no instrumentation at all.  A
:class:`StackSampler` daemon thread wakes ~67 times a second
(:data:`DEFAULT_INTERVAL`), grabs every thread's current frame via
``sys._current_frames()`` and folds the walked stacks into a
:class:`StackProfile` of collapsed-stack counts, the exact format
FlameGraph's ``flamegraph.pl`` and speedscope ingest::

    repro/synth/cegis.py:cegis_loop;repro/smt/solver.py:solve 412

Profiles are cheap, mergeable across the :class:`~repro.service.pool.WorkerPool`
process boundary (they ride fingerprint-neutrally in
``JobResult.telemetry`` next to the span payload), and each sample is
classified against the ambient :class:`~repro.obs.spans.SpanRecorder`:
samples taken while the sampled thread had *no open span* are tallied
separately as **dark** samples — the hot frames ``dryadsynth profile``
names in its dark-time section.

``dryadsynth flame`` renders/exports profiles; :func:`load_collapsed`
reads ``.collapsed`` files back tolerantly (a writer killed mid-append
tears at most the final line, same contract as
:func:`repro.obs.export.read_jsonl_tolerant`).
"""

from __future__ import annotations

import sys
import threading
import time
from typing import Dict, List, Optional, Tuple

PROFILE_FORMAT = "repro-profile/1"

#: ~67 Hz: fine enough to catch millisecond-scale phases over a seconds-long
#: run, coarse enough that sampling overhead stays well under 5%.
DEFAULT_INTERVAL = 0.015

#: Stack depth cap: deeper frames are summarized, so a runaway recursion
#: cannot make single samples arbitrarily expensive to record.
MAX_STACK_DEPTH = 64


def _short_path(filename: str) -> str:
    """Shorten an absolute source path to a stable, readable frame prefix.

    Paths inside the ``repro`` package keep their package-relative tail
    (``repro/synth/cegis.py``) so profiles from different checkouts and
    different machines merge; everything else keeps its basename.
    """
    normalized = filename.replace("\\", "/")
    marker = "/repro/"
    index = normalized.rfind(marker)
    if index >= 0:
        return normalized[index + 1:]
    return normalized.rsplit("/", 1)[-1]


def frame_label(code) -> str:
    """One frame's collapsed-stack label (``path:function``).

    Semicolons and whitespace are the format's structural characters, so
    they are rewritten out of the label.
    """
    label = f"{_short_path(code.co_filename)}:{code.co_name}"
    return label.replace(";", ",").replace(" ", "_").replace("\t", "_")


def collapse_frame(frame) -> str:
    """Walk a thread's frame chain into one root→leaf collapsed stack."""
    labels: List[str] = []
    depth = 0
    while frame is not None and depth < MAX_STACK_DEPTH:
        labels.append(frame_label(frame.f_code))
        frame = frame.f_back
        depth += 1
    if frame is not None:
        labels.append("[truncated]")
    labels.reverse()
    return ";".join(labels)


class StackProfile:
    """Collapsed-stack sample counts, mergeable and serializable.

    ``counts`` maps a full collapsed stack (``a;b;c``) to how many samples
    landed there; ``dark`` is the subset taken while the sampled thread had
    no open span (see :meth:`StackSampler._sample`).  Merging adds counts
    key-wise, so profiles combine across workers exactly like metric
    snapshots do.
    """

    __slots__ = ("counts", "dark", "samples", "interval", "duration", "pids")

    def __init__(self, interval: float = DEFAULT_INTERVAL) -> None:
        self.counts: Dict[str, int] = {}
        self.dark: Dict[str, int] = {}
        self.samples = 0
        self.interval = interval
        self.duration = 0.0
        self.pids: List[int] = []

    def record(self, stack: str, dark: bool = False, count: int = 1) -> None:
        if not stack or count <= 0:
            return
        self.counts[stack] = self.counts.get(stack, 0) + count
        if dark:
            self.dark[stack] = self.dark.get(stack, 0) + count
        self.samples += count

    def merge(self, other) -> None:
        """Fold another profile (or its ``to_json`` dict) into this one."""
        if other is None:
            return
        if isinstance(other, dict):
            other = StackProfile.from_json(other)
        for stack, count in other.counts.items():
            self.counts[stack] = self.counts.get(stack, 0) + count
        for stack, count in other.dark.items():
            self.dark[stack] = self.dark.get(stack, 0) + count
        self.samples += other.samples
        self.duration += other.duration
        for pid in other.pids:
            if pid not in self.pids:
                self.pids.append(pid)

    # -- Aggregations ----------------------------------------------------------

    def self_counts(self) -> Dict[str, int]:
        """Per-frame *self* samples: how often a frame was the leaf."""
        frames: Dict[str, int] = {}
        for stack, count in self.counts.items():
            leaf = stack.rsplit(";", 1)[-1]
            frames[leaf] = frames.get(leaf, 0) + count
        return frames

    def total_counts(self) -> Dict[str, int]:
        """Per-frame *total* samples: how often a frame was anywhere on-stack."""
        frames: Dict[str, int] = {}
        for stack, count in self.counts.items():
            for frame in set(stack.split(";")):
                frames[frame] = frames.get(frame, 0) + count
        return frames

    def dark_frames(self, top: int = 5) -> List[Tuple[str, int]]:
        """The hottest leaf frames among samples taken outside any span."""
        frames: Dict[str, int] = {}
        for stack, count in self.dark.items():
            leaf = stack.rsplit(";", 1)[-1]
            frames[leaf] = frames.get(leaf, 0) + count
        ranked = sorted(frames.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:top]

    # -- Serialization ---------------------------------------------------------

    def to_json(self) -> Dict:
        return {
            "format": PROFILE_FORMAT,
            "interval": self.interval,
            "samples": self.samples,
            "duration": round(self.duration, 6),
            "pids": list(self.pids),
            "counts": dict(self.counts),
            "dark": dict(self.dark),
        }

    @staticmethod
    def from_json(data: Dict) -> "StackProfile":
        profile = StackProfile(interval=data.get("interval", DEFAULT_INTERVAL))
        profile.counts = {str(k): int(v) for k, v in
                          (data.get("counts") or {}).items()}
        profile.dark = {str(k): int(v) for k, v in
                        (data.get("dark") or {}).items()}
        profile.samples = int(data.get("samples", sum(profile.counts.values())))
        profile.duration = float(data.get("duration", 0.0))
        profile.pids = [int(p) for p in data.get("pids", [])]
        return profile

    def to_collapsed(self) -> str:
        """FlameGraph/speedscope collapsed-stack text (``stack count`` lines)."""
        ranked = sorted(self.counts.items(), key=lambda kv: (-kv[1], kv[0]))
        return "\n".join(f"{stack} {count}" for stack, count in ranked)


def write_collapsed(profile: StackProfile, path: str) -> None:
    """Write a ``.collapsed`` file (one ``stack count`` line per stack)."""
    text = profile.to_collapsed()
    with open(path, "w") as handle:
        if text:
            handle.write(text + "\n")


def load_collapsed(path: str) -> StackProfile:
    """Read a ``.collapsed`` file tolerantly.

    Same torn-tail contract as the JSONL stores: a final line truncated
    mid-write — including mid-way through a multi-byte UTF-8 character —
    is dropped; a malformed *interior* line raises ``ValueError``.
    """
    with open(path, "rb") as handle:
        raw_lines = handle.read().split(b"\n")
    last = max(
        (i for i, raw in enumerate(raw_lines) if raw.strip()), default=-1
    )
    profile = StackProfile()
    for index, raw in enumerate(raw_lines):
        if not raw.strip():
            continue
        try:
            line = raw.decode("utf-8")
            stack, count_text = line.rsplit(" ", 1)
            count = int(count_text)
            if not stack:
                raise ValueError("empty stack")
        except (UnicodeDecodeError, ValueError) as exc:
            if index == last:
                continue  # torn tail from an interrupted append
            raise ValueError(
                f"{path}:{index + 1}: malformed collapsed-stack line"
            ) from exc
        profile.record(stack, count=count)
    return profile


def read_profile_record(path: str) -> Optional[StackProfile]:
    """Extract (and merge) the ``profile`` record(s) from a spans JSONL dump.

    Returns ``None`` when the dump carries no sampled profile — the span
    writers embed one only when the sampler ran.
    """
    from repro.obs.export import read_jsonl_tolerant

    profile: Optional[StackProfile] = None
    for record in read_jsonl_tolerant(path):
        data = record.get("profile")
        if not data:
            continue
        if profile is None:
            profile = StackProfile.from_json(data)
        else:
            profile.merge(data)
    return profile


class StackSampler:
    """A daemon-thread wall-clock sampler over ``sys._current_frames()``.

    ``start``/``stop`` are idempotent; the sampler never samples its own
    thread.  When a ``recorder`` is supplied (or an ambient one is
    installed), each sample is classified per sampled thread: **dark** when
    that thread had no span open at sample time — the signal the profile
    report reconciles against the span stream.
    """

    def __init__(
        self,
        interval: float = DEFAULT_INTERVAL,
        recorder=None,
        profile: Optional[StackProfile] = None,
    ) -> None:
        self.interval = max(0.001, interval)
        self.profile = profile if profile is not None else StackProfile(interval)
        self._recorder = recorder
        self._thread: Optional[threading.Thread] = None
        self._stop_event = threading.Event()
        self._started_at = 0.0

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "StackSampler":
        if self.running:
            return self
        import os

        if os.getpid() not in self.profile.pids:
            self.profile.pids.append(os.getpid())
        self._stop_event = threading.Event()
        self._started_at = time.monotonic()
        self._thread = threading.Thread(
            target=self._run, name="repro-stack-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> StackProfile:
        thread = self._thread
        if thread is not None:
            self._stop_event.set()
            thread.join(timeout=2.0)
            self._thread = None
            self.profile.duration += time.monotonic() - self._started_at
        return self.profile

    def __enter__(self) -> "StackSampler":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _run(self) -> None:
        own = threading.get_ident()
        while not self._stop_event.wait(self.interval):
            try:
                self._sample(own)
            except Exception:  # noqa: BLE001 - sampling must never kill the job
                return

    def _active_recorder(self):
        if self._recorder is not None:
            return self._recorder
        from repro import obs

        return obs.active()

    def _sample(self, own_ident: int) -> None:
        recorder = self._active_recorder()
        for ident, frame in sys._current_frames().items():
            if ident == own_ident:
                continue
            stack = collapse_frame(frame)
            if not stack:
                continue
            dark = True
            if recorder is not None:
                dark = not recorder.thread_has_open_span(ident)
            self.profile.record(stack, dark=dark)
