"""Chrome/Perfetto trace export (``--trace-chrome``).

Converts a span stream into the Chrome ``trace_event`` JSON format, viewable
in ``chrome://tracing`` or https://ui.perfetto.dev.  Spans become complete
(``ph: "X"``) events with microsecond timestamps; instant events (including
forensics records) become ``ph: "i"`` instants bound to their process lane.

The mapping is deliberately lossless where it matters for reading a trace:

- ``pid`` comes from the recording process, so a merged multi-worker batch
  trace shows one track lane per worker process (the recorder nests spans
  per thread but ships only the process id, so ``tid`` mirrors ``pid``).
- Span attrs ride in ``args`` verbatim; the subproblem ``node`` attr is what
  lets a Perfetto query group slices by graph node.
- Instant events carry no pid of their own; each is placed on the lane of
  its enclosing span when one exists.
- The stream's ``truncated`` flag (recorder cap hit) is recorded as trace
  metadata so a partial trace is identifiable as such.
"""

from __future__ import annotations

import json
from typing import IO, Dict, Sequence

from repro.obs.spans import ObsEvent, Span, SpanRecorder

#: Trace-event time unit is microseconds.
_US = 1_000_000.0


def span_to_trace_event(span: Span) -> dict:
    """One span as a Chrome complete (``ph: "X"``) event."""
    record = {
        "name": span.name,
        "ph": "X",
        "ts": round(span.start * _US, 3),
        "dur": round(span.wall * _US, 3),
        "pid": span.pid,
        "tid": span.pid,
        "cat": "span",
    }
    args: Dict = dict(span.attrs)
    if span.status != "ok":
        args["status"] = span.status
    if args:
        record["args"] = args
    return record


def event_to_trace_event(event: ObsEvent, pid: int = 0) -> dict:
    """One instant event as a Chrome thread-scoped instant (``ph: "i"``)."""
    record = {
        "name": event.name,
        "ph": "i",
        "ts": round(event.elapsed * _US, 3),
        "pid": pid,
        "tid": pid,
        "s": "t",
        "cat": event.domain,
    }
    if event.attrs:
        record["args"] = dict(event.attrs)
    return record


def build_trace(
    spans: Sequence[Span],
    events: Sequence[ObsEvent] = (),
    truncated: bool = False,
) -> dict:
    """The full trace object (``traceEvents`` + metadata)."""
    pid_of_span = {span.span_id: span.pid for span in spans}
    trace_events = [span_to_trace_event(span) for span in spans]
    trace_events.extend(
        event_to_trace_event(event, pid=pid_of_span.get(event.span_id, 0))
        for event in events
    )
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "format": "repro-chrome/1",
            "truncated": truncated,
            "spans": len(spans),
            "events": len(events),
        },
    }


def dump_trace(
    spans: Sequence[Span],
    handle: IO[str],
    events: Sequence[ObsEvent] = (),
    truncated: bool = False,
) -> None:
    json.dump(build_trace(spans, events, truncated=truncated), handle)
    handle.write("\n")


def write_trace_chrome(
    path: str,
    spans: Sequence[Span],
    events: Sequence[ObsEvent] = (),
    truncated: bool = False,
) -> None:
    """Write a Chrome trace file from spans/events."""
    with open(path, "w") as handle:
        dump_trace(spans, handle, events=events, truncated=truncated)


def write_recorder_trace(recorder: SpanRecorder, path: str) -> None:
    """Write a finished recorder's stream as a Chrome trace file."""
    write_trace_chrome(
        path,
        recorder.spans,
        events=recorder.events,
        truncated=recorder.truncated,
    )
