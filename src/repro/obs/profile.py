"""Per-phase time attribution over a span stream (``dryadsynth profile``).

Answers "where did the budget go": for every span name (phase) the report
shows *cumulative* wall time (time with such a span open, excluding nested
spans of the same name so recursion is not double-counted) and *self* wall
time (cumulative minus time spent in child spans).  Self times partition
the traced wall clock exactly — they sum to the total of the root spans —
which is what makes the table trustworthy as an attribution, not just a
collection of timers.  A second table ranks the hottest individual SMT
queries (``smt.solve`` spans) by wall time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.obs.spans import Span

SMT_SPAN_NAME = "smt.solve"


@dataclass
class PhaseRow:
    """Aggregated attribution for one span name."""

    name: str
    count: int = 0
    cum_wall: float = 0.0
    self_wall: float = 0.0
    cum_cpu: float = 0.0
    errors: int = 0


@dataclass
class ProfileReport:
    """The computed attribution: per-phase rows plus run totals."""

    phases: List[PhaseRow]
    total_wall: float  # sum of root span walls = the traced wall clock
    total_spans: int
    roots: int
    #: Per-process dark time (see :func:`compute_dark_time`), appended with
    #: a default so positional constructions elsewhere keep working.
    dark: List[Dict] = field(default_factory=list)

    def phase(self, name: str) -> Optional[PhaseRow]:
        for row in self.phases:
            if row.name == name:
                return row
        return None


def compute_dark_time(spans: Sequence[Span]) -> List[Dict]:
    """Wall time inside each process's trace window but outside any root span.

    For every pid the window runs from its earliest span start to its
    latest span end; "dark" is the part of that window not covered by the
    union of the pid's *root*-span intervals — time the process spent where
    no instrumented region was open (imports, serialization, scheduler
    glue).  Computed purely from spans, so it works with the sampler off;
    sampled dark *frames* (when available) then say what ran there.
    """
    by_id = {span.span_id: span for span in spans}
    by_pid: Dict[int, List[Span]] = {}
    for span in spans:
        by_pid.setdefault(span.pid, []).append(span)
    out: List[Dict] = []
    for pid in sorted(by_pid):
        group = by_pid[pid]
        window_start = min(s.start for s in group)
        window_end = max(s.start + s.wall for s in group)
        intervals = sorted(
            (s.start, s.start + s.wall)
            for s in group
            if s.parent_id is None or s.parent_id not in by_id
        )
        covered = 0.0
        cursor = window_start
        for lo, hi in intervals:
            lo = max(lo, cursor)
            if hi > lo:
                covered += hi - lo
                cursor = hi
        window = window_end - window_start
        out.append({
            "pid": pid,
            "window": round(window, 6),
            "covered": round(covered, 6),
            "dark": round(max(0.0, window - covered), 6),
        })
    return out


def build_profile(spans: Sequence[Span]) -> ProfileReport:
    """Aggregate a span stream into per-phase self/cumulative attribution."""
    by_id: Dict[int, Span] = {span.span_id: span for span in spans}
    child_wall: Dict[int, float] = {}
    for span in spans:
        parent = span.parent_id
        if parent is not None and parent in by_id:
            child_wall[parent] = child_wall.get(parent, 0.0) + span.wall

    def has_same_name_ancestor(span: Span) -> bool:
        parent = span.parent_id
        while parent is not None:
            ancestor = by_id.get(parent)
            if ancestor is None:
                return False
            if ancestor.name == span.name:
                return True
            parent = ancestor.parent_id
        return False

    rows: Dict[str, PhaseRow] = {}
    total_wall = 0.0
    roots = 0
    for span in spans:
        row = rows.get(span.name)
        if row is None:
            row = rows[span.name] = PhaseRow(span.name)
        row.count += 1
        row.self_wall += max(0.0, span.wall - child_wall.get(span.span_id, 0.0))
        row.cum_cpu += span.cpu
        if span.status != "ok":
            row.errors += 1
        if not has_same_name_ancestor(span):
            row.cum_wall += span.wall
        if span.parent_id is None or span.parent_id not in by_id:
            roots += 1
            total_wall += span.wall
    phases = sorted(rows.values(), key=lambda r: r.self_wall, reverse=True)
    return ProfileReport(phases, total_wall, len(spans), roots,
                         dark=compute_dark_time(spans))


def render_profile(report: ProfileReport) -> str:
    """The per-phase attribution table, self-time-descending."""
    total = report.total_wall or 1e-12
    lines = [
        f"traced wall clock: {report.total_wall:.3f}s over "
        f"{report.total_spans} spans ({report.roots} roots)",
        "",
        f"{'phase':<18} {'count':>7} {'self(s)':>9} {'self%':>6} "
        f"{'cum(s)':>9} {'cum%':>6} {'cpu(s)':>9}",
    ]
    self_total = 0.0
    for row in report.phases:
        self_total += row.self_wall
        lines.append(
            f"{row.name:<18} {row.count:>7} {row.self_wall:>9.3f} "
            f"{100 * row.self_wall / total:>5.1f}% "
            f"{row.cum_wall:>9.3f} {100 * row.cum_wall / total:>5.1f}% "
            f"{row.cum_cpu:>9.3f}"
            + (f"  ({row.errors} errors)" if row.errors else "")
        )
    lines.append(
        f"{'(total self)':<18} {'':>7} {self_total:>9.3f} "
        f"{100 * self_total / total:>5.1f}%"
    )
    for entry in report.dark:
        window = entry.get("window") or 0.0
        dark = entry.get("dark") or 0.0
        pct = 100 * dark / window if window > 0 else 0.0
        lines.append(
            f"dark time (pid {entry.get('pid', '?')}): {dark:.3f}s "
            f"of {window:.3f}s window ({pct:.1f}%) outside any root span"
        )
    return "\n".join(lines)


def hottest_spans(
    spans: Sequence[Span], name: str = SMT_SPAN_NAME, top: int = 10
) -> List[Span]:
    """The top-k slowest spans of one name (default: individual SMT solves)."""
    matching = [span for span in spans if span.name == name]
    matching.sort(key=lambda span: span.wall, reverse=True)
    return matching[:top]


def render_hottest(spans: Sequence[Span], top: int = 10,
                   name: str = SMT_SPAN_NAME) -> str:
    """The top-k hottest SMT queries with their attributes."""
    hottest = hottest_spans(spans, name, top)
    if not hottest:
        return f"no {name!r} spans recorded"
    lines = [f"top {len(hottest)} hottest {name} spans:"]
    for rank, span in enumerate(hottest, 1):
        attrs = " ".join(
            f"{key}={value}" for key, value in sorted(span.attrs.items())
        )
        lines.append(
            f"{rank:>3}. {span.wall:8.4f}s cpu={span.cpu:7.4f}s"
            f" start={span.start:8.3f}s {attrs}"
        )
    return "\n".join(lines)


def render_dark_frames(profile, top: int = 10) -> str:
    """The sampled-stack reconciliation for the report's dark-time lines.

    ``profile`` is a :class:`~repro.obs.sampler.StackProfile`; its samples
    taken while no span was open name what actually ran during dark time.
    """
    frames = profile.dark_frames(top)
    if not frames:
        return "no dark samples (every sample landed inside an open span)"
    dark_total = sum(profile.dark.values())
    lines = [
        f"hottest dark frames ({dark_total} of {profile.samples} "
        "samples outside any span):"
    ]
    for rank, (frame, count) in enumerate(frames, 1):
        lines.append(f"{rank:>3}. {count:>6} samples  {frame}")
    return "\n".join(lines)


def profile_text(spans: Sequence[Span], top: int = 10, profile=None) -> str:
    """The full ``dryadsynth profile`` report for a span stream.

    ``profile`` (a sampled :class:`~repro.obs.sampler.StackProfile`, when
    the dump carries one) adds the "hottest dark frames" section naming
    what ran outside every span.
    """
    report = build_profile(spans)
    text = render_profile(report) + "\n\n" + render_hottest(spans, top)
    if profile is not None and profile.samples:
        text += "\n\n" + render_dark_frames(profile, top)
    return text
