"""Request-scoped distributed tracing: W3C-traceparent-style contexts.

The daemon (:mod:`repro.serve`) mints one :class:`TraceContext` per HTTP
submission — or adopts the one the client sent in a ``traceparent`` header —
and that context is the thread tying the whole request together:

- the admission **audit record** and every scheduler event log line carry
  ``trace_id`` (via :func:`repro.obs.log.log_context`);
- the context crosses the process boundary in ``SynthesisJob.params``
  (:func:`inject`/:func:`extract`) without touching the job fingerprint;
- the worker re-roots its :class:`~repro.obs.spans.SpanRecorder` tree under
  a ``worker.request`` span carrying the ids (:func:`worker_span_attrs`),
  so span dumps, the flight-recorder journal and Chrome traces are all
  attributable to the originating request;
- the daemon grafts the worker tree back under its own ``serve.request``
  span, producing one end-to-end tree per request: queue wait → dispatch →
  worker attach → solver spans → SMT rounds.

The header format follows W3C Trace Context (``version-traceid-spanid-
flags``) closely enough that real tracing infrastructure interoperates:
ids are lowercase hex, 32 chars for the trace, 16 for a span, and an
all-zero id is invalid.  Only version ``00`` is emitted; unknown versions
are accepted on parse (per spec) as long as the id fields are well-formed.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass
from typing import Dict, Optional

#: The only version this implementation emits.
TRACEPARENT_VERSION = "00"

#: Sampled flag — every minted context is recorded, so it is always set.
TRACE_FLAGS = "01"

#: ``SynthesisJob.params`` key carrying the serialized context.
PARAMS_KEY = "traceparent"

_TRACEPARENT_RE = re.compile(
    r"^(?P<version>[0-9a-f]{2})-(?P<trace_id>[0-9a-f]{32})"
    r"-(?P<span_id>[0-9a-f]{16})-(?P<flags>[0-9a-f]{2})$"
)


def _hex_id(nbytes: int) -> str:
    """A random lowercase-hex id that is guaranteed non-zero."""
    while True:
        value = os.urandom(nbytes).hex()
        if any(c != "0" for c in value):
            return value


@dataclass(frozen=True)
class TraceContext:
    """One request's position in a distributed trace."""

    trace_id: str
    span_id: str
    parent_span_id: Optional[str] = None

    def traceparent(self) -> str:
        """The wire form (``00-<trace_id>-<span_id>-01``)."""
        return (
            f"{TRACEPARENT_VERSION}-{self.trace_id}-{self.span_id}"
            f"-{TRACE_FLAGS}"
        )

    def child(self) -> "TraceContext":
        """A fresh context one hop below this one (same trace)."""
        return TraceContext(
            trace_id=self.trace_id,
            span_id=_hex_id(8),
            parent_span_id=self.span_id,
        )

    def span_attrs(self) -> Dict[str, str]:
        """The ids as span attributes (what every traced span carries)."""
        attrs = {"trace_id": self.trace_id, "trace_span_id": self.span_id}
        if self.parent_span_id:
            attrs["trace_parent_span_id"] = self.parent_span_id
        return attrs


def mint() -> TraceContext:
    """A brand-new root context (the admission path for headerless clients)."""
    return TraceContext(trace_id=_hex_id(16), span_id=_hex_id(8))


def parse_traceparent(header: Optional[str]) -> Optional[TraceContext]:
    """Parse a ``traceparent`` header; ``None`` on anything malformed.

    A malformed header never fails a submission — tracing degrades to a
    freshly minted context instead (the request is still fully traced, it
    just starts a new trace rather than continuing the caller's).
    """
    if not header:
        return None
    match = _TRACEPARENT_RE.match(header.strip().lower())
    if match is None:
        return None
    if match.group("version") == "ff":  # reserved per W3C Trace Context
        return None
    trace_id = match.group("trace_id")
    span_id = match.group("span_id")
    if set(trace_id) == {"0"} or set(span_id) == {"0"}:
        return None
    return TraceContext(trace_id=trace_id, span_id=span_id)


def continue_or_mint(header: Optional[str]) -> TraceContext:
    """Adopt the caller's context as parent, or mint a root context.

    When a valid ``traceparent`` comes in, the returned context keeps the
    caller's ``trace_id`` and records the caller's span as its parent — the
    daemon's request span becomes a child in the caller's trace, which is
    exactly what a service mesh expects.
    """
    parent = parse_traceparent(header)
    if parent is None:
        return mint()
    return parent.child()


# ---------------------------------------------------------------------------
# Process-boundary plumbing (SynthesisJob.params)
# ---------------------------------------------------------------------------


def inject(params: Dict[str, str], ctx: TraceContext) -> None:
    """Serialize ``ctx`` into a job's params (fingerprint-neutral)."""
    params[PARAMS_KEY] = ctx.traceparent()


def extract(params: Optional[Dict[str, str]]) -> Optional[TraceContext]:
    """Recover the context a parent injected (``None`` when untraced)."""
    if not params:
        return None
    return parse_traceparent(params.get(PARAMS_KEY))


def worker_span_attrs(params: Optional[Dict[str, str]]) -> Dict[str, str]:
    """Span attributes for the worker-side ``worker.request`` root span.

    The worker mints its own span id under the parent's trace, so the
    daemon-side request span and the worker-side tree link up as parent and
    child in the same trace.
    """
    ctx = extract(params)
    if ctx is None:
        return {}
    return ctx.child().span_attrs()
