"""Concurrent-client load generator for the synthesis daemon.

``python -m repro.serve.loadgen --url http://127.0.0.1:PORT`` drives a
running ``dryadsynth serve`` the way a fleet of tenants would: N client
threads submit a mixed-size problem stream (by default the demo benchmark
subset) at a configurable arrival rate, honour ``Retry-After`` on 429
backpressure, poll each job to a terminal state, and measure
**submit-to-result latency** end to end — the number an operator actually
experiences, queueing included.

The report is JSON: per-request records plus aggregate p50/p90/p99 latency
from a shared :class:`~repro.obs.metrics.QuantileSketch` — the same
bounded-memory estimator the daemon's SLO layer streams into, so the
client-side and server-side percentiles are directly comparable and an
arbitrarily long run never accumulates a raw sample list.  Each record
carries the ``trace_id`` the daemon minted, joining the client's view to
the admission audit log, ``/v1/stats`` and the span tree.  Cache-hit and
shed counts and the solved set ride along — which ``dryadsynth
bench-compare`` checks against the batch baseline and the trailing latency
history in ``BENCH_history.jsonl``.

Also importable (:func:`run_loadgen`) so the daemon tests and the CI smoke
job can drive an in-process server without spawning a second Python.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
import urllib.error
import urllib.request
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.metrics import QuantileSketch

#: Cap on a single Retry-After pause — the server's estimate is advisory and
#: the generator must keep making progress even if it advertises minutes.
MAX_RETRY_PAUSE = 5.0

#: Attempts per submission before the generator records a hard failure.
MAX_SUBMIT_ATTEMPTS = 50


def _http_json(
    url: str,
    data: Optional[bytes] = None,
    method: str = "GET",
    timeout: float = 30.0,
) -> Tuple[int, Dict, Dict]:
    """(status, headers-as-dict, parsed JSON body); errors carry bodies too."""
    request = urllib.request.Request(
        url,
        data=data,
        method=method,
        headers={"Content-Type": "application/json"} if data else {},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return (
                response.status,
                dict(response.headers),
                json.loads(response.read().decode()),
            )
    except urllib.error.HTTPError as exc:
        body = exc.read().decode()
        try:
            payload = json.loads(body)
        except json.JSONDecodeError:
            payload = {"error": body}
        return exc.code, dict(exc.headers or {}), payload


class _Client(threading.Thread):
    """One tenant: submits its share of the stream, polls to terminal."""

    def __init__(
        self,
        index: int,
        base_url: str,
        work: Sequence[Tuple[str, str, int]],
        interval: float,
        poll_interval: float,
        deadline: float,
        sketch: QuantileSketch,
        sketch_lock: threading.Lock,
    ) -> None:
        super().__init__(name=f"loadgen-client-{index}", daemon=True)
        self.index = index
        self.client_id = f"client-{index}"
        self.base_url = base_url.rstrip("/")
        self.work = work
        self.interval = interval
        self.poll_interval = poll_interval
        self.deadline = deadline
        #: Shared across all clients: completed-request latencies stream in
        #: here (bounded memory) instead of into per-client sample lists.
        self.sketch = sketch
        self.sketch_lock = sketch_lock
        self.records: List[Dict] = []

    def run(self) -> None:
        for name, text, priority in self.work:
            if self.interval > 0:
                time.sleep(self.interval)
            record = self._submit_and_wait(name, text, priority)
            if record.get("latency") is not None and record.get("state") == "done":
                with self.sketch_lock:
                    self.sketch.observe(record["latency"])
            self.records.append(record)

    def _submit_and_wait(self, name: str, text: str, priority: int) -> Dict:
        record: Dict = {
            "problem": name,
            "client": self.client_id,
            "priority": priority,
            "retries": 0,
        }
        body = json.dumps(
            {
                "problem": text,
                "name": name,
                "client": self.client_id,
                "priority": priority,
            }
        ).encode()
        start = time.monotonic()
        serve_id = None
        for _attempt in range(MAX_SUBMIT_ATTEMPTS):
            try:
                status, headers, payload = _http_json(
                    self.base_url + "/v1/jobs", data=body, method="POST"
                )
            except OSError as exc:
                record.update(state="error", error=str(exc))
                return record
            if status == 429:
                record["retries"] += 1
                retry_after = headers.get("Retry-After")
                pause = min(
                    MAX_RETRY_PAUSE,
                    float(retry_after) if retry_after else 1.0,
                )
                record.setdefault("retry_after_honored", True)
                time.sleep(pause)
                continue
            if status in (200, 202):
                serve_id = payload["id"]
                record["trace_id"] = payload.get("trace_id")
                break
            record.update(
                state="error", error=payload.get("error", f"HTTP {status}")
            )
            return record
        if serve_id is None:
            record.update(state="error",
                          error="submit attempts exhausted under 429")
            return record
        final = self._poll(serve_id)
        record["latency"] = round(time.monotonic() - start, 4)
        record["id"] = serve_id
        if final is None:
            record["state"] = "error"
            record["error"] = "deadline waiting for terminal state"
            return record
        record["state"] = final["state"]
        record["from_cache"] = bool(final.get("from_cache"))
        result = final.get("result") or {}
        record["status"] = result.get("status")
        return record

    def _poll(self, serve_id: str) -> Optional[Dict]:
        url = f"{self.base_url}/v1/jobs/{serve_id}"
        while time.monotonic() < self.deadline:
            try:
                status, _headers, payload = _http_json(url)
            except OSError:
                return None
            if status != 200:
                return None
            if payload["state"] in ("done", "shed"):
                return payload
            time.sleep(self.poll_interval)
        return None


def run_loadgen(
    url: str,
    problems: Sequence[Tuple[str, str]],
    clients: int = 8,
    rate: Optional[float] = None,
    repeat: int = 1,
    poll_interval: float = 0.05,
    deadline: float = 600.0,
    priority_spread: bool = False,
) -> Dict:
    """Drive a daemon at ``url``; returns the latency/outcome report.

    ``problems`` is ``[(name, sygus_text), ...]``; the stream is the list
    repeated ``repeat`` times (resubmissions exercise the cache fast path),
    dealt round-robin across ``clients`` threads.  ``rate`` is per-client
    submissions/second (``None`` = as fast as polling allows).  With
    ``priority_spread`` each request's priority is its index modulo 5, so
    shedding and priority ordering actually trigger under pressure.
    """
    stream: List[Tuple[str, str, int]] = []
    for round_index in range(max(1, repeat)):
        for index, (name, text) in enumerate(problems):
            priority = (index + round_index) % 5 if priority_spread else 0
            stream.append((name, text, priority))
    shares: List[List[Tuple[str, str, int]]] = [[] for _ in range(clients)]
    for index, item in enumerate(stream):
        shares[index % clients].append(item)
    interval = (1.0 / rate) if rate else 0.0
    hard_deadline = time.monotonic() + deadline
    sketch = QuantileSketch("loadgen.latency")
    sketch_lock = threading.Lock()
    workers = [
        _Client(index, url, share, interval, poll_interval, hard_deadline,
                sketch, sketch_lock)
        for index, share in enumerate(shares)
        if share
    ]
    start = time.monotonic()
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    wall = time.monotonic() - start
    records = [record for worker in workers for record in worker.records]
    return _report(records, clients=len(workers), wall=wall, sketch=sketch)


def _report(records: List[Dict], clients: int, wall: float,
            sketch: QuantileSketch) -> Dict:
    latency = sketch.percentiles()
    latency["count"] = sketch.count
    latency["mean"] = round(sketch.mean, 6)
    solved = sorted(
        {
            record["problem"]
            for record in records
            if record.get("status") == "solved"
        }
    )
    report = {
        "clients": clients,
        "requests": len(records),
        "completed": sum(1 for r in records if r.get("state") == "done"),
        "shed": sum(1 for r in records if r.get("state") == "shed"),
        "errors": sum(1 for r in records if r.get("state") == "error"),
        "cache_hits": sum(1 for r in records if r.get("from_cache")),
        "rejected_retries": sum(r.get("retries", 0) for r in records),
        "wall_seconds": round(wall, 3),
        "latency": latency,
        "solved": solved,
        "records": records,
    }
    return report


def demo_problems(limit: Optional[int] = None) -> List[Tuple[str, str]]:
    """The quick-bench demo subset as (name, SyGuS text) pairs."""
    from repro.bench.quick_bench import demo_subset
    from repro.sygus.serializer import problem_to_sygus

    pairs = []
    for benchmark in demo_subset():
        pairs.append((benchmark.name, problem_to_sygus(benchmark.problem())))
        if limit is not None and len(pairs) >= limit:
            break
    return pairs


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Drive a dryadsynth serve daemon with concurrent clients."
    )
    parser.add_argument("--url", required=True,
                        help="daemon base URL (http://host:port)")
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument(
        "--rate", type=float, default=None,
        help="per-client submissions per second (default: unthrottled)",
    )
    parser.add_argument(
        "--limit", type=int, default=None,
        help="use only the first N demo problems",
    )
    parser.add_argument(
        "--repeat", type=int, default=1,
        help="submit the stream N times (resubmissions hit the cache)",
    )
    parser.add_argument(
        "--priority-spread", action="store_true",
        help="vary priorities 0..4 across the stream",
    )
    parser.add_argument(
        "--deadline", type=float, default=600.0,
        help="overall budget in seconds before clients give up",
    )
    parser.add_argument("--out", default=None,
                        help="write the full JSON report to PATH")
    args = parser.parse_args(argv)
    problems = demo_problems(args.limit)
    report = run_loadgen(
        args.url,
        problems,
        clients=args.clients,
        rate=args.rate,
        repeat=args.repeat,
        deadline=args.deadline,
        priority_spread=args.priority_spread,
    )
    latency = report["latency"]
    print(
        f"loadgen: {report['completed']}/{report['requests']} done "
        f"({report['cache_hits']} cached, {report['shed']} shed, "
        f"{report['errors']} errors, {report['rejected_retries']} 429-retries) "
        f"in {report['wall_seconds']}s; "
        f"latency p50={latency['p50']}s p99={latency['p99']}s",
        file=sys.stderr,
    )
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.out}", file=sys.stderr)
    print(json.dumps({"latency": latency, "solved_count": len(report["solved"]),
                      "completed": report["completed"],
                      "requests": report["requests"]}))
    return 0 if report["errors"] == 0 else 1


if __name__ == "__main__":
    raise SystemExit(main())
