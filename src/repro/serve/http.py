"""The ``/v1`` HTTP API, mounted on the telemetry server.

One listener serves both planes: the synthesis API (``/v1/...``) and the
observability endpoints ``/metrics``, ``/jobs``, ``/healthz`` that earlier
PRs gave ``dryadsynth batch`` — an operator points their scrape config and
their client at the same port.

Routes:

- ``POST /v1/jobs`` — submit a problem (JSON or raw SyGuS-IF text, see
  :mod:`repro.serve.protocol`).  Replies ``200`` with the finished record
  on a cache hit, ``202`` with the queued record otherwise, ``400`` on a
  malformed submission, ``429`` + ``Retry-After`` when the queue is full
  and nothing can be shed, ``503`` while draining.
- ``GET /v1/jobs/<id>`` — poll one job (``?events=1`` inlines the event
  log).
- ``GET /v1/jobs/<id>/events`` — chunked NDJSON stream of state events;
  closes after the terminal event.  ``?since=N`` resumes after event ``N``.
- ``GET /v1/stats`` — daemon counters, per-client queue depths, pool and
  cache statistics.
"""

from __future__ import annotations

import json
import urllib.parse
from typing import Dict, Optional

from repro import obs
from repro.obs.live import TelemetryServer
from repro.serve.daemon import SynthesisDaemon
from repro.serve.protocol import BadRequest, parse_submission

#: How long one /events chunk may wait for a fresh event before the stream
#: emits a keepalive comment line (so idle connections are visibly alive).
EVENT_POLL_SECONDS = 5.0


def build_server(
    daemon: SynthesisDaemon,
    port: int = 0,
    host: str = "127.0.0.1",
) -> TelemetryServer:
    """A telemetry server with the daemon's ``/v1`` API mounted."""
    server = TelemetryServer(
        port=port,
        host=host,
        metrics_fn=lambda: obs.metrics().to_prometheus(),
        jobs_fn=daemon.pool.jobs_snapshot,
        health_extra=daemon.health,
    )
    server.add_route("POST", "/v1/jobs", _submit_handler(daemon))
    server.add_route(
        "GET",
        _route(r"/v1/jobs/(?P<serve_id>[^/]+)/events"),
        _events_handler(daemon),
    )
    server.add_route(
        "GET", _route(r"/v1/jobs/(?P<serve_id>[^/]+)"), _job_handler(daemon)
    )
    server.add_route("GET", "/v1/stats", _stats_handler(daemon))
    return server


def _route(pattern: str):
    import re

    return re.compile(pattern + r"$")


def _query(request) -> Dict[str, str]:
    parsed = urllib.parse.urlparse(request.path)
    return {
        key: values[-1]
        for key, values in urllib.parse.parse_qs(parsed.query).items()
    }


def _submit_handler(daemon: SynthesisDaemon):
    def handler(request, body: Optional[bytes]) -> None:
        try:
            submission = parse_submission(
                body or b"",
                content_type=request.headers.get("Content-Type", ""),
                query=_query(request),
                traceparent=request.headers.get("traceparent"),
            )
        except BadRequest as exc:
            TelemetryServer.reply_json(request, 400, {"error": str(exc)})
            return
        outcome = daemon.submit(submission)
        if outcome.job is None:
            headers = None
            if outcome.retry_after is not None:
                headers = {"Retry-After": str(outcome.retry_after)}
            TelemetryServer.reply_json(
                request, outcome.code, {"error": outcome.error},
                headers=headers,
            )
            return
        payload = outcome.job.view()
        if outcome.shed_job is not None:
            payload["displaced"] = outcome.shed_job.id
        TelemetryServer.reply_json(request, outcome.code, payload)

    return handler


def _job_handler(daemon: SynthesisDaemon):
    def handler(request, body, serve_id: str) -> None:
        include_events = _query(request).get("events") in ("1", "true")
        view = daemon.job_view(serve_id, include_events=include_events)
        if view is None:
            TelemetryServer.reply_json(
                request, 404, {"error": f"no such job: {serve_id}"}
            )
            return
        TelemetryServer.reply_json(request, 200, view)

    return handler


def _events_handler(daemon: SynthesisDaemon):
    def handler(request, body, serve_id: str) -> None:
        job = daemon.get_job(serve_id)
        if job is None:
            TelemetryServer.reply_json(
                request, 404, {"error": f"no such job: {serve_id}"}
            )
            return
        try:
            since = int(_query(request).get("since", -1))
        except ValueError:
            TelemetryServer.reply_json(
                request, 400, {"error": '"since" must be an integer'}
            )
            return
        TelemetryServer.stream_chunks(request, _event_chunks(job, since))

    return handler


def _event_chunks(job, after_seq: int):
    """Yield NDJSON event lines until the job's terminal event is sent."""
    while True:
        fresh = job.wait_events(after_seq, timeout=EVENT_POLL_SECONDS)
        for event in fresh:
            after_seq = event["seq"]
            yield (json.dumps(event, sort_keys=True) + "\n").encode()
            if event["state"] in ("done", "shed"):
                return
        if not fresh:
            if job.terminal:
                return  # terminal event already delivered in a prior chunk
            yield b'{"keepalive": true}\n'


def _stats_handler(daemon: SynthesisDaemon):
    def handler(request, body) -> None:
        TelemetryServer.reply_json(request, 200, daemon.stats())

    return handler
