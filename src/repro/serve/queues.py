"""Per-client queues under a weighted-round-robin fair scheduler.

Multi-tenant admission needs two orthogonal orders:

- **across clients** — weighted round-robin, so one client flooding the
  daemon cannot starve the others; a client with weight *w* is served *w*
  consecutive entries each time its turn comes around, then the rotation
  moves on (classic WRR, deterministic and O(1) per pop);
- **within a client** — priority (higher first), FIFO among equals, so a
  tenant can expedite its own urgent jobs without touching anyone else's
  share.

The scheduler additionally supports **load shedding**: when the daemon's
bounded queue is full and a higher-priority submission arrives,
:meth:`FairScheduler.shed_lowest` evicts the globally lowest-priority entry
(the most recently arrived among ties, so early submitters keep their
place).  The scheduler itself is not thread-safe; the daemon serializes
access under its own lock.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Dict, Generic, List, Optional, TypeVar

T = TypeVar("T")


class _ClientQueue(Generic[T]):
    """One client's priority queue plus its WRR bookkeeping."""

    __slots__ = ("name", "weight", "credit", "heap", "live")

    def __init__(self, name: str, weight: int) -> None:
        self.name = name
        self.weight = max(1, weight)
        self.credit = 0
        #: Heap of ``(-priority, seq, entry)`` — highest priority first,
        #: FIFO within a priority level.  Shed entries are marked dead and
        #: skipped lazily on pop.
        self.heap: List[list] = []
        self.live = 0

    def push(self, entry: "QueueEntry[T]") -> None:
        heapq.heappush(self.heap, [-entry.priority, entry.seq, entry])
        self.live += 1

    def pop(self) -> Optional["QueueEntry[T]"]:
        while self.heap:
            _, _, entry = heapq.heappop(self.heap)
            if entry.dead:
                continue
            self.live -= 1
            return entry
        return None


class QueueEntry(Generic[T]):
    """One queued item: payload plus its scheduling coordinates.

    ``trace_id`` rides along so queue-level decisions (shedding,
    displacement attribution) can be logged against the originating
    request's distributed trace without reaching into the payload.
    """

    __slots__ = ("item", "client", "priority", "seq", "dead", "trace_id")

    def __init__(self, item: T, client: str, priority: int, seq: int,
                 trace_id: Optional[str] = None) -> None:
        self.item = item
        self.client = client
        self.priority = priority
        self.seq = seq
        self.dead = False
        self.trace_id = trace_id


class FairScheduler(Generic[T]):
    """Weighted round-robin across per-client priority queues."""

    def __init__(self) -> None:
        self._queues: Dict[str, _ClientQueue[T]] = {}
        self._rotation: deque = deque()
        self._seq = itertools.count()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def push(
        self,
        item: T,
        client: str = "default",
        priority: int = 0,
        weight: int = 1,
        trace_id: Optional[str] = None,
    ) -> QueueEntry[T]:
        """Enqueue ``item`` for ``client``; returns its entry handle.

        ``weight`` updates the client's WRR share (last submission wins —
        a client's weight is its own knob, not a per-job property).
        """
        queue = self._queues.get(client)
        if queue is None:
            queue = self._queues[client] = _ClientQueue(client, weight)
        else:
            queue.weight = max(1, weight)
        entry = QueueEntry(item, client, priority, next(self._seq),
                           trace_id=trace_id)
        was_empty = queue.live == 0
        queue.push(entry)
        self._size += 1
        if was_empty:
            queue.credit = queue.weight
            self._rotation.append(client)
        return entry

    def pop(self) -> Optional[QueueEntry[T]]:
        """Dequeue the next entry in WRR order (``None`` when empty)."""
        while self._rotation:
            name = self._rotation[0]
            queue = self._queues[name]
            if queue.live == 0:
                self._rotation.popleft()
                continue
            entry = queue.pop()
            assert entry is not None
            self._size -= 1
            queue.credit -= 1
            if queue.live == 0:
                self._rotation.popleft()
            elif queue.credit <= 0:
                queue.credit = queue.weight
                self._rotation.rotate(-1)
            return entry
        return None

    def lowest(self) -> Optional[QueueEntry[T]]:
        """The globally lowest-priority entry (newest among ties)."""
        worst: Optional[QueueEntry[T]] = None
        for queue in self._queues.values():
            for _, _, entry in queue.heap:
                if entry.dead:
                    continue
                if worst is None or (entry.priority, -entry.seq) < (
                    worst.priority, -worst.seq
                ):
                    worst = entry
        return worst

    def remove(self, entry: QueueEntry[T]) -> bool:
        """Drop a queued entry (the shed path); returns whether it was live."""
        if entry.dead:
            return False
        entry.dead = True
        queue = self._queues.get(entry.client)
        if queue is not None:
            queue.live -= 1
        self._size -= 1
        return True

    def shed_lowest(self, below_priority: int) -> Optional[QueueEntry[T]]:
        """Evict the lowest-priority entry if strictly below the given bar."""
        worst = self.lowest()
        if worst is None or worst.priority >= below_priority:
            return None
        self.remove(worst)
        return worst

    def depths(self) -> Dict[str, int]:
        """Live queue depth per client (for ``/v1/stats``)."""
        return {
            name: queue.live
            for name, queue in sorted(self._queues.items())
            if queue.live
        }
