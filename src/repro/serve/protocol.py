"""Wire shapes of the ``/v1`` synthesis service API.

One place defines what a submission looks like and what states a served job
moves through, so the daemon, the HTTP layer, the load generator and the
tests all agree.  Everything is plain dicts/strings at the boundary — the
service keeps the repo's zero-dependency promise, so "schema" here means
careful parsing with explicit errors, not a validation library.

A submission is either:

- ``application/json``::

      {"problem": "<SyGuS-IF text>",        # required
       "name": "max2",                      # optional, for humans
       "solver": "dryadsynth",              # optional, server default
       "timeout": 5.0,                      # optional, server default/cap
       "client": "alice",                   # optional queue key, default
       "priority": 3,                       # optional, higher = sooner
       "weight": 2}                         # optional per-client WRR weight

- or raw SyGuS-IF text (any other content type); client/solver/priority
  then come from query parameters (``?client=...&priority=...``) or server
  defaults.

Job lifecycle: ``queued`` → ``dispatched`` → ``running`` → ``done``, with
two admission-time exits — ``done`` immediately on a cache hit, and
``shed`` when a full queue drops the lowest-priority entry to admit a
higher-priority one.  ``done`` and ``shed`` are terminal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

# Served-job states.
QUEUED = "queued"
DISPATCHED = "dispatched"
RUNNING = "running"
DONE = "done"
SHED = "shed"

TERMINAL_STATES = (DONE, SHED)

#: Bounds a submission may ask for; anything outside is a 400.
MAX_PRIORITY = 1_000_000
MAX_WEIGHT = 100
MAX_TIMEOUT = 3600.0


class BadRequest(ValueError):
    """A submission the server refuses to admit (HTTP 400)."""


@dataclass
class SubmitRequest:
    """One parsed, validated submission."""

    problem_text: str
    name: str = "job"
    solver: Optional[str] = None
    timeout: Optional[float] = None
    client: str = "default"
    priority: int = 0
    weight: int = 1
    #: Free-form labels echoed back in the job view (tenant ids, batch ids).
    labels: Dict[str, str] = field(default_factory=dict)
    #: W3C ``traceparent`` the caller wants this request to continue; taken
    #: from the HTTP header, a JSON field or a query parameter (that order).
    #: Malformed values never reject a submission — the daemon mints a
    #: fresh trace instead (:mod:`repro.obs.trace`).
    traceparent: Optional[str] = None


def parse_submission(
    body: bytes,
    content_type: str = "",
    query: Optional[Dict[str, str]] = None,
    traceparent: Optional[str] = None,
) -> SubmitRequest:
    """Parse a request body into a :class:`SubmitRequest`.

    JSON bodies carry every field inline; raw SyGuS-IF text takes the
    queue-shaping fields from ``query``.  ``traceparent`` is the HTTP
    header value (if any); an inline ``traceparent`` field in the body or
    query wins over it.  Raises :class:`BadRequest` with a human-readable
    message on anything malformed.
    """
    import json

    query = query or {}
    if not body or not body.strip():
        raise BadRequest("empty request body")
    if "application/json" in (content_type or ""):
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise BadRequest(f"malformed JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise BadRequest("JSON body must be an object")
        problem = payload.get("problem")
        if not isinstance(problem, str) or not problem.strip():
            raise BadRequest('missing required string field "problem"')
        fields = dict(payload)
    else:
        try:
            problem = body.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise BadRequest(f"body is not UTF-8 text: {exc}") from exc
        if not problem.strip():
            raise BadRequest("empty problem text")
        fields = dict(query)
    request = SubmitRequest(problem_text=problem)
    request.name = _string_field(fields, "name", request.name)
    solver = _string_field(fields, "solver", "")
    request.solver = solver or None
    request.client = _string_field(fields, "client", request.client) or "default"
    request.priority = _int_field(fields, "priority", 0, -MAX_PRIORITY,
                                  MAX_PRIORITY)
    request.weight = _int_field(fields, "weight", 1, 1, MAX_WEIGHT)
    timeout = fields.get("timeout")
    if timeout is not None and timeout != "":
        try:
            request.timeout = float(timeout)
        except (TypeError, ValueError) as exc:
            raise BadRequest(f'field "timeout" must be a number') from exc
        if not 0 < request.timeout <= MAX_TIMEOUT:
            raise BadRequest(
                f'field "timeout" must be in (0, {MAX_TIMEOUT:g}]'
            )
    labels = fields.get("labels")
    if labels is not None:
        if not isinstance(labels, dict) or not all(
            isinstance(k, str) and isinstance(v, str)
            for k, v in labels.items()
        ):
            raise BadRequest('field "labels" must map strings to strings')
        request.labels = dict(labels)
    inline_traceparent = _string_field(fields, "traceparent", "")
    request.traceparent = inline_traceparent or traceparent or None
    return request


def _string_field(fields: Dict, key: str, default: str) -> str:
    value = fields.get(key, default)
    if value is None:
        return default
    if not isinstance(value, str):
        raise BadRequest(f'field "{key}" must be a string')
    return value.strip() or default


def _int_field(fields: Dict, key: str, default: int, lo: int, hi: int) -> int:
    value = fields.get(key, default)
    if value is None or value == "":
        return default
    try:
        value = int(value)
    except (TypeError, ValueError) as exc:
        raise BadRequest(f'field "{key}" must be an integer') from exc
    if not lo <= value <= hi:
        raise BadRequest(f'field "{key}" must be in [{lo}, {hi}]')
    return value
