"""Streaming SLO accounting for the serving daemon.

The daemon promises a latency objective — "``target`` of requests finish
within ``objective_seconds`` of submission" — and this module measures it
the way an on-call rotation would consume it:

- **Latency sketches** (:class:`~repro.obs.metrics.QuantileSketch`): one
  overall submit→done sketch plus one per client and one per priority, all
  bounded-memory and mergeable, feeding the rolling p50/p95/p99 on
  ``/v1/stats`` and the ``summary`` series on ``/metrics``.
- **Burn rates**: violation rate over a *fast* (~5 min) and a *slow*
  (~1 h) window, each normalised by the error budget ``1 - target``.  A
  burn rate of 1.0 means the budget is being spent exactly as fast as the
  objective allows; multi-window alerting (fast > slow > 1) is the
  standard page condition.
- **Budget remaining**: the fraction of the slow window's error budget not
  yet consumed, clamped to [0, 1] — the single "how much slack is left"
  gauge the dashboard leads with.

Everything here is daemon-owned and always on (it does not depend on
``--telemetry``): the tracker costs a few dict updates per completion.
Thread-safety is the caller's problem by design — the daemon already
serialises completions under its own lock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.obs.metrics import (
    MetricsRegistry,
    QuantileSketch,
    register_metric_help,
)

#: Per-client/per-priority sketch families are capped; overflow tenants
#: aggregate under this label so a client-id cardinality attack cannot grow
#: the tracker without bound.
OVERFLOW_KEY = "_other"

register_metric_help(
    "serve.request_latency_seconds",
    "submit-to-done latency quantile sketch, all clients",
)
register_metric_help(
    "serve.slo_burn_rate_fast",
    "SLO error-budget burn rate over the fast window",
)
register_metric_help(
    "serve.slo_burn_rate_slow",
    "SLO error-budget burn rate over the slow window",
)
register_metric_help(
    "serve.slo_budget_remaining",
    "fraction of the slow-window SLO error budget not yet consumed",
)
register_metric_help(
    "serve.slo_violations",
    "requests that missed the latency objective",
)


@dataclass(frozen=True)
class SloPolicy:
    """The latency objective the daemon is held to."""

    objective_seconds: float = 5.0
    target: float = 0.95  # fraction of requests that must meet the objective
    fast_window: float = 300.0
    slow_window: float = 3600.0

    @property
    def error_budget(self) -> float:
        """The tolerated violation fraction (never zero: target is clamped)."""
        return max(1.0 - self.target, 1e-6)


class _WindowRing:
    """A time-bucketed (total, violations) ring over a sliding window.

    Memory is fixed (``buckets`` slots); old buckets are lazily recycled
    when their slot comes round again, so no background sweeper is needed.
    """

    __slots__ = ("bucket_len", "slots", "totals", "violations", "stamps")

    def __init__(self, window: float, buckets: int = 30) -> None:
        self.bucket_len = max(window / buckets, 1e-3)
        self.slots = buckets
        self.totals = [0] * buckets
        self.violations = [0] * buckets
        self.stamps: List[Optional[int]] = [None] * buckets

    def _slot(self, now: float) -> int:
        epoch = int(now / self.bucket_len)
        index = epoch % self.slots
        if self.stamps[index] != epoch:
            self.stamps[index] = epoch
            self.totals[index] = 0
            self.violations[index] = 0
        return index

    def observe(self, now: float, violated: bool) -> None:
        index = self._slot(now)
        self.totals[index] += 1
        if violated:
            self.violations[index] += 1

    def rates(self, now: float) -> Dict[str, float]:
        epoch = int(now / self.bucket_len)
        total = violations = 0
        for index in range(self.slots):
            stamp = self.stamps[index]
            if stamp is not None and 0 <= epoch - stamp < self.slots:
                total += self.totals[index]
                violations += self.violations[index]
        rate = violations / total if total else 0.0
        return {"total": total, "violations": violations, "rate": rate}


class SloTracker:
    """Streaming latency + SLO state for one daemon instance."""

    def __init__(
        self,
        policy: Optional[SloPolicy] = None,
        max_keys: int = 64,
    ) -> None:
        self.policy = policy or SloPolicy()
        self.max_keys = max_keys
        self.overall = QuantileSketch("serve.request_latency_seconds")
        self.per_client: Dict[str, QuantileSketch] = {}
        self.per_priority: Dict[str, QuantileSketch] = {}
        self.fast = _WindowRing(self.policy.fast_window)
        self.slow = _WindowRing(self.policy.slow_window)
        self.observed = 0
        self.violations = 0

    def _family(
        self, family: Dict[str, QuantileSketch], key: str
    ) -> QuantileSketch:
        sketch = family.get(key)
        if sketch is None:
            if len(family) >= self.max_keys:
                key = OVERFLOW_KEY
                sketch = family.get(key)
            if sketch is None:
                sketch = family.setdefault(key, QuantileSketch(key))
        return sketch

    def observe(
        self,
        latency: float,
        client: str,
        priority: int,
        now: float,
        registry: Optional[MetricsRegistry] = None,
    ) -> bool:
        """Fold one completed request in; returns True when it violated.

        ``now`` is the caller's monotonic clock (the daemon's), so the
        window rings and the daemon's event timestamps share a timeline.
        When a ``registry`` is supplied the overall sketch and the SLO
        gauges are mirrored into it, which is how the numbers reach
        ``/metrics`` without the tracker holding a registry reference.
        """
        violated = latency > self.policy.objective_seconds
        self.observed += 1
        if violated:
            self.violations += 1
        self.overall.observe(latency)
        self._family(self.per_client, client or "anonymous").observe(latency)
        self._family(self.per_priority, f"p{priority}").observe(latency)
        self.fast.observe(now, violated)
        self.slow.observe(now, violated)
        if registry is not None:
            self.publish(registry, now)
        return violated

    # -- Derived signals -------------------------------------------------------

    def burn_rate(self, window: _WindowRing, now: float) -> float:
        return window.rates(now)["rate"] / self.policy.error_budget

    def budget_remaining(self, now: float) -> float:
        remaining = 1.0 - self.burn_rate(self.slow, now)
        return min(1.0, max(0.0, remaining))

    def publish(self, registry: MetricsRegistry, now: float) -> None:
        """Mirror the tracker into a metrics registry (``/metrics`` surface)."""
        # The tracker's sketch is cumulative, so merging it repeatedly would
        # double-count: install the live sketch object itself instead.
        registry._sketches["serve.request_latency_seconds"] = self.overall
        registry.counter("serve.slo_violations").value = self.violations
        registry.gauge("serve.slo_burn_rate_fast").set(
            round(self.burn_rate(self.fast, now), 6)
        )
        registry.gauge("serve.slo_burn_rate_slow").set(
            round(self.burn_rate(self.slow, now), 6)
        )
        registry.gauge("serve.slo_budget_remaining").set(
            round(self.budget_remaining(now), 6)
        )

    def snapshot(self, now: float) -> Dict:
        """The ``/v1/stats`` block: objective, burn rates, rolling quantiles."""
        fast = self.fast.rates(now)
        slow = self.slow.rates(now)
        return {
            "objective_seconds": self.policy.objective_seconds,
            "target": self.policy.target,
            "observed": self.observed,
            "violations": self.violations,
            "burn_rate_fast": round(fast["rate"] / self.policy.error_budget, 4),
            "burn_rate_slow": round(slow["rate"] / self.policy.error_budget, 4),
            "budget_remaining": round(self.budget_remaining(now), 4),
            "window_fast": fast,
            "window_slow": slow,
        }

    def latency_snapshot(self) -> Dict:
        """Rolling percentiles, overall and per client/priority."""

        def describe(sketch: QuantileSketch) -> Dict:
            data = sketch.percentiles()
            data["count"] = sketch.count
            data["mean"] = round(sketch.mean, 6)
            return data

        return {
            "overall": describe(self.overall),
            "per_client": {
                key: describe(sketch)
                for key, sketch in sorted(self.per_client.items())
            },
            "per_priority": {
                key: describe(sketch)
                for key, sketch in sorted(self.per_priority.items())
            },
        }
