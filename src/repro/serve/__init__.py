"""`repro.serve` — synthesis as a service.

The long-lived daemon behind ``dryadsynth serve``: SyGuS problems arrive
over HTTP (JSON or raw SyGuS-IF text), pass cache-first admission against
the fingerprint :class:`~repro.service.cache.ResultCache`, queue per client
under a weighted-round-robin fair scheduler with priorities, and execute on
one warm :class:`~repro.service.pool.WorkerPool` that lives as long as the
daemon.  Backpressure is explicit (HTTP 429 + ``Retry-After`` when the
bounded queue is full, load-shedding of the lowest-priority queued job when
a higher-priority one arrives), and ``SIGTERM`` triggers a graceful drain:
stop admitting, finish every accepted job, persist results, exit.

Modules:

- :mod:`repro.serve.protocol` — request/ticket/record shapes shared by the
  daemon, the HTTP layer and the load generator;
- :mod:`repro.serve.queues` — per-client priority queues under the
  weighted-round-robin :class:`~repro.serve.queues.FairScheduler`;
- :mod:`repro.serve.daemon` — :class:`~repro.serve.daemon.SynthesisDaemon`,
  the admission/dispatch/drain state machine;
- :mod:`repro.serve.http` — the ``/v1`` API mounted on the telemetry
  server (one listener also serves ``/metrics``, ``/jobs``, ``/healthz``);
- :mod:`repro.serve.loadgen` — the concurrent-client load generator whose
  p50/p99 submit-to-result latency feeds ``bench-compare``.

See docs/SERVICE.md ("Running the daemon") for endpoints and semantics.
"""

from repro.serve.daemon import ServeSettings, SynthesisDaemon
from repro.serve.http import build_server
from repro.serve.queues import FairScheduler

__all__ = [
    "FairScheduler",
    "ServeSettings",
    "SynthesisDaemon",
    "build_server",
]
