"""The synthesis daemon: admission, fair dispatch, and graceful drain.

:class:`SynthesisDaemon` composes the pieces PRs 1–5 built into a
long-lived multi-tenant service:

- **Cache-first admission** — every submission is fingerprinted
  (:mod:`repro.service.fingerprint`) and looked up in the shared
  :class:`~repro.service.cache.ResultCache` *before* it can queue; a hit
  completes the job at admission time without ever touching a worker, so
  resubmissions are O(one disk read).
- **Fair queueing** — admitted jobs enter per-client priority queues under
  the weighted-round-robin :class:`~repro.serve.queues.FairScheduler`; a
  dispatcher thread feeds the :class:`~repro.service.pool.WorkerPool` one
  job per free worker slot, so fairness is decided here (per client), not
  by pool FIFO order.
- **Backpressure and shedding** — when ``queued >= max_queue`` a
  submission is rejected (HTTP 429 + ``Retry-After`` derived from observed
  service rate) unless it outranks the lowest-priority queued job, in
  which case that job is shed (terminal ``shed`` state) and the newcomer
  admitted: under sustained pressure the queue keeps the highest-value
  work.
- **Warm workers** — one pool lives for the daemon's lifetime; worker
  processes are reused across jobs and clients (``/v1/stats`` reports
  spawns vs. dispatches as the reuse evidence).
- **Graceful drain** — :meth:`request_drain` (wired to ``SIGTERM`` by the
  CLI) stops admission (503), lets the dispatcher finish every accepted
  job, flushes the results journal, then closes the pool.  Zero accepted
  jobs are lost.

Thread model: HTTP handler threads call :meth:`submit`/:meth:`job_view`;
one dispatcher thread moves jobs scheduler → pool; the pool's scheduler
thread calls back :meth:`_on_pool_event`.  All daemon state is guarded by
one condition variable; callbacks never run under pool locks, so the lock
order is strictly daemon → pool.
"""

from __future__ import annotations

import json
import logging
import os
import threading
import time
from collections import deque
from typing import Dict, List, Optional

from repro import obs
from repro.obs import trace
from repro.obs.log import jlog
from repro.serve import protocol
from repro.serve.protocol import BadRequest, SubmitRequest
from repro.serve.queues import FairScheduler, QueueEntry
from repro.serve.slo import SloPolicy, SloTracker
from repro.service.cache import ResultCache
from repro.service.jobs import JobResult, SynthesisJob
from repro.service.pool import WorkerPool

logger = logging.getLogger(__name__)

#: Daemon lifecycle.
RUNNING = "running"
DRAINING = "draining"
STOPPED = "stopped"


class ServeSettings:
    """Configuration for one daemon instance (CLI flags map 1:1)."""

    def __init__(
        self,
        workers: int = 2,
        solver: str = "dryadsynth",
        timeout: float = 10.0,
        max_queue: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        results_out: Optional[str] = None,
        flight_dir: Optional[str] = None,
        retries: int = 1,
        telemetry: bool = False,
        live_cap: int = 2048,
        live_ttl: Optional[float] = 900.0,
        history_cap: int = 4096,
        slo: Optional[SloPolicy] = None,
        recent_cap: int = 32,
        max_rss_mb: Optional[float] = None,
        leak_window: int = 16,
        leak_slope_mb: float = 8.0,
    ) -> None:
        self.workers = max(1, workers)
        self.solver = solver
        self.timeout = timeout
        #: Bound on *queued* (admitted, not yet dispatched) jobs — the
        #: backpressure threshold.  Defaults to 4 slots per worker.
        self.max_queue = max_queue if max_queue is not None else 4 * self.workers
        self.cache = cache
        self.results_out = results_out
        self.flight_dir = flight_dir
        self.retries = retries
        self.telemetry = telemetry
        self.live_cap = live_cap
        self.live_ttl = live_ttl
        #: Terminal served jobs kept for ``GET /v1/jobs/<id>`` history.
        self.history_cap = max(16, history_cap)
        #: Latency objective the SLO layer measures against.  Defaults to
        #: "95% of requests finish within the per-job timeout".
        self.slo = slo if slo is not None else SloPolicy(
            objective_seconds=self.timeout
        )
        #: Terminal jobs surfaced in the ``/v1/stats`` ``recent`` block —
        #: the trace-id lookup surface for operators.
        self.recent_cap = max(4, recent_cap)
        #: Per-worker soft RSS budget (MiB) forwarded to the pool; a worker
        #: over budget is killed and its job completes as ``oom_budget``.
        self.max_rss_mb = max_rss_mb
        #: Leak watch: daemon RSS is sampled once per completed request into
        #: a ring of this many points; when the least-squares slope over the
        #: full ring exceeds ``leak_slope_mb`` MiB *per request*, ``/healthz``
        #: reports the ``rss_leak`` condition as tripped (degraded).
        self.leak_window = max(4, leak_window)
        self.leak_slope_mb = leak_slope_mb


class ServeJob:
    """Daemon-side record of one submission, with a watchable event log."""

    __slots__ = (
        "id", "name", "client", "solver", "priority", "labels",
        "fingerprint", "state", "result", "from_cache", "submitted_at",
        "finished_at", "events", "cond", "entry", "pool_job_id",
        "trace", "dispatched_at", "queue_wait",
    )

    def __init__(self, serve_id: str, request: SubmitRequest, solver: str,
                 fingerprint: str) -> None:
        self.id = serve_id
        self.name = request.name
        self.client = request.client
        self.solver = solver
        self.priority = request.priority
        self.labels = request.labels
        self.fingerprint = fingerprint
        self.state = protocol.QUEUED
        self.result: Optional[Dict] = None
        self.from_cache = False
        self.submitted_at = time.time()
        self.finished_at: Optional[float] = None
        self.events: List[Dict] = []
        self.cond = threading.Condition()
        self.entry: Optional[QueueEntry] = None
        self.pool_job_id: Optional[str] = None
        #: The request's distributed-trace context, minted (or adopted from
        #: the caller's ``traceparent``) at admission.
        self.trace: Optional[trace.TraceContext] = None
        self.dispatched_at: Optional[float] = None
        self.queue_wait: Optional[float] = None

    @property
    def trace_id(self) -> Optional[str]:
        return self.trace.trace_id if self.trace is not None else None

    @property
    def terminal(self) -> bool:
        return self.state in protocol.TERMINAL_STATES

    @property
    def latency(self) -> Optional[float]:
        if self.finished_at is None:
            return None
        return round(self.finished_at - self.submitted_at, 4)

    def record_event(self, state: str, **extra) -> None:
        with self.cond:
            self.state = state
            self.events.append({
                "seq": len(self.events),
                "ts": round(time.time(), 4),
                "state": state,
                **extra,
            })
            self.cond.notify_all()

    def wait_events(self, after_seq: int, timeout: float) -> List[Dict]:
        """Events with ``seq > after_seq``, blocking up to ``timeout``."""
        deadline = time.monotonic() + timeout
        with self.cond:
            while True:
                fresh = [e for e in self.events if e["seq"] > after_seq]
                if fresh or self.terminal:
                    return fresh
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return []
                self.cond.wait(remaining)

    def view(self, include_events: bool = False) -> Dict:
        with self.cond:
            payload = {
                "id": self.id,
                "name": self.name,
                "client": self.client,
                "solver": self.solver,
                "priority": self.priority,
                "state": self.state,
                "from_cache": self.from_cache,
                "fingerprint": self.fingerprint,
                "submitted_at": round(self.submitted_at, 4),
                "latency": self.latency,
                "queue_wait": self.queue_wait,
                "trace_id": self.trace_id,
                "traceparent": (
                    self.trace.traceparent() if self.trace else None
                ),
                "result": self.result,
            }
            if self.labels:
                payload["labels"] = dict(self.labels)
            if include_events:
                payload["events"] = list(self.events)
        return payload


class SubmitOutcome:
    """What admission decided: the job (if admitted) or a rejection."""

    __slots__ = ("job", "code", "error", "retry_after", "shed_job")

    def __init__(self, job=None, code=200, error=None, retry_after=None,
                 shed_job=None):
        self.job = job
        self.code = code
        self.error = error
        self.retry_after = retry_after
        self.shed_job = shed_job


class SynthesisDaemon:
    """Long-lived synthesis service over one warm worker pool."""

    def __init__(self, settings: Optional[ServeSettings] = None) -> None:
        self.settings = settings or ServeSettings()
        self.started_at = time.monotonic()
        self.pool = WorkerPool(
            workers=self.settings.workers,
            max_retries=self.settings.retries,
            cache=self.settings.cache,
            flight_dir=self.settings.flight_dir,
            queue_size=self.settings.max_queue,
            live_cap=self.settings.live_cap,
            live_ttl=self.settings.live_ttl,
            # The daemon re-roots each worker tree under its own
            # ``serve.request`` span in _finish; letting the pool merge too
            # would duplicate every span.
            merge_telemetry=False,
            max_rss_mb=self.settings.max_rss_mb,
        )
        #: Leak watch ring: ``(completed_count, daemon_rss_bytes)`` samples,
        #: one per finished request (see :meth:`_leak_slope`).
        self._rss_samples: deque = deque(maxlen=self.settings.leak_window)
        #: Streaming latency sketches + SLO burn accounting (daemon-owned,
        #: always on; guarded by ``self._lock``).
        self.slo = SloTracker(self.settings.slo)
        self._recent: deque = deque(maxlen=self.settings.recent_cap)
        self.scheduler: FairScheduler = FairScheduler()
        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)
        self._jobs: Dict[str, ServeJob] = {}
        #: serve-id → SynthesisJob for queued-but-not-dispatched work.
        self._pending_jobs: Dict[str, SynthesisJob] = {}
        self._job_order: List[str] = []
        self._seq = 0
        self._inflight = 0
        self.state = RUNNING
        self._drained = threading.Event()
        # Admission/outcome counters (mirrored into serve.* metrics).
        self.accepted = 0
        self.completed = 0
        self.rejected = 0
        self.shed = 0
        self.cache_admissions = 0
        #: Trailing per-job service walls feeding the Retry-After estimate.
        self._recent_walls: List[float] = []
        self._results_handle = None
        self._results_lock = threading.Lock()
        if self.settings.results_out:
            self._results_handle = open(self.settings.results_out, "a")
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-serve-dispatch",
            daemon=True,
        )
        self._dispatcher.start()

    # -- Admission (HTTP handler threads) ---------------------------------------

    def submit(self, request: SubmitRequest) -> SubmitOutcome:
        """Admit, cache-complete, shed-and-admit, or reject a submission."""
        if self.state != RUNNING:
            return SubmitOutcome(
                code=503, error=f"daemon is {self.state}; not admitting jobs",
                retry_after=None,
            )
        solver = request.solver or self.settings.solver
        timeout = request.timeout or self.settings.timeout
        job = SynthesisJob(
            problem_text=request.problem_text,
            solver=solver,
            timeout=timeout,
            name=request.name,
            telemetry=self.settings.telemetry,
        )
        try:
            fingerprint = job.fingerprint()
        except Exception as exc:  # noqa: BLE001 - parse errors are client errors
            return SubmitOutcome(
                code=400, error=f"unparseable problem: {exc}"
            )
        # Mint (or continue) the request's distributed-trace context and
        # ship it across the process boundary in the job params — params
        # are not part of the fingerprint, so cache identity is unchanged.
        ctx = trace.continue_or_mint(request.traceparent)
        trace.inject(job.params, ctx)
        with self._lock:
            self._seq += 1
            serve_job = ServeJob(f"sv-{self._seq}", request, solver,
                                 fingerprint)
            serve_job.trace = ctx
            self._register_locked(serve_job)

        # Cache-first admission: a hit never touches the queue or a worker.
        if self.settings.cache is not None:
            hit = self.settings.cache.get(fingerprint)
            if hit is not None:
                result = JobResult.from_json(hit.to_json())
                result.from_cache = True
                result.telemetry = None
                with self._lock:
                    self.accepted += 1
                    self.cache_admissions += 1
                serve_job.from_cache = True
                self._audit("cache_hit", serve_job)
                self._finish(serve_job, result)
                obs.metrics().counter("serve.cache_admissions").inc()
                return SubmitOutcome(job=serve_job, code=200)

        with self._work:
            shed_job = None
            if len(self.scheduler) >= self.settings.max_queue:
                victim = self.scheduler.shed_lowest(request.priority)
                if victim is None:
                    self.rejected += 1
                    retry_after = self._retry_after_locked()
                    obs.metrics().counter("serve.rejected").inc()
                    self._forget_locked(serve_job)
                    self._audit("rejected", serve_job, code=429,
                                retry_after=retry_after,
                                queued=len(self.scheduler))
                    return SubmitOutcome(
                        code=429,
                        error="queue full and no lower-priority job to shed",
                        retry_after=retry_after,
                    )
                shed_job = victim.item
            self.accepted += 1
            serve_job.entry = self.scheduler.push(
                serve_job, client=request.client,
                priority=request.priority, weight=request.weight,
                trace_id=ctx.trace_id,
            )
            job.name = request.name
            serve_job.pool_job_id = None
            self._pending_jobs[serve_job.id] = job
            self._work.notify_all()
        obs.metrics().counter("serve.accepted").inc()
        serve_job.record_event(protocol.QUEUED, client=request.client,
                               priority=request.priority,
                               trace_id=ctx.trace_id)
        self._audit(
            "admitted", serve_job,
            displaced=shed_job.id if shed_job is not None else None,
        )
        jlog(logger, "serve.accepted", serve_id=serve_job.id,
             client=request.client, problem=request.name,
             priority=request.priority, trace_id=ctx.trace_id)
        if shed_job is not None:
            self._mark_shed(shed_job, displaced_by=serve_job)
        return SubmitOutcome(job=serve_job, code=202, shed_job=shed_job)

    def _audit(self, decision: str, serve_job: ServeJob, **extra) -> None:
        """Emit one admission audit record on the structured log stream.

        Decisions: ``admitted`` (with ``displaced`` attribution when the
        admission shed someone), ``cache_hit``, ``shed`` (with
        ``displaced_by``), ``rejected`` (with the 429's ``retry_after``).
        Every record carries the request's ``trace_id``, so the audit log
        joins against spans, events and ``/v1/stats``.
        """
        fields = {k: v for k, v in extra.items() if v is not None}
        jlog(logger, "serve.audit", decision=decision,
             serve_id=serve_job.id, client=serve_job.client,
             problem=serve_job.name, priority=serve_job.priority,
             trace_id=serve_job.trace_id, **fields)
        obs.metrics().counter(f"serve.audit.{decision}").inc()

    def _register_locked(self, serve_job: ServeJob) -> None:
        self._jobs[serve_job.id] = serve_job
        self._job_order.append(serve_job.id)
        overflow = len(self._job_order) - self.settings.history_cap
        if overflow > 0:
            kept: List[str] = []
            for job_id in self._job_order:
                job = self._jobs.get(job_id)
                if overflow > 0 and job is not None and job.terminal:
                    del self._jobs[job_id]
                    overflow -= 1
                else:
                    kept.append(job_id)
            self._job_order = kept

    def _forget_locked(self, serve_job: ServeJob) -> None:
        """Remove a never-admitted record (rejected submissions)."""
        self._jobs.pop(serve_job.id, None)
        try:
            self._job_order.remove(serve_job.id)
        except ValueError:
            pass

    def _retry_after_locked(self) -> int:
        """Seconds until a queue slot should free up, from observed rate."""
        walls = self._recent_walls[-32:]
        per_job = (sum(walls) / len(walls)) if walls else self.settings.timeout
        eta = per_job * (len(self.scheduler) + 1) / self.settings.workers
        return max(1, min(300, int(eta + 0.5)))

    def _mark_shed(self, serve_job: ServeJob,
                   displaced_by: Optional[ServeJob] = None) -> None:
        with self._lock:
            self.shed += 1
            self._pending_jobs.pop(serve_job.id, None)
            self._remember_locked(serve_job, status="shed",
                                  state=protocol.SHED)
        obs.metrics().counter("serve.shed").inc()
        serve_job.record_event(protocol.SHED,
                               reason="displaced by higher-priority job",
                               trace_id=serve_job.trace_id)
        self._audit(
            "shed", serve_job,
            displaced_by=displaced_by.id if displaced_by else None,
        )
        jlog(logger, "serve.shed", serve_id=serve_job.id,
             client=serve_job.client, priority=serve_job.priority,
             trace_id=serve_job.trace_id)
        self._persist(serve_job)

    def _remember_locked(self, serve_job: ServeJob, status: str,
                         state: Optional[str] = None) -> None:
        """Append a terminal summary to the ``/v1/stats`` recent ring."""
        self._recent.append({
            "id": serve_job.id,
            "trace_id": serve_job.trace_id,
            "client": serve_job.client,
            "problem": serve_job.name,
            "priority": serve_job.priority,
            "state": state or serve_job.state,
            "status": status,
            "latency": serve_job.latency,
            "queue_wait": serve_job.queue_wait,
            "from_cache": serve_job.from_cache,
        })

    # -- Dispatch (dispatcher thread) -------------------------------------------

    def _dispatch_loop(self) -> None:
        while True:
            with self._work:
                while True:
                    if self.state == STOPPED:
                        return
                    draining = self.state == DRAINING
                    have_work = (len(self.scheduler) > 0
                                 and self._inflight < self.settings.workers)
                    if have_work:
                        break
                    if draining and not self.scheduler and self._inflight == 0:
                        self._finish_drain_locked()
                        return
                    self._work.wait(timeout=0.25)
                entry = self.scheduler.pop()
                assert entry is not None
                serve_job: ServeJob = entry.item
                job = self._pending_jobs.pop(serve_job.id, None)
                if job is None:
                    continue  # shed between pop attempts
                self._inflight += 1
            serve_job.dispatched_at = time.time()
            serve_job.queue_wait = round(
                serve_job.dispatched_at - serve_job.submitted_at, 4
            )
            serve_job.record_event(protocol.DISPATCHED,
                                   queue_wait=serve_job.queue_wait,
                                   trace_id=serve_job.trace_id)
            jlog(logger, "serve.dispatched", serve_id=serve_job.id,
                 client=serve_job.client, queue_wait=serve_job.queue_wait,
                 trace_id=serve_job.trace_id)
            self.pool.submit(
                job,
                on_complete=lambda result, sj=serve_job: self._on_pool_complete(
                    sj, result
                ),
                on_assign=lambda pj, sj=serve_job: sj.record_event(
                    protocol.RUNNING
                ),
            )
            with self._lock:
                serve_job.pool_job_id = job.job_id

    def _on_pool_complete(self, serve_job: ServeJob, result: JobResult) -> None:
        # Finish (and persist) BEFORE releasing the in-flight slot: the
        # drain path closes the results journal the moment inflight hits
        # zero, and "drained" promises every accepted job was persisted.
        self._finish(serve_job, result)
        with self._work:
            self._inflight -= 1
            if result.wall_time:
                self._recent_walls.append(result.wall_time)
                del self._recent_walls[:-64]
            self._work.notify_all()

    def _finish(self, serve_job: ServeJob, result: JobResult) -> None:
        serve_job.result = _result_view(result)
        serve_job.from_cache = bool(result.from_cache)
        serve_job.finished_at = time.time()
        latency = serve_job.latency or 0.0
        serve_job.record_event(protocol.DONE, status=result.status,
                               from_cache=bool(result.from_cache),
                               trace_id=serve_job.trace_id)
        registry = obs.metrics()
        from repro.obs import rusage

        rss = rusage.process_rss_bytes()
        with self._lock:
            self.completed += 1
            self.slo.observe(latency, serve_job.client, serve_job.priority,
                             time.monotonic(), registry=registry)
            self._remember_locked(serve_job, status=result.status,
                                  state=protocol.DONE)
            if rss is not None:
                self._rss_samples.append((self.completed, rss))
        registry.counter("serve.jobs_completed").inc()
        registry.counter(f"serve.status.{result.status}").inc()
        if serve_job.latency is not None:
            registry.histogram("serve.latency_seconds").observe(
                serve_job.latency
            )
        self._record_request_spans(serve_job, result)
        jlog(logger, "serve.completed", serve_id=serve_job.id,
             client=serve_job.client, problem=serve_job.name,
             status=result.status, latency=serve_job.latency,
             from_cache=bool(result.from_cache),
             trace_id=serve_job.trace_id)
        self._persist(serve_job)

    def _record_request_spans(self, serve_job: ServeJob,
                              result: JobResult) -> None:
        """Record the end-to-end ``serve.request`` span tree for one request.

        The tree is: ``serve.request`` (submit→done, trace-id attributed)
        with a ``serve.queue_wait`` child covering admission→dispatch, and
        the worker's whole re-rooted span tree grafted underneath — so
        ``dryadsynth explain`` and the Chrome trace render one tree per
        request, queue wait through SMT rounds.
        """
        recorder = obs.active()
        if recorder is None:
            return
        trace_attrs = (
            serve_job.trace.span_attrs() if serve_job.trace else {}
        )
        latency = serve_job.latency or 0.0
        start = max(0.0, time.monotonic() - recorder.epoch - latency)
        request_span = recorder.record_span(
            "serve.request",
            wall=latency,
            start=start,
            serve_id=serve_job.id,
            client=serve_job.client,
            priority=serve_job.priority,
            problem=serve_job.name,
            solver=serve_job.solver,
            from_cache=bool(result.from_cache),
            job_status=result.status,
            **trace_attrs,
        )
        if serve_job.queue_wait:
            recorder.record_span(
                "serve.queue_wait",
                wall=serve_job.queue_wait,
                start=start,
                parent_id=request_span,
                client=serve_job.client,
                **trace_attrs,
            )
        if result.telemetry:
            obs.merge_job_telemetry(
                result.telemetry,
                name=serve_job.name or "job",
                status=result.status,
                wall_time=result.wall_time,
                parent_id=request_span,
                attrs=trace_attrs,
            )

    def _persist(self, serve_job: ServeJob) -> None:
        """Append the terminal record to the results journal (if any)."""
        if self._results_handle is None:
            return
        record = serve_job.view()
        with self._results_lock:
            handle = self._results_handle
            if handle is None:
                return
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            handle.flush()

    # -- Introspection (HTTP handler threads) -----------------------------------

    def job_view(self, serve_id: str,
                 include_events: bool = False) -> Optional[Dict]:
        with self._lock:
            serve_job = self._jobs.get(serve_id)
        if serve_job is None:
            return None
        return serve_job.view(include_events=include_events)

    def get_job(self, serve_id: str) -> Optional[ServeJob]:
        with self._lock:
            return self._jobs.get(serve_id)

    def stats(self) -> Dict:
        now = time.monotonic()
        with self._lock:
            queued = len(self.scheduler)
            payload = {
                "state": self.state,
                "uptime_seconds": round(now - self.started_at, 3),
                "accepted": self.accepted,
                "completed": self.completed,
                "rejected": self.rejected,
                "shed": self.shed,
                "cache_admissions": self.cache_admissions,
                "queued": queued,
                "inflight": self._inflight,
                "max_queue": self.settings.max_queue,
                "queue_depths": self.scheduler.depths(),
                "latency": self.slo.latency_snapshot(),
                "slo": self.slo.snapshot(now),
                "recent": list(self._recent),
            }
        payload["pool"] = self.pool.pool_stats()
        registry = obs.metrics()
        memo_hits = registry.counter("smt.memo_hits").value
        memo_misses = registry.counter("smt.memo_misses").value
        payload["memo"] = {
            "hits": memo_hits,
            "misses": memo_misses,
            "hit_rate": _rate(memo_hits, memo_misses),
        }
        cache = self.settings.cache
        if cache is not None:
            payload["cache"] = {
                "hits": cache.hits, "misses": cache.misses,
                "evictions": cache.evictions,
                "hit_rate": _rate(cache.hits, cache.misses),
            }
        payload["memory"] = self.memory_stats()
        return payload

    def memory_stats(self) -> Dict:
        """The ``/v1/stats`` memory block: daemon/worker RSS + leak trend."""
        from repro.obs import rusage

        registry = obs.metrics()
        slope = self._leak_slope()
        with self._lock:
            window = len(self._rss_samples)
        return {
            "daemon_rss_bytes": rusage.process_rss_bytes(),
            "daemon_peak_rss_bytes": rusage.self_peak_rss_bytes(),
            "children_peak_rss_bytes": rusage.children_peak_rss_bytes(),
            "pool_peak_rss_bytes":
                registry.gauge("pool.peak_rss_bytes").value or None,
            "max_rss_mb": self.settings.max_rss_mb,
            "leak_slope_bytes_per_request":
                round(slope, 1) if slope is not None else None,
            "leak_window": window,
        }

    def _leak_slope(self) -> Optional[float]:
        """Least-squares RSS slope (bytes per completed request).

        Computed over the leak-watch ring; ``None`` until the ring is full —
        a short-lived spike should not trip the condition, only a trend
        sustained across the whole window.
        """
        with self._lock:
            samples = list(self._rss_samples)
        if len(samples) < self.settings.leak_window:
            return None
        n = len(samples)
        mean_x = sum(x for x, _ in samples) / n
        mean_y = sum(y for _, y in samples) / n
        var = sum((x - mean_x) ** 2 for x, _ in samples)
        if var == 0:
            return 0.0
        cov = sum((x - mean_x) * (y - mean_y) for x, y in samples)
        return cov / var

    def health(self) -> Dict:
        """``/healthz`` provider: degraded on dead workers or saturation.

        Degraded responses name *which* condition tripped, machine-readably:
        the ``conditions`` map always carries every known condition with a
        ``tripped`` flag and a detail payload, and ``reasons`` keeps the
        human-readable strings.
        """
        with self._lock:
            queued = len(self.scheduler)
            state = self.state
            inflight = self._inflight
        alive = len(self.pool.worker_pids())
        expected = min(self.settings.workers, inflight)
        conditions = {
            "dead_workers": {
                "tripped": alive < expected,
                "workers_alive": alive,
                "workers_busy": expected,
            },
            "queue_saturated": {
                "tripped": queued >= self.settings.max_queue,
                "queued": queued,
                "max_queue": self.settings.max_queue,
            },
            "draining": {
                "tripped": state != RUNNING,
                "state": state,
            },
        }
        slope = self._leak_slope()
        slope_limit = self.settings.leak_slope_mb * 1024 * 1024
        conditions["rss_leak"] = {
            "tripped": slope is not None and slope > slope_limit,
            "slope_bytes_per_request":
                round(slope, 1) if slope is not None else None,
            "slope_limit_bytes_per_request": slope_limit,
            "window": self.settings.leak_window,
        }
        reasons = []
        if conditions["dead_workers"]["tripped"]:
            reasons.append(
                f"dead workers: {alive} alive < {expected} busy"
            )
        if conditions["queue_saturated"]["tripped"]:
            reasons.append(
                f"queue saturated: {queued}/{self.settings.max_queue}"
            )
        if conditions["draining"]["tripped"]:
            reasons.append(f"not admitting: {state}")
        if conditions["rss_leak"]["tripped"]:
            reasons.append(
                "rss leak: daemon RSS growing "
                f"{(slope or 0.0) / (1024 * 1024):.1f}MB/request over the "
                f"last {self.settings.leak_window} requests"
            )
        payload = {
            "status": "ok" if not reasons else "degraded",
            "state": state,
            "queued": queued,
            "inflight": inflight,
            "workers_alive": alive,
            "conditions": conditions,
        }
        if reasons:
            payload["reasons"] = reasons
        return payload

    # -- Drain / shutdown -------------------------------------------------------

    def request_drain(self) -> None:
        """Stop admitting; finish accepted jobs; then shut the pool down.

        Idempotent and non-blocking — the dispatcher thread performs the
        actual drain; :meth:`wait_stopped` observes completion.
        """
        with self._work:
            if self.state != RUNNING:
                return
            self.state = DRAINING
            self._work.notify_all()
        jlog(logger, "serve.draining")
        obs.metrics().counter("serve.drains").inc()

    def _finish_drain_locked(self) -> None:
        self.state = STOPPED
        jlog(logger, "serve.drained", completed=self.completed)
        # Close the journal before announcing: "drained" means persisted.
        with self._results_lock:
            if self._results_handle is not None:
                self._results_handle.close()
                self._results_handle = None
        self._drained.set()

    def wait_stopped(self, timeout: Optional[float] = None) -> bool:
        if not self._drained.wait(timeout):
            return False
        self.pool.close()
        return True

    def stop(self, drain: bool = True, timeout: float = 60.0) -> None:
        """Synchronous shutdown for tests/CLI: drain (or abort) then close."""
        if drain:
            self.request_drain()
            if self.wait_stopped(timeout):
                return
        # Hard stop: cancel queued work, then close the pool.
        with self._work:
            self.state = STOPPED
            while True:
                entry = self.scheduler.pop()
                if entry is None:
                    break
                self._pending_jobs.pop(entry.item.id, None)
            self._work.notify_all()
        self._drained.set()
        with self._results_lock:
            if self._results_handle is not None:
                self._results_handle.close()
                self._results_handle = None
        self.pool.close()


def _rate(hits: int, misses: int) -> float:
    total = hits + misses
    return round(hits / total, 4) if total else 0.0


def _result_view(result: JobResult) -> Dict:
    """The client-facing result record (telemetry payloads stay server-side)."""
    record = result.to_json()
    record.pop("telemetry", None)
    return record
