"""``dryadsynth top`` — a live ANSI dashboard over a running daemon.

Polls ``/v1/stats`` and ``/healthz`` and redraws a one-screen fleet view:
health conditions, admission counters, queue depths per client, rolling
latency percentiles per client/priority (from the daemon's streaming
quantile sketches), SLO burn rates and budget, and the most recent
requests with their trace ids — the id an operator copies into the
structured log, ``dryadsynth explain`` or Perfetto to follow one request
end to end.

Rendering is a pure function (:func:`render_dashboard`) over the two JSON
payloads, so tests exercise the full surface without a terminal; the CLI
loop just clears the screen and reprints.  ``--once`` prints a single
frame without ANSI control codes (scripting/CI-friendly).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import urllib.error
import urllib.request
from typing import Dict, List, Optional

#: Clear screen + home cursor (standard ANSI; what ``watch`` does).
CLEAR = "\x1b[2J\x1b[H"

BOLD = "\x1b[1m"
RED = "\x1b[31m"
GREEN = "\x1b[32m"
RESET = "\x1b[0m"


def _fetch_json(url: str, timeout: float = 5.0) -> Optional[Dict]:
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return json.loads(response.read().decode())
    except urllib.error.HTTPError as exc:
        # /healthz answers 503 with a JSON body while degraded — that body
        # is exactly what the dashboard wants to show.
        try:
            return json.loads(exc.read().decode())
        except (ValueError, OSError):
            return None
    except (OSError, ValueError):
        return None


def _bar(value: float, width: int = 20) -> str:
    filled = int(round(min(1.0, max(0.0, value)) * width))
    return "#" * filled + "." * (width - filled)


def _num(value, default: float = 0.0) -> float:
    """A numeric field that tolerates missing/None/garbage values."""
    return value if isinstance(value, (int, float)) else default


def _fmt(value, spec: str = "") -> str:
    """Format a possibly-missing value; ``None``/non-numeric render as ``-``.

    A stripped or older daemon may omit any key (or send an explicit null);
    the dashboard's contract is to render ``-`` there, never to crash.
    """
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        return "-"
    return format(value, spec)


def _fmt_mb(value) -> str:
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        return "-"
    return f"{value / (1024 * 1024):.0f}MB"


def _fmt_latency(block: Optional[Dict]) -> str:
    block = block or {}
    return (
        f"p50={_fmt(block.get('p50'), '>8.4f'):>8}  "
        f"p90={_fmt(block.get('p90'), '>8.4f'):>8}  "
        f"p95={_fmt(block.get('p95'), '>8.4f'):>8}  "
        f"p99={_fmt(block.get('p99'), '>8.4f'):>8}  "
        f"n={_fmt(block.get('count'))}"
    )


def render_dashboard(
    stats: Optional[Dict],
    health: Optional[Dict],
    url: str = "",
    color: bool = False,
) -> str:
    """One frame of the dashboard as plain text.

    Tolerates partial payloads (missing blocks render as absent sections)
    and ``None`` (daemon unreachable), so a flapping daemon degrades to an
    honest "unreachable" banner instead of a stack trace.
    """

    def paint(text: str, code: str) -> str:
        return f"{code}{text}{RESET}" if color else text

    lines: List[str] = []
    title = f"dryadsynth top — {url}" if url else "dryadsynth top"
    lines.append(paint(title, BOLD))
    if stats is None:
        lines.append(paint("daemon unreachable", RED))
        return "\n".join(lines) + "\n"

    status = (health or {}).get("status") or "unknown"
    status_text = paint(
        status.upper(), GREEN if status == "ok" else RED
    )
    lines.append(
        f"state={stats.get('state', '?')}  health={status_text}  "
        f"uptime={_fmt(stats.get('uptime_seconds'), '.0f')}s"
    )
    for condition, detail in sorted(
        ((health or {}).get("conditions") or {}).items()
    ):
        if isinstance(detail, dict) and detail.get("tripped"):
            extras = {k: v for k, v in detail.items() if k != "tripped"}
            lines.append(paint(f"  !! {condition}: {extras}", RED))

    lines.append(
        f"requests  accepted={stats.get('accepted', 0)}  "
        f"completed={stats.get('completed', 0)}  "
        f"inflight={stats.get('inflight', 0)}  "
        f"queued={stats.get('queued', 0)}/{stats.get('max_queue', 0)}  "
        f"shed={stats.get('shed', 0)}  rejected={stats.get('rejected', 0)}"
    )
    pool = stats.get("pool") or {}
    cache = stats.get("cache") or {}
    memo = stats.get("memo") or {}
    lines.append(
        f"fleet     workers={pool.get('workers_alive', '?')}"
        f"/{pool.get('workers', '?')}  "
        f"spawned={pool.get('workers_spawned', '?')}  "
        f"dispatched={pool.get('jobs_dispatched', '?')}  "
        f"cache_hit_rate={_fmt(cache.get('hit_rate'), '.2f')}  "
        f"memo_hit_rate={_fmt(memo.get('hit_rate'), '.2f')}"
    )
    memory = stats.get("memory")
    if memory:
        slope = memory.get("leak_slope_bytes_per_request")
        budget_text = _fmt(memory.get("max_rss_mb"), "g")
        lines.append(
            f"memory    daemon={_fmt_mb(memory.get('daemon_rss_bytes'))}  "
            f"peak={_fmt_mb(memory.get('daemon_peak_rss_bytes'))}  "
            f"children_peak="
            f"{_fmt_mb(memory.get('children_peak_rss_bytes'))}  "
            f"budget={budget_text}MB  "
            f"leak={_fmt_mb(slope)}/req"
        )

    slo = stats.get("slo")
    if slo:
        budget = _num(slo.get("budget_remaining", 0.0))
        lines.append(
            f"slo       objective={slo.get('objective_seconds', 0)}s "
            f"target={_num(slo.get('target', 0)) * 100:.0f}%  "
            f"burn fast={_fmt(slo.get('burn_rate_fast'), '.2f')} "
            f"slow={_fmt(slo.get('burn_rate_slow'), '.2f')}  "
            f"violations={slo.get('violations', 0)}"
            f"/{slo.get('observed', 0)}"
        )
        bar = _bar(budget)
        bar = paint(bar, GREEN if budget > 0.25 else RED)
        lines.append(f"budget    [{bar}] {budget * 100:.1f}% remaining")

    latency = stats.get("latency") or {}
    overall = latency.get("overall")
    if overall and overall.get("count"):
        lines.append("")
        lines.append(paint("latency (submit → done, seconds)", BOLD))
        lines.append(f"  {'overall':<16} {_fmt_latency(overall)}")
        for client, block in sorted(
            (latency.get("per_client") or {}).items()
        ):
            lines.append(f"  {client:<16} {_fmt_latency(block)}")
        for priority, block in sorted(
            (latency.get("per_priority") or {}).items()
        ):
            lines.append(f"  {priority:<16} {_fmt_latency(block)}")

    depths = stats.get("queue_depths") or {}
    if depths:
        lines.append("")
        lines.append(paint("queues", BOLD))
        for client, depth in sorted(depths.items()):
            lines.append(f"  {client:<16} {depth}")

    recent = stats.get("recent") or []
    if recent:
        lines.append("")
        lines.append(paint("recent requests (newest last)", BOLD))
        lines.append(
            f"  {'id':<8} {'trace_id':<32} {'client':<12} "
            f"{'state':<6} {'status':<8} {'latency':>8}"
        )
        for entry in recent[-10:]:
            latency_s = entry.get("latency")
            lines.append(
                f"  {str(entry.get('id', '')):<8} "
                f"{str(entry.get('trace_id', '') or '-'):<32} "
                f"{str(entry.get('client', '')):<12} "
                f"{str(entry.get('state', '')):<6} "
                f"{str(entry.get('status', '') or '-'):<8} "
                f"{latency_s if latency_s is not None else '-':>8}"
            )
    return "\n".join(lines) + "\n"


def run_top(
    url: str,
    interval: float = 2.0,
    once: bool = False,
    frames: Optional[int] = None,
    stream=None,
) -> int:
    """Poll-and-redraw loop; returns an exit code.

    ``frames`` bounds the number of redraws (tests); ``once`` implies one
    frame with no ANSI clear.  Exit code 1 when the daemon was unreachable
    on the final frame, so ``dryadsynth top --once`` doubles as a probe.
    """
    stream = stream if stream is not None else sys.stdout
    base = url.rstrip("/")
    color = not once and hasattr(stream, "isatty") and stream.isatty()
    drawn = 0
    reachable = False
    while True:
        stats = _fetch_json(base + "/v1/stats")
        health = _fetch_json(base + "/healthz")
        reachable = stats is not None
        frame = render_dashboard(stats, health, url=base, color=color)
        if not once:
            stream.write(CLEAR)
        stream.write(frame)
        stream.flush()
        drawn += 1
        if once or (frames is not None and drawn >= frames):
            break
        try:
            time.sleep(interval)
        except KeyboardInterrupt:
            break
    return 0 if reachable else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Live dashboard over a running dryadsynth serve daemon."
    )
    parser.add_argument("url", help="daemon base URL (http://host:port)")
    parser.add_argument("--interval", type=float, default=2.0,
                        help="seconds between redraws (default 2)")
    parser.add_argument("--once", action="store_true",
                        help="print one frame (no ANSI codes) and exit")
    args = parser.parse_args(argv)
    try:
        return run_top(args.url, interval=args.interval, once=args.once)
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
