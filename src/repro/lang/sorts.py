"""Sorts (types) of the CLIA term language.

Only two sorts exist in CLIA: mathematical integers and booleans.  They are
modelled as interned singletons so identity comparison is safe.
"""

from __future__ import annotations


class Sort:
    """A sort (type) of the term language."""

    __slots__ = ("name",)

    _interned: dict[str, "Sort"] = {}

    def __new__(cls, name: str) -> "Sort":
        existing = cls._interned.get(name)
        if existing is not None:
            return existing
        sort = super().__new__(cls)
        sort.name = name
        cls._interned[name] = sort
        return sort

    def __repr__(self) -> str:
        return self.name

    def __reduce__(self):
        return (Sort, (self.name,))


#: The sort of mathematical integers.
INT = Sort("Int")

#: The sort of booleans.
BOOL = Sort("Bool")
