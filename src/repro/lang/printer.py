"""Printing terms as SMT-LIB / SyGuS-IF style s-expressions."""

from __future__ import annotations

from typing import List

from repro.lang.ast import Kind, Term


def to_sexpr(term: Term) -> str:
    """Render ``term`` in SMT-LIB concrete syntax.

    The output round-trips through :func:`repro.sygus.parser.parse_term`.
    """
    parts: List[str] = []
    _render(term, parts)
    return "".join(parts)


def _render(term: Term, out: List[str]) -> None:
    kind = term.kind
    if kind is Kind.CONST:
        value = term.payload
        if isinstance(value, bool):
            out.append("true" if value else "false")
        elif value < 0:  # type: ignore[operator]
            out.append(f"(- {-value})")
        else:
            out.append(str(value))
        return
    if kind is Kind.VAR:
        out.append(term.payload)  # type: ignore[arg-type]
        return
    if kind is Kind.APP:
        if not term.args:
            out.append(term.payload)  # type: ignore[arg-type]
            return
        out.append(f"({term.payload}")
        for arg in term.args:
            out.append(" ")
            _render(arg, out)
        out.append(")")
        return
    if kind is Kind.NEG:
        out.append("(- ")
        _render(term.args[0], out)
        out.append(")")
        return
    op = kind.value
    out.append(f"({op}")
    for arg in term.args:
        out.append(" ")
        _render(arg, out)
    out.append(")")


def define_fun_sexpr(name: str, params, return_sort, body: Term) -> str:
    """Render a SyGuS ``define-fun`` for a synthesized solution."""
    params_str = " ".join(f"({p.payload} {p.sort.name})" for p in params)
    return (
        f"(define-fun {name} ({params_str}) {return_sort.name} "
        f"{to_sexpr(body)})"
    )
