"""Convenience constructors for CLIA terms.

These perform light normalisation (flattening nested ``and``/``or``/``+``,
collapsing trivial cases) so downstream passes see a predictable shape, but
they never change the logical meaning of what the caller wrote.
"""

from __future__ import annotations

from typing import Iterable, Union

from repro.lang.ast import Kind, Term
from repro.lang.sorts import BOOL, INT, Sort

IntoTerm = Union[Term, int, bool]


def _coerce(value: IntoTerm) -> Term:
    if isinstance(value, Term):
        return value
    if isinstance(value, bool):
        return bool_const(value)
    if isinstance(value, int):
        return int_const(value)
    raise TypeError(f"cannot coerce {value!r} to a term")


def int_const(value: int) -> Term:
    """An integer literal."""
    return Term.make(Kind.CONST, (), int(value))


def bool_const(value: bool) -> Term:
    """A boolean literal."""
    return Term.make(Kind.CONST, (), bool(value))


#: The literal ``true``.
def true() -> Term:
    return bool_const(True)


#: The literal ``false``.
def false() -> Term:
    return bool_const(False)


def var(name: str, sort: Sort) -> Term:
    """A variable of the given sort."""
    return Term.make(Kind.VAR, (), name, sort)


def int_var(name: str) -> Term:
    return var(name, INT)


def bool_var(name: str) -> Term:
    return var(name, BOOL)


def add(*terms: IntoTerm) -> Term:
    """N-ary addition; flattens nested additions."""
    flat: list[Term] = []
    for raw in terms:
        term = _coerce(raw)
        if term.kind is Kind.ADD:
            flat.extend(term.args)
        else:
            flat.append(term)
    if not flat:
        return int_const(0)
    if len(flat) == 1:
        return flat[0]
    return Term.make(Kind.ADD, tuple(flat))


def sub(left: IntoTerm, right: IntoTerm) -> Term:
    return Term.make(Kind.SUB, (_coerce(left), _coerce(right)))


def neg(term: IntoTerm) -> Term:
    inner = _coerce(term)
    if inner.kind is Kind.CONST:
        return int_const(-inner.payload)  # type: ignore[operator]
    return Term.make(Kind.NEG, (inner,))


def mul(left: IntoTerm, right: IntoTerm) -> Term:
    return Term.make(Kind.MUL, (_coerce(left), _coerce(right)))


def ite(cond: IntoTerm, then: IntoTerm, els: IntoTerm) -> Term:
    return Term.make(Kind.ITE, (_coerce(cond), _coerce(then), _coerce(els)))


def ge(left: IntoTerm, right: IntoTerm) -> Term:
    return Term.make(Kind.GE, (_coerce(left), _coerce(right)))


def gt(left: IntoTerm, right: IntoTerm) -> Term:
    return Term.make(Kind.GT, (_coerce(left), _coerce(right)))


def le(left: IntoTerm, right: IntoTerm) -> Term:
    return Term.make(Kind.LE, (_coerce(left), _coerce(right)))


def lt(left: IntoTerm, right: IntoTerm) -> Term:
    return Term.make(Kind.LT, (_coerce(left), _coerce(right)))


def eq(left: IntoTerm, right: IntoTerm) -> Term:
    return Term.make(Kind.EQ, (_coerce(left), _coerce(right)))


def distinct(left: IntoTerm, right: IntoTerm) -> Term:
    return not_(eq(left, right))


def not_(term: IntoTerm) -> Term:
    inner = _coerce(term)
    if inner.kind is Kind.NOT:
        return inner.args[0]
    return Term.make(Kind.NOT, (inner,))


def and_(*terms: IntoTerm) -> Term:
    """N-ary conjunction; flattens and drops ``true`` conjuncts."""
    flat: list[Term] = []
    for raw in terms:
        term = _coerce(raw)
        if term.kind is Kind.AND:
            flat.extend(term.args)
        elif term.kind is Kind.CONST and term.value is True:
            continue
        else:
            flat.append(term)
    if not flat:
        return true()
    if len(flat) == 1:
        return flat[0]
    return Term.make(Kind.AND, tuple(flat))


def or_(*terms: IntoTerm) -> Term:
    """N-ary disjunction; flattens and drops ``false`` disjuncts."""
    flat: list[Term] = []
    for raw in terms:
        term = _coerce(raw)
        if term.kind is Kind.OR:
            flat.extend(term.args)
        elif term.kind is Kind.CONST and term.value is False:
            continue
        else:
            flat.append(term)
    if not flat:
        return false()
    if len(flat) == 1:
        return flat[0]
    return Term.make(Kind.OR, tuple(flat))


def implies(ante: IntoTerm, cons: IntoTerm) -> Term:
    return Term.make(Kind.IMPLIES, (_coerce(ante), _coerce(cons)))


def iff(left: IntoTerm, right: IntoTerm) -> Term:
    """Boolean equivalence, encoded as an equality of Bool terms."""
    return Term.make(Kind.EQ, (_coerce(left), _coerce(right)))


def apply_fn(name: str, args: Iterable[IntoTerm], sort: Sort) -> Term:
    """Application of a named (interpreted or uninterpreted) function."""
    return Term.make(Kind.APP, tuple(_coerce(a) for a in args), name, sort)
