"""Core term language for CLIA (conditional linear integer arithmetic).

This package provides the shared abstract syntax used by every layer of the
reproduction: the SyGuS front-end, the SMT substrate, the synthesis engines
and the baselines.  Terms are immutable and hash-consed, so structural
equality is pointer equality and terms can be used freely as dictionary keys.
"""

from repro.lang.sorts import BOOL, INT, Sort
from repro.lang.ast import Kind, Term
from repro.lang.builders import (
    add,
    and_,
    apply_fn,
    bool_const,
    bool_var,
    distinct,
    eq,
    false,
    ge,
    gt,
    iff,
    implies,
    int_const,
    int_var,
    ite,
    le,
    lt,
    mul,
    neg,
    not_,
    or_,
    sub,
    true,
    var,
)
from repro.lang.evaluator import EvaluationError, evaluate
from repro.lang.printer import to_sexpr
from repro.lang.sexpr import SExprError, parse_all_sexprs, parse_sexpr
from repro.lang.simplify import simplify
from repro.lang.traversal import (
    contains_app,
    free_vars,
    subexpressions,
    substitute,
    substitute_apps,
    term_height,
    term_size,
)

__all__ = [
    "BOOL",
    "INT",
    "Sort",
    "Kind",
    "Term",
    "add",
    "and_",
    "apply_fn",
    "bool_const",
    "bool_var",
    "distinct",
    "eq",
    "false",
    "ge",
    "gt",
    "iff",
    "implies",
    "int_const",
    "int_var",
    "ite",
    "le",
    "lt",
    "mul",
    "neg",
    "not_",
    "or_",
    "sub",
    "true",
    "var",
    "EvaluationError",
    "evaluate",
    "to_sexpr",
    "SExprError",
    "parse_all_sexprs",
    "parse_sexpr",
    "simplify",
    "contains_app",
    "free_vars",
    "subexpressions",
    "substitute",
    "substitute_apps",
    "term_height",
    "term_size",
]
