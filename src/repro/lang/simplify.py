"""Lightweight logical and arithmetic simplification.

This is the `Simplify` step of the deductive component (Algorithm 3): local,
meaning-preserving rewrites — constant folding, neutral-element removal,
branch collapsing.  It is deliberately linear-time; heavier reasoning belongs
to the deductive rules or the SMT solver.
"""

from __future__ import annotations

from repro.lang.ast import Kind, Term
from repro.lang.builders import (
    and_,
    bool_const,
    false,
    int_const,
    not_,
    or_,
    true,
)
from repro.lang.traversal import rewrite_bottom_up


def simplify(term: Term) -> Term:
    """Simplify ``term``; the result is logically equivalent."""
    return rewrite_bottom_up(term, _simplify_node)


def _const_value(term: Term):
    if term.kind is Kind.CONST:
        return term.payload
    return None


def _simplify_node(term: Term) -> Term:
    kind = term.kind
    args = term.args
    if kind is Kind.ADD:
        return _simplify_add(args)
    if kind is Kind.SUB:
        left, right = args
        if right.kind is Kind.CONST and right.payload == 0:
            return left
        if left.kind is Kind.CONST and right.kind is Kind.CONST:
            return int_const(left.payload - right.payload)
        if left is right:
            return int_const(0)
        return term
    if kind is Kind.NEG:
        inner = args[0]
        if inner.kind is Kind.CONST:
            return int_const(-inner.payload)
        if inner.kind is Kind.NEG:
            return inner.args[0]
        return term
    if kind is Kind.MUL:
        left, right = args
        lv, rv = _const_value(left), _const_value(right)
        if lv is not None and rv is not None:
            return int_const(lv * rv)
        if lv == 0 or rv == 0:
            return int_const(0)
        if lv == 1:
            return right
        if rv == 1:
            return left
        return term
    if kind in (Kind.GE, Kind.GT, Kind.LE, Kind.LT, Kind.EQ):
        return _simplify_comparison(term)
    if kind is Kind.NOT:
        inner = args[0]
        value = _const_value(inner)
        if value is not None:
            return bool_const(not value)
        if inner.kind is Kind.NOT:
            return inner.args[0]
        return term
    if kind is Kind.AND:
        # Flatten nested conjunctions BEFORE deduping: a child rewrite
        # (e.g. `(=> true (and X Y))` -> `(and X Y)`) can expose a nested
        # AND whose members duplicate a sibling, and the `and_` builder
        # would splice them in after the dedup, breaking idempotence.
        args = _flatten(Kind.AND, args)
        if any(_const_value(a) is False for a in args):
            return false()
        kept = _dedupe(a for a in args if _const_value(a) is not True)
        if _has_complement(kept):
            return false()
        return and_(*kept)
    if kind is Kind.OR:
        args = _flatten(Kind.OR, args)
        if any(_const_value(a) is True for a in args):
            return true()
        kept = _dedupe(a for a in args if _const_value(a) is not False)
        if _has_complement(kept):
            return true()
        return or_(*kept)
    if kind is Kind.IMPLIES:
        ante, cons = args
        if _const_value(ante) is True:
            return cons
        if _const_value(ante) is False:
            return true()
        if _const_value(cons) is True:
            return true()
        if _const_value(cons) is False:
            return not_(ante)
        if ante is cons:
            return true()
        return term
    if kind is Kind.ITE:
        cond, then, els = args
        value = _const_value(cond)
        if value is True:
            return then
        if value is False:
            return els
        if then is els:
            return then
        return term
    return term


def _simplify_add(args) -> Term:
    const_sum = 0
    rest = []
    for arg in args:
        if arg.kind is Kind.CONST:
            const_sum += arg.payload
        else:
            rest.append(arg)
    if not rest:
        return int_const(const_sum)
    if const_sum != 0:
        rest.append(int_const(const_sum))
    if len(rest) == 1:
        return rest[0]
    return Term.make(Kind.ADD, tuple(rest))


def _simplify_comparison(term: Term) -> Term:
    left, right = term.args
    kind = term.kind
    if left is right:
        if kind in (Kind.GE, Kind.LE, Kind.EQ):
            return true()
        return false()
    lv, rv = _const_value(left), _const_value(right)
    if lv is not None and rv is not None:
        if kind is Kind.GE:
            return bool_const(lv >= rv)
        if kind is Kind.GT:
            return bool_const(lv > rv)
        if kind is Kind.LE:
            return bool_const(lv <= rv)
        if kind is Kind.LT:
            return bool_const(lv < rv)
        return bool_const(lv == rv)
    return term


def _flatten(kind: Kind, args) -> list:
    flat = []
    for arg in args:
        if arg.kind is kind:
            flat.extend(arg.args)
        else:
            flat.append(arg)
    return flat


def _dedupe(terms) -> list:
    seen = set()
    result = []
    for term in terms:
        if term not in seen:
            seen.add(term)
            result.append(term)
    return result


def _has_complement(terms) -> bool:
    term_set = set(terms)
    for term in terms:
        if term.kind is Kind.NOT and term.args[0] in term_set:
            return True
    return False
