"""A small s-expression reader shared by the SMT-LIB and SyGuS-IF parsers.

S-expressions are parsed into nested Python lists of strings; numeric
literals stay as strings (the term parser decides how to interpret them).
Comments start with ``;`` and run to end of line.
"""

from __future__ import annotations

from typing import List, Tuple, Union

SExpr = Union[str, List["SExpr"]]


class SExprError(Exception):
    """Raised on malformed s-expression input."""


def tokenize(text: str) -> List[str]:
    """Split ``text`` into parenthesis and atom tokens, dropping comments."""
    tokens: List[str] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch in " \t\r\n":
            i += 1
        elif ch == ";":
            while i < n and text[i] != "\n":
                i += 1
        elif ch in "()":
            tokens.append(ch)
            i += 1
        elif ch == '"':
            j = i + 1
            while j < n and text[j] != '"':
                j += 1
            if j >= n:
                raise SExprError("unterminated string literal")
            tokens.append(text[i : j + 1])
            i = j + 1
        else:
            j = i
            while j < n and text[j] not in " \t\r\n();":
                j += 1
            tokens.append(text[i:j])
            i = j
    return tokens


def _parse(tokens: List[str], pos: int) -> Tuple[SExpr, int]:
    if pos >= len(tokens):
        raise SExprError("unexpected end of input")
    token = tokens[pos]
    if token == "(":
        items: List[SExpr] = []
        pos += 1
        while pos < len(tokens) and tokens[pos] != ")":
            item, pos = _parse(tokens, pos)
            items.append(item)
        if pos >= len(tokens):
            raise SExprError("unbalanced parentheses")
        return items, pos + 1
    if token == ")":
        raise SExprError("unexpected ')'")
    return token, pos + 1


def parse_sexpr(text: str) -> SExpr:
    """Parse a single s-expression."""
    tokens = tokenize(text)
    expr, pos = _parse(tokens, 0)
    if pos != len(tokens):
        raise SExprError(f"trailing tokens: {tokens[pos:]}")
    return expr


def parse_all_sexprs(text: str) -> List[SExpr]:
    """Parse a whole file worth of s-expressions."""
    tokens = tokenize(text)
    exprs: List[SExpr] = []
    pos = 0
    while pos < len(tokens):
        expr, pos = _parse(tokens, pos)
        exprs.append(expr)
    return exprs
