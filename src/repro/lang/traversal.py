"""Traversals over terms: free variables, substitution, subexpressions.

All functions are memoised per call via dictionaries keyed on the interned
terms, so shared subterms are visited once.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterable, Iterator, Mapping, Sequence

from repro.lang.ast import Kind, Term


def free_vars(term: Term) -> FrozenSet[Term]:
    """The set of variables occurring in ``term``."""
    cache: Dict[Term, FrozenSet[Term]] = {}

    def go(t: Term) -> FrozenSet[Term]:
        hit = cache.get(t)
        if hit is not None:
            return hit
        if t.kind is Kind.VAR:
            result: FrozenSet[Term] = frozenset((t,))
        elif not t.args:
            result = frozenset()
        else:
            result = frozenset().union(*(go(a) for a in t.args))
        cache[t] = result
        return result

    return go(term)


def subexpressions(term: Term) -> Iterator[Term]:
    """All distinct subexpressions of ``term`` (including itself), post-order."""
    seen: set[Term] = set()

    def go(t: Term) -> Iterator[Term]:
        if t in seen:
            return
        seen.add(t)
        for child in t.args:
            yield from go(child)
        yield t

    return go(term)


def contains_app(term: Term, name: str) -> bool:
    """Does ``term`` contain an application of the function ``name``?"""
    for sub in subexpressions(term):
        if sub.kind is Kind.APP and sub.payload == name:
            return True
    return False


def app_occurrences(term: Term, name: str) -> list[Term]:
    """All distinct applications of ``name`` inside ``term``."""
    return [
        sub
        for sub in subexpressions(term)
        if sub.kind is Kind.APP and sub.payload == name
    ]


def rewrite_bottom_up(term: Term, rewrite: Callable[[Term], Term]) -> Term:
    """Rebuild ``term`` bottom-up, applying ``rewrite`` at every node.

    ``rewrite`` receives a node whose children have already been rewritten and
    returns its replacement (possibly the node itself).
    """
    cache: Dict[Term, Term] = {}

    def go(t: Term) -> Term:
        hit = cache.get(t)
        if hit is not None:
            return hit
        if t.args:
            new_args = tuple(go(a) for a in t.args)
            if new_args != t.args:
                t2 = Term.make(t.kind, new_args, t.payload, t.sort)
            else:
                t2 = t
        else:
            t2 = t
        result = rewrite(t2)
        cache[t] = result
        return result

    return go(term)


def substitute(term: Term, mapping: Mapping[Term, Term]) -> Term:
    """Replace variables (or arbitrary subterms) according to ``mapping``."""
    if not mapping:
        return term
    cache: Dict[Term, Term] = {}

    def go(t: Term) -> Term:
        hit = cache.get(t)
        if hit is not None:
            return hit
        replacement = mapping.get(t)
        if replacement is not None:
            result = replacement
        elif not t.args:
            result = t
        else:
            new_args = tuple(go(a) for a in t.args)
            if new_args == t.args:
                result = t
            else:
                result = Term.make(t.kind, new_args, t.payload, t.sort)
        cache[t] = result
        return result

    return go(term)


def substitute_apps(
    term: Term,
    name: str,
    params: Sequence[Term],
    body: Term,
) -> Term:
    """Inline every application ``name(a1..an)`` as ``body[a1/params[0], ...]``.

    This is beta-reduction of ``λparams.body`` at each call site of ``name``;
    call sites inside the actual arguments are inlined first (innermost-out).
    """
    cache: Dict[Term, Term] = {}

    def go(t: Term) -> Term:
        hit = cache.get(t)
        if hit is not None:
            return hit
        if t.args:
            new_args = tuple(go(a) for a in t.args)
        else:
            new_args = ()
        if t.kind is Kind.APP and t.payload == name:
            if len(new_args) != len(params):
                raise ValueError(
                    f"arity mismatch inlining {name}: "
                    f"{len(new_args)} actuals vs {len(params)} formals"
                )
            result = substitute(body, dict(zip(params, new_args)))
        elif new_args != t.args:
            result = Term.make(t.kind, new_args, t.payload, t.sort)
        else:
            result = t
        cache[t] = result
        return result

    return go(term)


def rename_apps(term: Term, renaming: Mapping[str, str]) -> Term:
    """Rename applied function symbols according to ``renaming``."""

    def rw(t: Term) -> Term:
        if t.kind is Kind.APP and t.payload in renaming:
            return Term.make(Kind.APP, t.args, renaming[t.payload], t.sort)
        return t

    return rewrite_bottom_up(term, rw)


def term_height(term: Term) -> int:
    """Height of the syntax tree (a leaf has height 1)."""
    return term.height


def term_size(term: Term) -> int:
    """Number of nodes in the syntax tree."""
    return term.size


def fresh_name(base: str, taken: Iterable[str]) -> str:
    """A name starting with ``base`` that is not in ``taken``."""
    taken_set = set(taken)
    if base not in taken_set:
        return base
    index = 1
    while f"{base}!{index}" in taken_set:
        index += 1
    return f"{base}!{index}"
