"""Hash-consed term AST for the CLIA language.

Every term is interned: constructing the same term twice yields the *same*
Python object, so ``==`` (identity) is constant-time and terms can key
dictionaries and sets without deep traversals.  Construction is performed
through :func:`Term.make`; the convenience constructors in
:mod:`repro.lang.builders` are the intended public entry points.
"""

from __future__ import annotations

import enum
from typing import Iterator, Optional, Tuple, Union

from repro.lang.sorts import BOOL, INT, Sort


class Kind(enum.Enum):
    """Syntactic kinds of CLIA terms."""

    CONST = "const"  # payload: int or bool value
    VAR = "var"  # payload: name
    ADD = "+"
    SUB = "-"
    NEG = "neg"
    MUL = "*"
    ITE = "ite"
    GE = ">="
    GT = ">"
    LE = "<="
    LT = "<"
    EQ = "="
    NOT = "not"
    AND = "and"
    OR = "or"
    IMPLIES = "=>"
    APP = "app"  # payload: function name; args are the actuals

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Kind.{self.name}"


_COMPARISONS = frozenset({Kind.GE, Kind.GT, Kind.LE, Kind.LT})
_BOOL_CONNECTIVES = frozenset({Kind.NOT, Kind.AND, Kind.OR, Kind.IMPLIES})
_ARITH_OPS = frozenset({Kind.ADD, Kind.SUB, Kind.NEG, Kind.MUL})

Payload = Union[int, bool, str, None]


class Term:
    """An immutable, interned CLIA term.

    Attributes:
        kind: the syntactic :class:`Kind`.
        args: child terms (a tuple, possibly empty).
        payload: ``int``/``bool`` for constants, ``str`` name for variables
            and applications, ``None`` otherwise.
        sort: the :class:`~repro.lang.sorts.Sort` of the term.
    """

    __slots__ = ("kind", "args", "payload", "sort", "_hash", "_height", "_size")

    _interned: dict = {}

    def __new__(
        cls,
        kind: Kind,
        args: Tuple["Term", ...],
        payload: Payload,
        sort: Sort,
    ) -> "Term":
        key = (kind, args, payload, sort)
        existing = cls._interned.get(key)
        if existing is not None:
            return existing
        term = super().__new__(cls)
        term.kind = kind
        term.args = args
        term.payload = payload
        term.sort = sort
        term._hash = hash(key)
        term._height = 0
        term._size = 0
        cls._interned[key] = term
        return term

    # Interning makes the default identity `__eq__`/`__hash__` structurally
    # correct, but we pin __hash__ to the precomputed value for speed.
    def __hash__(self) -> int:
        return self._hash

    @staticmethod
    def make(
        kind: Kind,
        args: Tuple["Term", ...] = (),
        payload: Payload = None,
        sort: Optional[Sort] = None,
    ) -> "Term":
        """Construct (or retrieve) an interned term, inferring the sort."""
        if sort is None:
            sort = _infer_sort(kind, args, payload)
        _check_well_formed(kind, args, payload, sort)
        return Term(kind, args, payload, sort)

    # -- Structural helpers ------------------------------------------------

    @property
    def is_const(self) -> bool:
        return self.kind is Kind.CONST

    @property
    def is_var(self) -> bool:
        return self.kind is Kind.VAR

    @property
    def is_app(self) -> bool:
        return self.kind is Kind.APP

    @property
    def name(self) -> str:
        """Name of a variable or applied function."""
        if self.kind not in (Kind.VAR, Kind.APP):
            raise ValueError(f"term of kind {self.kind} has no name")
        return self.payload  # type: ignore[return-value]

    @property
    def value(self) -> Union[int, bool]:
        """Value of a constant."""
        if self.kind is not Kind.CONST:
            raise ValueError(f"term of kind {self.kind} has no value")
        return self.payload  # type: ignore[return-value]

    @property
    def height(self) -> int:
        """Height of the syntax tree (leaves have height 1)."""
        if self._height == 0:
            if not self.args:
                self._height = 1
            else:
                self._height = 1 + max(child.height for child in self.args)
        return self._height

    @property
    def size(self) -> int:
        """Number of nodes of the syntax tree."""
        if self._size == 0:
            self._size = 1 + sum(child.size for child in self.args)
        return self._size

    def __iter__(self) -> Iterator["Term"]:
        return iter(self.args)

    def __repr__(self) -> str:
        from repro.lang.printer import to_sexpr

        return to_sexpr(self)


def _infer_sort(kind: Kind, args: Tuple[Term, ...], payload: Payload) -> Sort:
    if kind is Kind.CONST:
        return BOOL if isinstance(payload, bool) else INT
    if kind is Kind.VAR:
        raise ValueError("variable construction requires an explicit sort")
    if kind is Kind.APP:
        raise ValueError("application construction requires an explicit sort")
    if kind in _ARITH_OPS:
        return INT
    if kind in _COMPARISONS or kind in _BOOL_CONNECTIVES or kind is Kind.EQ:
        return BOOL
    if kind is Kind.ITE:
        if len(args) != 3:
            raise ValueError("ite requires exactly three arguments")
        return args[1].sort
    raise ValueError(f"cannot infer sort for kind {kind}")


def _check_well_formed(
    kind: Kind, args: Tuple[Term, ...], payload: Payload, sort: Sort
) -> None:
    if kind is Kind.CONST:
        if args:
            raise ValueError("constants take no arguments")
        if not isinstance(payload, (int, bool)):
            raise ValueError(f"bad constant payload: {payload!r}")
        return
    if kind is Kind.VAR:
        if args or not isinstance(payload, str):
            raise ValueError("variables take a name and no arguments")
        return
    if kind is Kind.APP:
        if not isinstance(payload, str):
            raise ValueError("applications require a function name")
        return
    if kind in _ARITH_OPS:
        if kind is Kind.NEG and len(args) != 1:
            raise ValueError("negation is unary")
        if kind in (Kind.SUB, Kind.MUL) and len(args) != 2:
            raise ValueError(f"{kind.value} is binary")
        if kind is Kind.ADD and len(args) < 2:
            raise ValueError("addition takes at least two arguments")
        for child in args:
            if child.sort is not INT:
                raise ValueError(f"arithmetic over non-Int child: {child!r}")
        return
    if kind in _COMPARISONS or kind is Kind.EQ:
        if len(args) != 2:
            raise ValueError("comparisons are binary")
        if kind is not Kind.EQ and (args[0].sort is not INT or args[1].sort is not INT):
            raise ValueError("ordering comparisons require Int children")
        if kind is Kind.EQ and args[0].sort is not args[1].sort:
            raise ValueError("equality requires same-sorted children")
        return
    if kind in _BOOL_CONNECTIVES:
        if kind is Kind.NOT and len(args) != 1:
            raise ValueError("not is unary")
        if kind is Kind.IMPLIES and len(args) != 2:
            raise ValueError("=> is binary")
        if kind in (Kind.AND, Kind.OR) and len(args) < 2:
            raise ValueError(f"{kind.value} takes at least two arguments")
        for child in args:
            if child.sort is not BOOL:
                raise ValueError(f"connective over non-Bool child: {child!r}")
        return
    if kind is Kind.ITE:
        if len(args) != 3:
            raise ValueError("ite is ternary")
        if args[0].sort is not BOOL:
            raise ValueError("ite condition must be Bool")
        if args[1].sort is not args[2].sort:
            raise ValueError("ite branches must agree on sort")
        return
    raise ValueError(f"unknown kind {kind}")
