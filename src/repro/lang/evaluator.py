"""Concrete evaluation of CLIA terms.

Used by CEGIS to screen candidates against counterexamples, by the
enumerative baseline for observational equivalence, and throughout the test
suite as the ground-truth semantics.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence, Tuple, Union

from repro.lang.ast import Kind, Term

Value = Union[int, bool]

#: Definitions of interpreted functions: name -> (parameter terms, body).
FunctionDefs = Mapping[str, Tuple[Sequence[Term], Term]]


class EvaluationError(Exception):
    """Raised when a term cannot be evaluated under the given environment."""


def evaluate(
    term: Term,
    env: Mapping[str, Value],
    funcs: Optional[FunctionDefs] = None,
) -> Value:
    """Evaluate ``term`` with variable values from ``env``.

    Args:
        term: the term to evaluate.
        env: maps variable names to values.
        funcs: optional definitions for applied function symbols.

    Raises:
        EvaluationError: on unbound variables or undefined functions.
    """
    return _eval(term, env, funcs or {}, {}, {})


_MISSING = object()

#: Function-application results keyed by ``(name, typed actual values)``.
#: Application results depend only on the definition and the concrete
#: actuals — never on the caller's environment — so one cache is shared
#: across the entire evaluation, including nested applications.  The keys
#: are typed (``True`` and ``1`` do not collide) because CLIA terms can be
#: Bool- or Int-sorted and Python hashes them identically.
AppCache = Dict[Tuple, Value]


def _eval(
    term: Term,
    env: Mapping[str, Value],
    funcs: FunctionDefs,
    cache: Dict[Term, Value],
    app_cache: AppCache,
) -> Value:
    hit = cache.get(term, _MISSING)
    if hit is not _MISSING:
        return hit
    kind = term.kind
    if kind is Kind.CONST:
        result: Value = term.payload  # type: ignore[assignment]
    elif kind is Kind.VAR:
        try:
            result = env[term.payload]  # type: ignore[index]
        except KeyError as exc:
            raise EvaluationError(f"unbound variable {term.payload}") from exc
    elif kind is Kind.ITE:
        cond = _eval(term.args[0], env, funcs, cache, app_cache)
        branch = term.args[1] if cond else term.args[2]
        result = _eval(branch, env, funcs, cache, app_cache)
    elif kind is Kind.AND:
        result = all(
            _eval(a, env, funcs, cache, app_cache) for a in term.args
        )
    elif kind is Kind.OR:
        result = any(
            _eval(a, env, funcs, cache, app_cache) for a in term.args
        )
    elif kind is Kind.NOT:
        result = not _eval(term.args[0], env, funcs, cache, app_cache)
    elif kind is Kind.IMPLIES:
        left = _eval(term.args[0], env, funcs, cache, app_cache)
        result = (not left) or bool(
            _eval(term.args[1], env, funcs, cache, app_cache)
        )
    elif kind is Kind.APP:
        name = term.payload
        if name not in funcs:
            raise EvaluationError(f"undefined function {name}")
        params, body = funcs[name]
        actuals = [
            _eval(a, env, funcs, cache, app_cache) for a in term.args
        ]
        if len(actuals) != len(params):
            raise EvaluationError(f"arity mismatch calling {name}")
        app_key = (
            name,
            tuple((v.__class__ is bool, v) for v in actuals),
        )
        result = app_cache.get(app_key, _MISSING)  # type: ignore[assignment]
        if result is _MISSING:
            inner_env = {p.payload: v for p, v in zip(params, actuals)}
            # The body runs under its own environment, so it needs a fresh
            # term cache — but it shares the application cache, so repeated
            # applications on equal actuals (nested towers of interpreted
            # defs, duplicated invocation sites) evaluate once.
            result = _eval(body, inner_env, funcs, {}, app_cache)
            app_cache[app_key] = result
    else:
        values = [
            _eval(a, env, funcs, cache, app_cache) for a in term.args
        ]
        if kind is Kind.ADD:
            result = sum(values)  # type: ignore[arg-type]
        elif kind is Kind.SUB:
            result = values[0] - values[1]  # type: ignore[operator]
        elif kind is Kind.NEG:
            result = -values[0]  # type: ignore[operator]
        elif kind is Kind.MUL:
            result = values[0] * values[1]  # type: ignore[operator]
        elif kind is Kind.GE:
            result = values[0] >= values[1]  # type: ignore[operator]
        elif kind is Kind.GT:
            result = values[0] > values[1]  # type: ignore[operator]
        elif kind is Kind.LE:
            result = values[0] <= values[1]  # type: ignore[operator]
        elif kind is Kind.LT:
            result = values[0] < values[1]  # type: ignore[operator]
        elif kind is Kind.EQ:
            result = values[0] == values[1]
        else:  # pragma: no cover - the Kind enum is closed
            raise EvaluationError(f"cannot evaluate kind {kind}")
    cache[term] = result
    return result
