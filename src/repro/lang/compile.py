"""Compile-once evaluation of CLIA terms.

The AST walker (:mod:`repro.lang.evaluator`) pays the full interpretation
overhead — kind dispatch, cache probes, environment dict lookups — on every
node of every evaluation.  The hot loops of this repo evaluate the *same*
term against many environments: CEGIS screens one candidate against the
whole counterexample list, the enumerative baseline computes an
observational-equivalence signature per enumerated term, and the spec is
re-checked for every (candidate, example) pair.  This module closes a term
into a plain Python function once and reuses it for every environment.

Design constraints, in order:

- **Semantics parity with the walker.**  The generated code uses Python's
  naturally lazy forms (``and``/``or``, conditional expressions), matching
  the walker's short-circuiting ``all()``/``any()`` and one-branch ``ite``
  exactly — including *which* :class:`EvaluationError` is or is not raised
  on partially defined environments.  Whenever compilation or the fast
  calling convention cannot guarantee parity (missing variables, oversized
  terms, exotic nesting), evaluation falls back to the walker, which stays
  the ground truth.
- **Compile once, globally.**  Terms are hash-consed
  (:class:`repro.lang.ast.Term`), so compiled artifacts are cached in
  module-level LRU tables keyed by the interned term — the enumerative
  baseline rebuilding its enumerator every CEGIS round still hits the cache
  for every term it has ever compiled.
- **Interpreted functions compile too.**  Each referenced definition
  becomes its own compiled function, late-bound through a cell so
  (mutually) recursive definitions behave like the walker (a runtime
  ``RecursionError``, not a compile failure).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.lang.ast import Kind, Term
from repro.lang.evaluator import (
    EvaluationError,
    FunctionDefs,
    Value,
    evaluate,
)
from repro.lang.traversal import free_vars

#: Effective (DAG-expanded) node count above which codegen gives up: the
#: generated source duplicates shared subterms, so a heavily shared DAG can
#: explode exponentially in source size where the walker stays linear.
MAX_EXPANDED_NODES = 50_000

#: Syntax-tree height above which codegen gives up: deeply nested
#: parenthesised expressions can overflow the CPython parser.
MAX_COMPILED_HEIGHT = 96

_CACHE_CAP = 16384

_term_cache: "OrderedDict[Tuple, CompiledTerm]" = OrderedDict()
_spec_cache: "OrderedDict[Tuple, CompiledSpec]" = OrderedDict()
_func_cache: Dict[Tuple, "_LateBound"] = {}


def clear_caches() -> None:
    """Drop every compiled artifact (tests / memory pressure)."""
    _term_cache.clear()
    _spec_cache.clear()
    _func_cache.clear()


class _Fallback(Exception):
    """Internal: this term cannot be compiled; use the walker."""


class _LateBound:
    """A callable cell filled in after compilation (recursion support)."""

    __slots__ = ("fn",)

    def __init__(self) -> None:
        self.fn: Optional[Callable] = None

    def __call__(self, *args):
        return self.fn(*args)  # type: ignore[misc]


def _raise(message: str, *_evaluated) -> Value:
    """Lazy error site: reached only if the walker would also raise here.

    Extra positional arguments exist solely to force argument evaluation
    order parity (the walker evaluates actuals before an arity check).
    """
    raise EvaluationError(message)


def _normalize_funcs(
    funcs: Optional[FunctionDefs],
) -> Tuple[Dict[str, Tuple[Tuple[Term, ...], Term]], Tuple]:
    """Snapshot ``funcs`` into a plain dict plus a hashable cache key."""
    if not funcs:
        return {}, ()
    norm = {
        name: (tuple(params), body) for name, (params, body) in funcs.items()
    }
    key = tuple(
        sorted(
            ((name, pb[0], pb[1]) for name, pb in norm.items()),
            key=lambda entry: entry[0],
        )
    )
    return norm, key


class _Codegen:
    """Emits one Python expression per term, recursively."""

    def __init__(
        self,
        var_ids: Mapping[str, str],
        funcs: Dict[str, Tuple[Tuple[Term, ...], Term]],
        funcs_key: Tuple,
        open_ids: Mapping[str, str],
    ) -> None:
        self.var_ids = var_ids
        self.funcs = funcs
        self.funcs_key = funcs_key
        self.open_ids = open_ids
        self.namespace: Dict[str, object] = {"_raise": _raise}
        self._func_idents: Dict[str, str] = {}
        self.budget = MAX_EXPANDED_NODES

    def _func_ident(self, name: str) -> str:
        ident = self._func_idents.get(name)
        if ident is None:
            ident = f"_f{len(self._func_idents)}"
            self._func_idents[name] = ident
            self.namespace[ident] = _function_cell(
                name, self.funcs, self.funcs_key
            )
        return ident

    def gen(self, term: Term) -> str:
        self.budget -= 1
        if self.budget < 0:
            raise _Fallback
        kind = term.kind
        args = term.args
        if kind is Kind.CONST:
            return repr(term.payload)
        if kind is Kind.VAR:
            ident = self.var_ids.get(term.payload)  # type: ignore[arg-type]
            if ident is None:
                # Free variable outside the calling convention: the walker
                # handles (and correctly reports) the unbound case.
                raise _Fallback
            return ident
        if kind is Kind.ITE:
            cond, then, other = (self.gen(a) for a in args)
            return f"(({then}) if ({cond}) else ({other}))"
        if kind is Kind.AND:
            if not args:
                return "True"
            return "bool(" + " and ".join(f"({self.gen(a)})" for a in args) + ")"
        if kind is Kind.OR:
            if not args:
                return "False"
            return "bool(" + " or ".join(f"({self.gen(a)})" for a in args) + ")"
        if kind is Kind.NOT:
            return f"(not ({self.gen(args[0])}))"
        if kind is Kind.IMPLIES:
            left, right = self.gen(args[0]), self.gen(args[1])
            return f"((not ({left})) or bool({right}))"
        if kind is Kind.APP:
            name = term.payload
            open_ident = self.open_ids.get(name)  # type: ignore[arg-type]
            if open_ident is not None:
                actuals = ", ".join(f"({self.gen(a)})" for a in args)
                return f"{open_ident}({actuals})"
            if name not in self.funcs:
                # The walker raises before evaluating the actuals.
                return f"_raise({f'undefined function {name}'!r})"
            params, _ = self.funcs[name]  # type: ignore[index]
            if len(params) != len(args):
                # The walker evaluates the actuals first, then raises.
                actuals = ", ".join(f"({self.gen(a)})" for a in args)
                message = f"arity mismatch calling {name}"
                return f"_raise({message!r}, {actuals})"
            ident = self._func_ident(name)  # type: ignore[arg-type]
            actuals = ", ".join(f"({self.gen(a)})" for a in args)
            return f"{ident}({actuals})"
        if kind is Kind.ADD:
            if not args:
                return "0"
            return "(" + " + ".join(f"({self.gen(a)})" for a in args) + ")"
        if kind is Kind.SUB:
            return f"(({self.gen(args[0])}) - ({self.gen(args[1])}))"
        if kind is Kind.NEG:
            return f"(-({self.gen(args[0])}))"
        if kind is Kind.MUL:
            return f"(({self.gen(args[0])}) * ({self.gen(args[1])}))"
        if kind is Kind.GE:
            return f"(({self.gen(args[0])}) >= ({self.gen(args[1])}))"
        if kind is Kind.GT:
            return f"(({self.gen(args[0])}) > ({self.gen(args[1])}))"
        if kind is Kind.LE:
            return f"(({self.gen(args[0])}) <= ({self.gen(args[1])}))"
        if kind is Kind.LT:
            return f"(({self.gen(args[0])}) < ({self.gen(args[1])}))"
        if kind is Kind.EQ:
            return f"(({self.gen(args[0])}) == ({self.gen(args[1])}))"
        raise _Fallback  # pragma: no cover - the Kind enum is closed


def _compile_raw(
    term: Term,
    variables: Sequence[str],
    funcs: Dict[str, Tuple[Tuple[Term, ...], Term]],
    funcs_key: Tuple,
    open_funs: Sequence[str],
) -> Optional[Callable]:
    """Compile ``term`` to a positional callable, or None to use the walker.

    The callable's signature is ``(open_fun_0, ..., var_0, var_1, ...)`` —
    open functions (the synth-fun slot of a spec) lead, then one positional
    argument per variable, in the order given.  Variable and function names
    need not be Python identifiers (SyGuS allows ``x!``); they are mapped to
    generated parameter names.
    """
    if term.height > MAX_COMPILED_HEIGHT:
        return None
    var_ids = {name: f"v{i}" for i, name in enumerate(variables)}
    if len(var_ids) != len(variables):
        return None  # duplicate variable names: ambiguous convention
    open_ids = {name: f"g{i}" for i, name in enumerate(open_funs)}
    gen = _Codegen(var_ids, funcs, funcs_key, open_ids)
    try:
        expr = gen.gen(term)
    except _Fallback:
        return None
    params = list(open_ids.values()) + list(var_ids.values())
    source = "def _compiled({}):\n    return {}".format(
        ", ".join(params), expr
    )
    try:
        code = compile(source, "<repro.lang.compile>", "exec")
    except (SyntaxError, RecursionError, MemoryError):
        return None
    exec(code, gen.namespace)
    return gen.namespace["_compiled"]  # type: ignore[return-value]


def _function_cell(
    name: str,
    funcs: Dict[str, Tuple[Tuple[Term, ...], Term]],
    funcs_key: Tuple,
) -> _LateBound:
    """The compiled callable for an interpreted definition, late-bound.

    The cell is registered *before* its body compiles, so (mutually)
    recursive definitions resolve to the in-progress cell and terminate —
    at runtime they recurse exactly like the walker does.
    """
    key = (name, funcs_key)
    cell = _func_cache.get(key)
    if cell is not None:
        return cell
    cell = _LateBound()
    _func_cache[key] = cell
    params, body = funcs[name]
    param_names = tuple(p.payload for p in params)  # type: ignore[misc]
    fn = _compile_raw(body, param_names, funcs, funcs_key, ())
    if fn is None:

        def fn(*values, _body=body, _names=param_names, _funcs=funcs):
            return evaluate(_body, dict(zip(_names, values)), _funcs)

    cell.fn = fn
    return cell


class CompiledTerm:
    """A term closed into a Python callable over its free variables.

    ``variables`` fixes the positional calling convention.  :meth:`eval`
    takes an environment dict and falls back to the AST walker whenever the
    fast path cannot reproduce walker semantics (a variable missing from
    the environment, or a term the codegen refused)."""

    __slots__ = ("term", "variables", "fn", "funcs")

    def __init__(
        self,
        term: Term,
        variables: Tuple[str, ...],
        fn: Optional[Callable],
        funcs: Dict[str, Tuple[Tuple[Term, ...], Term]],
    ) -> None:
        self.term = term
        self.variables = variables
        self.fn = fn
        self.funcs = funcs

    @property
    def compiled(self) -> bool:
        """False when every evaluation routes through the walker."""
        return self.fn is not None

    def __call__(self, *values: Value) -> Value:
        if self.fn is not None:
            return self.fn(*values)
        return evaluate(
            self.term, dict(zip(self.variables, values)), self.funcs
        )

    def eval(self, env: Mapping[str, Value]) -> Value:
        fn = self.fn
        if fn is not None:
            try:
                values = [env[name] for name in self.variables]
            except KeyError:
                # Incomplete environment: the walker decides whether the
                # missing variable is actually reached (lazy ite/and/or).
                return evaluate(self.term, env, self.funcs)
            return fn(*values)
        return evaluate(self.term, env, self.funcs)

    def eval_batch(self, envs: Sequence[Mapping[str, Value]]) -> List[Value]:
        """Evaluate against many environments with one compiled artifact."""
        return [self.eval(env) for env in envs]


class CompiledSpec:
    """A spec compiled with the synth-fun left open as a callable slot.

    ``fn(body_fn, *values)`` evaluates the spec with every invocation of
    the open function dispatched to ``body_fn`` (itself typically a
    :class:`CompiledTerm` over the synth-fun's parameters)."""

    __slots__ = ("spec", "fun_name", "variables", "fn", "funcs")

    def __init__(
        self,
        spec: Term,
        fun_name: str,
        variables: Tuple[str, ...],
        fn: Optional[Callable],
        funcs: Dict[str, Tuple[Tuple[Term, ...], Term]],
    ) -> None:
        self.spec = spec
        self.fun_name = fun_name
        self.variables = variables
        self.fn = fn
        self.funcs = funcs

    @property
    def compiled(self) -> bool:
        return self.fn is not None

    def try_eval(
        self, body_fn: Callable, env: Mapping[str, Value]
    ) -> Optional[bool]:
        """The spec's truth value on ``env``, or None to use the walker.

        None does *not* mean false — it means this compiled artifact cannot
        answer (not compiled, or the environment misses a variable) and the
        caller must fall back to walker evaluation."""
        fn = self.fn
        if fn is None:
            return None
        values: List[Value] = []
        for name in self.variables:
            if name in env:
                values.append(env[name])
            else:
                return None
        return bool(fn(body_fn, *values))


def compile_term(
    term: Term,
    variables: Optional[Sequence[str]] = None,
    funcs: Optional[FunctionDefs] = None,
) -> CompiledTerm:
    """Compile ``term`` (cached globally on the interned term).

    ``variables`` fixes the positional argument order; by default the
    term's free variables in sorted name order.  ``funcs`` supplies
    interpreted definitions, compiled recursively and shared through their
    own cache."""
    funcs_norm, funcs_key = _normalize_funcs(funcs)
    if variables is None:
        names = tuple(sorted(v.payload for v in free_vars(term)))
    else:
        names = tuple(variables)
    key = (term, names, funcs_key)
    cached = _term_cache.get(key)
    if cached is not None:
        _term_cache.move_to_end(key)
        return cached
    fn = _compile_raw(term, names, funcs_norm, funcs_key, ())
    compiled = CompiledTerm(term, names, fn, funcs_norm)
    _term_cache[key] = compiled
    if len(_term_cache) > _CACHE_CAP:
        _term_cache.popitem(last=False)
    return compiled


def compile_spec(
    spec: Term,
    fun_name: str,
    variables: Sequence[str],
    funcs: Optional[FunctionDefs] = None,
) -> CompiledSpec:
    """Compile a spec with ``fun_name`` left open (cached globally)."""
    funcs_norm, funcs_key = _normalize_funcs(funcs)
    names = tuple(variables)
    key = (spec, fun_name, names, funcs_key)
    cached = _spec_cache.get(key)
    if cached is not None:
        _spec_cache.move_to_end(key)
        return cached
    fn = _compile_raw(spec, names, funcs_norm, funcs_key, (fun_name,))
    compiled = CompiledSpec(spec, fun_name, names, fn, funcs_norm)
    _spec_cache[key] = compiled
    if len(_spec_cache) > _CACHE_CAP:
        _spec_cache.popitem(last=False)
    return compiled
