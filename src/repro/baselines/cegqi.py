"""A CVC4-style deductive baseline: counterexample-guided quantifier
instantiation for single-invocation problems (Reynolds et al., CAV 2015).

For a single-invocation specification ``Phi(f(x), x)`` the solver treats the
function's output as a first-order variable ``r`` and searches for a witness
term for ``exists r . Psi(r, x)``.  Witness candidates are harvested from the
terms the specification itself compares against ``r`` (plus small offsets),
and the synthesized solution is the ite-cascade

    ite(Psi[t1/r], t1, ite(Psi[t2/r], t2, ... tn))

— which is why this family is extremely fast on CLIA-track problems but
produces the largest solutions in the paper's Table 1.  On problems that are
not single-invocation (e.g. the INV track's ``inv(x)``/``inv(x')``) or whose
grammar is not full CLIA, it falls back to a size-capped enumerative search,
mirroring CVC4's weaker enumerative mode outside its sweet spot.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence, Set

from repro.lang.ast import Kind, Term
from repro.lang.builders import add, and_, int_const, int_var, ite, or_, sub
from repro.lang.simplify import simplify
from repro.lang.sorts import INT
from repro.lang.traversal import (
    contains_app,
    free_vars,
    subexpressions,
    substitute,
)
from repro.smt.solver import SolverBudgetExceeded
from repro.sygus.problem import Solution, SygusProblem
from repro.synth.cegis import CegisTimeout
from repro.synth.config import SynthConfig
from repro.synth.encoding import grammar_is_full_clia
from repro.synth.result import SynthesisOutcome, SynthesisStats


class CegqiSolver:
    """Single-invocation CEGQI with enumerative fallback."""

    name = "cegqi"

    def __init__(
        self,
        config: Optional[SynthConfig] = None,
        fallback_max_size: int = 5,
    ) -> None:
        self.config = config or SynthConfig()
        self.fallback_max_size = fallback_max_size

    def synthesize(self, problem: SygusProblem) -> SynthesisOutcome:
        config = self.config
        stats = SynthesisStats()
        start = time.monotonic()
        deadline = start + config.timeout if config.timeout is not None else None
        body: Optional[Term] = None
        timed_out = False
        try:
            if self._applicable(problem):
                body = self._cegqi(problem, deadline, stats)
            if body is None:
                body = self._fallback(problem, deadline, stats)
        except (CegisTimeout, SolverBudgetExceeded):
            timed_out = True
        if body is None:
            return SynthesisOutcome(None, stats, timed_out=timed_out)
        elapsed = time.monotonic() - start
        return SynthesisOutcome(Solution(problem, body, self.name, elapsed), stats)

    # -- Applicability --------------------------------------------------------------

    def _applicable(self, problem: SygusProblem) -> bool:
        if problem.synth_fun.return_sort is not INT:
            return False
        if not grammar_is_full_clia(problem.synth_fun.grammar):
            return False
        invocations = problem.invocations()
        if not invocations:
            return False
        if not problem.is_single_invocation():
            return False
        args = invocations[0].args
        return all(a.kind is Kind.VAR for a in args) and len(set(args)) == len(args)

    # -- The CEGQI loop ----------------------------------------------------------------

    def _cegqi(
        self,
        problem: SygusProblem,
        deadline: Optional[float],
        stats: SynthesisStats,
    ) -> Optional[Term]:
        invocation = problem.invocations()[0]
        return_var = int_var(f"r!{problem.fun_name}")
        psi = substitute(problem.spec, {invocation: return_var})
        witnesses = self._witness_terms(psi, return_var, problem)
        # Build the ite cascade over harvested witnesses, largest cascade
        # first pruned by which witnesses are ever needed (CEGIS-style).
        needed: List[Term] = []
        examples: List[dict] = []
        for _ in range(self.config.max_cegis_rounds):
            if deadline is not None and time.monotonic() > deadline:
                raise CegisTimeout("cegqi deadline exceeded")
            candidate = self._cascade(psi, return_var, needed, invocation, problem)
            stats.cegis_iterations += 1
            ok, counterexample = problem.verify(candidate, deadline)
            if ok:
                return self._rename_to_params(candidate, invocation, problem)
            assert counterexample is not None
            examples.append(counterexample)
            # Instantiate: find a witness that works on the counterexample.
            witness = self._find_witness(
                psi, return_var, witnesses, counterexample, problem
            )
            if witness is None:
                return None
            if witness in needed:
                return None  # no progress: the cascade logic cannot improve
            needed.append(witness)
        return None

    def _witness_terms(
        self, psi: Term, return_var: Term, problem: SygusProblem
    ) -> List[Term]:
        """Terms compared against the return variable, with +-1 offsets."""
        harvested: List[Term] = []
        seen: Set[Term] = set()

        def register(term: Term) -> None:
            for variant in (term, simplify(add(term, 1)), simplify(sub(term, 1))):
                if variant not in seen:
                    seen.add(variant)
                    harvested.append(variant)

        for sub_term in subexpressions(psi):
            if sub_term.kind in (Kind.GE, Kind.GT, Kind.LE, Kind.LT, Kind.EQ):
                left, right = sub_term.args
                if left is return_var and return_var not in free_vars(right):
                    register(right)
                elif right is return_var and return_var not in free_vars(left):
                    register(left)
        register(int_const(0))
        return harvested

    def _cascade(
        self,
        psi: Term,
        return_var: Term,
        needed: Sequence[Term],
        invocation: Term,
        problem: SygusProblem,
    ) -> Term:
        if not needed:
            return int_const(0)
        result = needed[-1]
        for witness in reversed(needed[:-1]):
            condition = simplify(substitute(psi, {return_var: witness}))
            result = ite(condition, witness, result)
        return simplify(result)

    def _find_witness(
        self,
        psi: Term,
        return_var: Term,
        witnesses: Sequence[Term],
        example: dict,
        problem: SygusProblem,
    ) -> Optional[Term]:
        from repro.lang.evaluator import EvaluationError, evaluate

        for witness in witnesses:
            try:
                value = evaluate(
                    substitute(psi, {return_var: witness}), example
                )
            except EvaluationError:
                continue
            if value:
                return witness
        return None

    def _rename_to_params(
        self, body: Term, invocation: Term, problem: SygusProblem
    ) -> Term:
        renaming = dict(zip(invocation.args, problem.synth_fun.params))
        return substitute(body, renaming)

    # -- Fallback ------------------------------------------------------------------------

    def _fallback(
        self,
        problem: SygusProblem,
        deadline: Optional[float],
        stats: SynthesisStats,
    ) -> Optional[Term]:
        """A size-capped enumerative search (CVC4's non-CEGQI mode)."""
        from repro.baselines.eusolver import EnumerativeSolver

        remaining = None
        if deadline is not None:
            remaining = max(deadline - time.monotonic(), 0.1)
        config = SynthConfig(
            timeout=remaining,
            max_cegis_rounds=self.config.max_cegis_rounds,
        )
        solver = EnumerativeSolver(config, max_size=self.fallback_max_size)
        outcome = solver.synthesize(problem)
        stats.cegis_iterations += outcome.stats.cegis_iterations
        if outcome.timed_out:
            raise CegisTimeout("cegqi fallback timed out")
        return outcome.solution.body if outcome.solution else None
