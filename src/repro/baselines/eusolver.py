"""An EUSolver-style enumerative baseline.

Reimplements the algorithmic core of EUSolver (Alur, Radhakrishna, Udupa,
TACAS 2017): bottom-up term enumeration ordered by size with *observational
equivalence* pruning on the current example set, plus the divide-and-conquer
unification step — when no single term satisfies every example, enumerate
predicates and learn a decision tree that stitches covering terms together.

Solutions are guaranteed smallest-first with respect to the enumeration
order, which is why this baseline wins the solution-size comparison
(Table 1) while losing on scalability (search grows exponentially in
solution size).
"""

from __future__ import annotations

import itertools
import math
import time
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lang.ast import Kind, Term
from repro.lang.builders import int_const, ite
from repro.lang.compile import compile_term
from repro.lang.evaluator import EvaluationError, Value, evaluate
from repro.lang.sorts import BOOL, INT, Sort
from repro.lang.traversal import subexpressions, substitute
from repro.smt.solver import SolverBudgetExceeded
from repro.sygus.grammar import (
    Grammar,
    is_any_const_ref,
    is_nonterminal_ref,
    ref_name,
)
from repro.sygus.problem import Solution, SygusProblem
from repro.synth.cegis import CegisTimeout, Example, cegis
from repro.synth.config import SynthConfig
from repro.synth.result import SynthesisOutcome, SynthesisStats


def spec_constants(problem: SygusProblem) -> List[int]:
    """Integer literals worth trying for ``(Constant Int)`` placeholders."""
    constants: Set[int] = {0, 1}
    for sub in subexpressions(problem.spec):
        if sub.kind is Kind.CONST and sub.sort is INT:
            constants.add(sub.payload)  # type: ignore[arg-type]
            constants.add(sub.payload + 1)  # type: ignore[operator]
            constants.add(sub.payload - 1)  # type: ignore[operator]
    return sorted(constants, key=lambda c: (abs(c), c))[:12]


class TermEnumerator:
    """Bottom-up enumeration of grammar terms by size, per nonterminal.

    ``terms(nt, size)`` returns all observationally distinct terms of that
    exact size (size = number of production applications).
    """

    def __init__(
        self,
        grammar: Grammar,
        constants: Sequence[int],
        examples: Sequence[Example],
        funcs,
        max_per_size: int = 4000,
    ) -> None:
        self.grammar = grammar
        self.constants = list(constants)
        self.examples = list(examples)
        self.funcs = funcs
        self.max_per_size = max_per_size
        self._by_size: Dict[Tuple[str, int], List[Term]] = {}
        self._signatures: Dict[str, Set[Tuple]] = {nt: set() for nt in grammar.nonterminals}

    def _signature(self, term: Term) -> Optional[Tuple]:
        # Compiled observational-equivalence check: the term compiles once
        # (cached globally on the interned term, so re-enumeration in later
        # CEGIS rounds reuses it) and runs against every example.
        compiled = compile_term(term, funcs=self.funcs)
        values = []
        for example in self.examples:
            try:
                values.append(compiled.eval(example))
            except EvaluationError:
                return None
        return tuple(values)

    def terms(self, nt: str, size: int) -> List[Term]:
        key = (nt, size)
        cached = self._by_size.get(key)
        if cached is not None:
            return cached
        result: List[Term] = []
        for rhs in self.grammar.productions.get(nt, ()):
            for term in self._expand(rhs, size - 1):
                if len(result) >= self.max_per_size:
                    break
                if not self.examples:
                    result.append(term)
                    continue
                signature = self._signature(term)
                if signature is None:
                    continue
                sig_key = (signature,)
                if (size, sig_key) in self._signatures[nt]:
                    continue
                # Observational equivalence across *all* sizes for this nt.
                if any(
                    (s, sig_key) in self._signatures[nt] for s in range(1, size)
                ):
                    continue
                self._signatures[nt].add((size, sig_key))
                result.append(term)
        self._by_size[key] = result
        return result

    def _expand(self, rhs: Term, budget: int) -> Iterable[Term]:
        """All instantiations of ``rhs`` whose placeholder subtrees total
        ``budget`` size units."""
        refs = _collect_refs(rhs)
        if not refs:
            if budget != 0:
                return
            if is_any_const_ref(rhs):
                for constant in self.constants:
                    yield int_const(constant)
            else:
                yield rhs
            return
        if budget < len(refs):
            return
        for split in _compositions(budget, len(refs)):
            choices = [
                self.terms(ref_name(ref), part) for ref, part in zip(refs, split)
            ]
            if any(not c for c in choices):
                continue
            for combo in itertools.product(*choices):
                yield _instantiate_refs(rhs, list(combo))


def _collect_refs(rhs: Term) -> List[Term]:
    if is_nonterminal_ref(rhs):
        return [rhs]
    refs: List[Term] = []
    for arg in rhs.args:
        refs.extend(_collect_refs(arg))
    return refs


def _instantiate_refs(rhs: Term, replacements: List[Term]) -> Term:
    state = {"index": 0}

    def go(t: Term) -> Term:
        if is_nonterminal_ref(t):
            replacement = replacements[state["index"]]
            state["index"] += 1
            return replacement
        if not t.args:
            return t
        return Term.make(t.kind, tuple(go(a) for a in t.args), t.payload, t.sort)

    return go(rhs)


def _compositions(total: int, parts: int) -> Iterable[Tuple[int, ...]]:
    """All ways to write ``total`` as an ordered sum of ``parts`` positives."""
    if parts == 1:
        yield (total,)
        return
    for first in range(1, total - parts + 2):
        for rest in _compositions(total - first, parts - 1):
            yield (first,) + rest


class EnumerativeSolver:
    """The EUSolver-style baseline (see module docstring)."""

    name = "eusolver"

    def __init__(self, config: Optional[SynthConfig] = None, max_size: int = 9):
        self.config = config or SynthConfig()
        self.max_size = max_size

    def synthesize(self, problem: SygusProblem) -> SynthesisOutcome:
        config = self.config
        stats = SynthesisStats()
        start = time.monotonic()
        deadline = start + config.timeout if config.timeout is not None else None

        def ind_synth(examples: List[Example]) -> Optional[Term]:
            return self.synthesize_from_examples(problem, examples, deadline, stats)

        try:
            body, _, iterations = cegis(
                problem,
                ind_synth,
                max_rounds=config.max_cegis_rounds,
                deadline=deadline,
            )
        except (CegisTimeout, SolverBudgetExceeded):
            return SynthesisOutcome(None, stats, timed_out=True)
        stats.cegis_iterations += iterations
        if body is None:
            return SynthesisOutcome(None, stats)
        elapsed = time.monotonic() - start
        return SynthesisOutcome(Solution(problem, body, self.name, elapsed), stats)

    # -- Inductive synthesis over a concrete example set ---------------------------

    def synthesize_from_examples(
        self,
        problem: SygusProblem,
        examples: List[Example],
        deadline: Optional[float],
        stats: SynthesisStats,
    ) -> Optional[Term]:
        grammar = problem.synth_fun.grammar
        funcs = problem.interpreted_defs()
        enumerator = TermEnumerator(
            grammar, spec_constants(problem), examples, funcs
        )
        if not examples:
            for size in range(1, self.max_size + 1):
                terms = enumerator.terms(grammar.start, size)
                if terms:
                    return terms[0]
            return None
        covering: List[Tuple[Term, Tuple[bool, ...]]] = []
        for size in range(1, self.max_size + 1):
            _check_deadline(deadline)
            for term in enumerator.terms(grammar.start, size):
                coverage = tuple(
                    problem.spec_holds(term, example) for example in examples
                )
                if all(coverage):
                    return term
                if any(coverage):
                    covering.append((term, coverage))
            # Unification: try to stitch terms with a decision tree once the
            # collected terms jointly cover all examples.
            if covering and grammar.start_sort is INT:
                union = [
                    any(cov[i] for _, cov in covering)
                    for i in range(len(examples))
                ]
                if all(union):
                    stitched = self._unify(
                        problem, enumerator, covering, examples, size, deadline
                    )
                    if stitched is not None:
                        return stitched
        return None

    def _unify(
        self,
        problem: SygusProblem,
        enumerator: TermEnumerator,
        covering: List[Tuple[Term, Tuple[bool, ...]]],
        examples: List[Example],
        size_limit: int,
        deadline: Optional[float],
    ) -> Optional[Term]:
        """Decision-tree learning over enumerated predicates (ID3-style)."""
        grammar = problem.synth_fun.grammar
        bool_nts = [n for n, s in grammar.nonterminals.items() if s is BOOL]
        if not bool_nts:
            return None
        funcs = problem.interpreted_defs()
        predicates: List[Tuple[Term, Tuple[bool, ...]]] = []
        for size in range(1, size_limit + 1):
            for nt in bool_nts:
                for predicate in enumerator.terms(nt, size):
                    _check_deadline(deadline)
                    compiled = compile_term(predicate, funcs=funcs)
                    try:
                        values = tuple(
                            bool(compiled.eval(example))
                            for example in examples
                        )
                    except EvaluationError:
                        continue
                    predicates.append((predicate, values))
        indices = tuple(range(len(examples)))
        return self._learn(covering, predicates, indices, depth=4)

    def _learn(
        self,
        covering: List[Tuple[Term, Tuple[bool, ...]]],
        predicates: List[Tuple[Term, Tuple[bool, ...]]],
        indices: Tuple[int, ...],
        depth: int,
    ) -> Optional[Term]:
        for term, coverage in covering:
            if all(coverage[i] for i in indices):
                return term
        if depth == 0:
            return None
        best = None
        best_score = -1.0
        for predicate, values in predicates:
            true_side = tuple(i for i in indices if values[i])
            false_side = tuple(i for i in indices if not values[i])
            if not true_side or not false_side:
                continue
            score = _entropy_gain(covering, indices, true_side, false_side)
            if score > best_score:
                best_score = score
                best = (predicate, true_side, false_side)
        if best is None:
            return None
        predicate, true_side, false_side = best
        left = self._learn(covering, predicates, true_side, depth - 1)
        if left is None:
            return None
        right = self._learn(covering, predicates, false_side, depth - 1)
        if right is None:
            return None
        return ite(predicate, left, right)


def _entropy_gain(
    covering: List[Tuple[Term, Tuple[bool, ...]]],
    indices: Tuple[int, ...],
    true_side: Tuple[int, ...],
    false_side: Tuple[int, ...],
) -> float:
    """Heuristic split quality: prefer balanced splits that keep each side
    coverable by a single term."""

    def side_score(side: Tuple[int, ...]) -> float:
        best_cover = 0
        for _, coverage in covering:
            count = sum(1 for i in side if coverage[i])
            best_cover = max(best_cover, count)
        return best_cover / max(len(side), 1)

    balance = min(len(true_side), len(false_side)) / max(len(indices), 1)
    return side_score(true_side) + side_score(false_side) + 0.25 * balance


def _check_deadline(deadline: Optional[float]) -> None:
    if deadline is not None and time.monotonic() > deadline:
        raise CegisTimeout("enumeration deadline exceeded")
