"""A LoopInvGen-style data-driven invariant inference baseline.

Reimplements the PIE/LoopInvGen architecture (Padhi & Millstein): the solver
learns the invariant as a boolean function over a pool of *candidate
features* (octagonal atoms ``+-x +-y <= c`` with constants harvested from the
specification), trained on labelled program states:

- positive states: reachable from the precondition (sampled by executing the
  transition relation);
- negative states: states violating the postcondition;
- implication pairs from failed inductiveness checks, resolved into labels
  CEGIS-style.

Like the original, it participates only in the INV track.
"""

from __future__ import annotations

import itertools
import time
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.lang.ast import Kind, Term
from repro.lang.builders import add, and_, ge, int_const, le, not_, or_, sub
from repro.lang.evaluator import EvaluationError, Value, evaluate
from repro.lang.simplify import simplify
from repro.lang.sorts import BOOL
from repro.lang.traversal import subexpressions
from repro.smt.solver import SolverBudgetExceeded
from repro.sygus.problem import InvariantProblem, Solution, SygusProblem
from repro.synth.cegis import CegisTimeout
from repro.synth.config import SynthConfig
from repro.synth.result import SynthesisOutcome, SynthesisStats

State = Tuple[int, ...]


class LoopInvGenSolver:
    """Data-driven invariant inference over octagonal features."""

    name = "loopinvgen"

    def __init__(
        self,
        config: Optional[SynthConfig] = None,
        max_rounds: int = 60,
        max_unroll: int = 300,
    ) -> None:
        self.config = config or SynthConfig()
        self.max_rounds = max_rounds
        self.max_unroll = max_unroll

    def synthesize(self, problem: SygusProblem) -> SynthesisOutcome:
        stats = SynthesisStats()
        start = time.monotonic()
        config = self.config
        deadline = start + config.timeout if config.timeout is not None else None
        invariant = problem.invariant
        if problem.track != "INV" or invariant is None:
            return SynthesisOutcome(None, stats)
        try:
            body = self._infer(problem, invariant, deadline, stats)
        except (CegisTimeout, SolverBudgetExceeded):
            return SynthesisOutcome(None, stats, timed_out=True)
        if body is None:
            return SynthesisOutcome(None, stats)
        elapsed = time.monotonic() - start
        return SynthesisOutcome(Solution(problem, body, self.name, elapsed), stats)

    # -- Main loop ---------------------------------------------------------------------

    def _infer(
        self,
        problem: SygusProblem,
        invariant: InvariantProblem,
        deadline: Optional[float],
        stats: SynthesisStats,
    ) -> Optional[Term]:
        variables = [v.payload for v in invariant.variables]
        features = self._features(invariant)
        positives: Set[State] = set()
        negatives: Set[State] = set()
        # Seed the positive pool by sampling an initial state from the
        # precondition and executing the loop from it.
        seed = self._sample_pre(invariant, variables)
        if seed is not None:
            positives.update(self._unroll(invariant, seed))
        for _ in range(self.max_rounds):
            if deadline is not None and time.monotonic() > deadline:
                raise CegisTimeout("loopinvgen deadline exceeded")
            stats.cegis_iterations += 1
            candidate = self._learn(features, variables, positives, negatives)
            if candidate is None:
                return None
            ok, counterexample = problem.verify(candidate, deadline)
            if ok:
                return candidate
            assert counterexample is not None
            self._absorb_counterexample(
                invariant, candidate, counterexample, positives, negatives
            )
        return None

    def _absorb_counterexample(
        self,
        invariant: InvariantProblem,
        candidate: Term,
        counterexample: Dict[str, Value],
        positives: Set[State],
        negatives: Set[State],
    ) -> None:
        """Label the counterexample state(s) by which condition failed."""
        variables = [v.payload for v in invariant.variables]
        state = tuple(int(counterexample.get(name, 0)) for name in variables)
        env = dict(zip(variables, state))
        primed_state = tuple(
            int(counterexample.get(name + "!", 0)) for name in variables
        )
        pre_holds = bool(evaluate(invariant.pre, env))
        post_holds = bool(evaluate(invariant.post, env))
        inv_holds = self._holds(candidate, invariant, state)
        if pre_holds and not inv_holds:
            positives.add(state)
            positives.update(self._unroll(invariant, state))
            return
        if inv_holds and not post_holds:
            negatives.add(state)
            return
        # Inductiveness failure: inv(s) and trans(s, s') but not inv(s').
        if state in positives or self._reachable(invariant, primed_state, positives):
            positives.add(primed_state)
        else:
            negatives.add(state)

    def _reachable(
        self, invariant: InvariantProblem, state: State, positives: Set[State]
    ) -> bool:
        return state in positives

    def _holds(
        self, candidate: Term, invariant: InvariantProblem, state: State
    ) -> bool:
        env = {v.payload: value for v, value in zip(invariant.variables, state)}
        try:
            return bool(evaluate(candidate, env))
        except EvaluationError:
            return False

    # -- Sampling ----------------------------------------------------------------------

    def _sample_pre(
        self, invariant: InvariantProblem, variables: Sequence[str]
    ) -> Optional[State]:
        from repro.smt import check_sat

        result = check_sat(invariant.pre)
        if not result.is_sat or result.model is None:
            return None
        return tuple(int(result.model.get(name, 0)) for name in variables)

    def _unroll(self, invariant: InvariantProblem, initial: State) -> List[State]:
        """Execute the loop from ``initial`` to harvest reachable states.

        Works when the transition relation is a conjunction of functional
        updates ``x' = t(x)`` (the common INV-track shape); otherwise returns
        just the initial state.
        """
        updates = self._functional_updates(invariant)
        if updates is None:
            return [initial]
        variables = [v.payload for v in invariant.variables]
        states = [initial]
        current = initial
        for _ in range(self.max_unroll):
            env = dict(zip(variables, current))
            try:
                succ = tuple(
                    int(evaluate(updates[name], env)) for name in variables
                )
            except EvaluationError:
                break
            if succ == current:
                break
            states.append(succ)
            current = succ
        return states

    def _functional_updates(
        self, invariant: InvariantProblem
    ) -> Optional[Dict[str, Term]]:
        primed = {invariant.primed(v): v for v in invariant.variables}
        updates: Dict[str, Term] = {}
        conjuncts = (
            list(invariant.trans.args)
            if invariant.trans.kind is Kind.AND
            else [invariant.trans]
        )
        for conjunct in conjuncts:
            if conjunct.kind is not Kind.EQ:
                return None
            left, right = conjunct.args
            if left in primed:
                updates[primed[left].payload] = right
            elif right in primed:
                updates[primed[right].payload] = left
            else:
                return None
        if set(updates) != {v.payload for v in invariant.variables}:
            return None
        return updates

    # -- Feature synthesis ---------------------------------------------------------------

    def _features(self, invariant: InvariantProblem) -> List[Term]:
        """Octagonal feature pool with spec-harvested constants."""
        constants: Set[int] = {0, 1}
        for formula in (invariant.pre, invariant.trans, invariant.post):
            for sub_term in subexpressions(formula):
                if sub_term.kind is Kind.CONST and isinstance(sub_term.payload, int):
                    constants.add(sub_term.payload)
                    constants.add(sub_term.payload - 1)
                    constants.add(sub_term.payload + 1)
        features: List[Term] = []
        variables = list(invariant.variables)
        for v in variables:
            for c in sorted(constants):
                features.append(ge(v, c))
                features.append(le(v, c))
        for v1, v2 in itertools.combinations(variables, 2):
            features.append(ge(v1, v2))
            features.append(le(v1, v2))
            for c in sorted(constants):
                if c != 0:
                    features.append(ge(add(v1, v2), c))
                    features.append(le(add(v1, v2), c))
                    features.append(ge(sub(v1, v2), c))
                    features.append(le(sub(v1, v2), c))
        return features

    # -- Learning -------------------------------------------------------------------------

    def _learn(
        self,
        features: Sequence[Term],
        variables: Sequence[str],
        positives: Set[State],
        negatives: Set[State],
    ) -> Optional[Term]:
        """Greedy CNF learning: conjoin clauses until all negatives die.

        Every clause must hold on all positive states; each clause is a
        disjunction of at most two features chosen greedily to eliminate the
        most remaining negatives (a simplified PIE boolean learner).
        """
        if not negatives:
            return simplify(and_())  # `true` until a negative shows up
        feature_values: List[Tuple[Term, Dict[State, bool]]] = []
        for feature in features:
            values: Dict[State, bool] = {}
            usable = True
            for state in itertools.chain(positives, negatives):
                env = dict(zip(variables, state))
                try:
                    values[state] = bool(evaluate(feature, env))
                except EvaluationError:
                    usable = False
                    break
            if usable:
                feature_values.append((feature, values))
        remaining = set(negatives)
        clauses: List[Term] = []
        for _ in range(8):
            if not remaining:
                break
            best = None
            best_killed: FrozenSet[State] = frozenset()
            candidates = self._clause_candidates(feature_values, positives)
            for clause, values in candidates:
                killed = frozenset(s for s in remaining if not values[s])
                if len(killed) > len(best_killed):
                    best = clause
                    best_killed = killed
            if best is None or not best_killed:
                return None
            clauses.append(best)
            remaining -= best_killed
        if remaining:
            return None
        return simplify(and_(*clauses))

    def _clause_candidates(
        self,
        feature_values: List[Tuple[Term, Dict[State, bool]]],
        positives: Set[State],
    ):
        """Clauses (single features or 2-feature disjunctions) true on all
        positives."""
        singles = []
        for feature, values in feature_values:
            if all(values[s] for s in positives):
                yield feature, values
            else:
                singles.append((feature, values))
        for (f1, v1), (f2, v2) in itertools.combinations(singles, 2):
            merged = {s: v1[s] or v2[s] for s in v1}
            if all(merged[s] for s in positives):
                yield or_(f1, f2), merged
