"""Baseline solvers the paper compares against (Section 7).

These reimplement the *algorithmic families* of the original comparators:

- :mod:`repro.baselines.eusolver` — bottom-up size enumeration with
  observational equivalence and decision-tree unification (EUSolver).
- :mod:`repro.baselines.cegqi` — single-invocation deductive synthesis via
  counterexample-guided term harvesting (CVC4's CEGQI).
- :mod:`repro.baselines.loopinvgen` — data-driven invariant inference over
  sampled program states (LoopInvGen).
"""

from repro.baselines.cegqi import CegqiSolver
from repro.baselines.eusolver import EnumerativeSolver
from repro.baselines.loopinvgen import LoopInvGenSolver

__all__ = ["CegqiSolver", "EnumerativeSolver", "LoopInvGenSolver"]
