"""SyGuS front-end: grammars, problems, and the SyGuS-IF parser."""

from repro.sygus.grammar import (
    AnyConstMarker,
    Grammar,
    InterpretedFunction,
    any_const,
    clia_grammar,
    nonterminal,
    qm_grammar,
)
from repro.sygus.problem import (
    InvariantProblem,
    Solution,
    SynthFun,
    SygusProblem,
)
from repro.sygus.parser import parse_sygus_file, parse_sygus_text

__all__ = [
    "AnyConstMarker",
    "Grammar",
    "InterpretedFunction",
    "any_const",
    "clia_grammar",
    "nonterminal",
    "qm_grammar",
    "InvariantProblem",
    "Solution",
    "SynthFun",
    "SygusProblem",
    "parse_sygus_file",
    "parse_sygus_text",
]
