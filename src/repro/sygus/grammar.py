"""Expression grammars (Definition 2.6 of the paper).

A grammar's production right-hand sides are ordinary terms in which
*nonterminal placeholders* — variables named ``<N>`` — stand for recursive
positions, and the special placeholder ``<const>`` stands for an arbitrary
integer constant (SyGuS ``(Constant Int)``).

Two grammars from the paper ship as builders: :func:`clia_grammar` (the
standard full CLIA grammar ``G_CLIA`` of Example 2.8) and :func:`qm_grammar`
(``G_qm`` of Example 2.7, the running max3-via-qm example).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.lang.ast import Kind, Term
from repro.lang.builders import (
    add,
    and_,
    apply_fn,
    eq,
    ge,
    int_const,
    ite,
    le,
    lt,
    not_,
    or_,
    sub,
    var,
)
from repro.lang.sorts import BOOL, INT, Sort

_NONTERMINAL_PREFIX = "<"
_ANY_CONST_NAME = "<const>"


class AnyConstMarker:
    """Sentinel type for documentation purposes; see :func:`any_const`."""


def nonterminal(name: str, sort: Sort) -> Term:
    """The placeholder variable standing for nonterminal ``name``."""
    return var(f"<{name}>", sort)


def any_const() -> Term:
    """The placeholder matching an arbitrary integer constant."""
    return var(_ANY_CONST_NAME, INT)


def is_nonterminal_ref(term: Term) -> bool:
    return (
        term.kind is Kind.VAR
        and term.payload.startswith(_NONTERMINAL_PREFIX)  # type: ignore[union-attr]
        and term.payload != _ANY_CONST_NAME
    )


def is_any_const_ref(term: Term) -> bool:
    return term.kind is Kind.VAR and term.payload == _ANY_CONST_NAME


def ref_name(term: Term) -> str:
    return term.payload[1:-1]  # type: ignore[index]


@dataclass(frozen=True)
class InterpretedFunction:
    """An interpreted function (Definition 2.4): a name with a CLIA body."""

    name: str
    params: Tuple[Term, ...]
    body: Term

    @property
    def arity(self) -> int:
        return len(self.params)

    @property
    def return_sort(self) -> Sort:
        return self.body.sort

    def instantiate(self, actuals: Sequence[Term]) -> Term:
        """The body with ``actuals`` substituted for the parameters."""
        from repro.lang.traversal import substitute

        if len(actuals) != len(self.params):
            raise ValueError(f"arity mismatch instantiating {self.name}")
        return substitute(self.body, dict(zip(self.params, actuals)))


@dataclass
class Grammar:
    """An expression grammar ``(T, R, N, S, P)``.

    Attributes:
        nonterminals: maps nonterminal name to its sort.
        start: name of the start symbol.
        productions: maps nonterminal name to its RHS patterns (terms over
            placeholders).
        interpreted: interpreted functions usable in productions (the set R).
        params: the variables the generated expressions may mention.
    """

    nonterminals: Dict[str, Sort]
    start: str
    productions: Dict[str, List[Term]]
    interpreted: Dict[str, InterpretedFunction] = field(default_factory=dict)
    params: Tuple[Term, ...] = ()

    def __post_init__(self) -> None:
        if self.start not in self.nonterminals:
            raise ValueError(f"start symbol {self.start!r} is not a nonterminal")
        for name in self.productions:
            if name not in self.nonterminals:
                raise ValueError(f"productions given for unknown nonterminal {name!r}")

    @property
    def start_sort(self) -> Sort:
        return self.nonterminals[self.start]

    def fingerprint(self) -> Tuple:
        """A hashable structural identity (used to deduplicate subproblems)."""
        return (
            self.start,
            tuple(sorted((n, s.name) for n, s in self.nonterminals.items())),
            tuple(
                (n, tuple(self.productions.get(n, ())))
                for n in sorted(self.productions)
            ),
            tuple(sorted(self.interpreted)),
            self.params,
        )

    def with_extra_production(self, nonterminal_name: str, rhs: Term) -> "Grammar":
        """A copy of this grammar with one more production."""
        productions = {n: list(ps) for n, ps in self.productions.items()}
        productions.setdefault(nonterminal_name, []).append(rhs)
        return Grammar(
            dict(self.nonterminals),
            self.start,
            productions,
            dict(self.interpreted),
            self.params,
        )

    def with_interpreted(self, func: InterpretedFunction) -> "Grammar":
        """A copy of this grammar extended with an interpreted function.

        The function becomes available as a production of every nonterminal
        whose sort matches its return sort (the Subterm rule's "add aux to the
        grammar" step).
        """
        grammar = Grammar(
            dict(self.nonterminals),
            self.start,
            {n: list(ps) for n, ps in self.productions.items()},
            dict(self.interpreted),
            self.params,
        )
        grammar.interpreted[func.name] = func
        for nt_name, nt_sort in grammar.nonterminals.items():
            if nt_sort is not func.return_sort:
                continue
            arg_refs = []
            usable = True
            for param in func.params:
                source = self._nonterminal_of_sort(param.sort)
                if source is None:
                    usable = False
                    break
                arg_refs.append(nonterminal(source, param.sort))
            if usable:
                grammar.productions.setdefault(nt_name, []).append(
                    apply_fn(func.name, arg_refs, func.return_sort)
                )
        return grammar

    def _nonterminal_of_sort(self, sort: Sort) -> Optional[str]:
        if self.nonterminals.get(self.start) is sort:
            return self.start
        for name, nt_sort in self.nonterminals.items():
            if nt_sort is sort:
                return name
        return None

    # -- Membership -----------------------------------------------------------

    def generates(self, expr: Term, from_nonterminal: Optional[str] = None) -> bool:
        """Structural membership test: can ``from_nonterminal`` derive ``expr``?

        This is syntactic derivability (no semantic reasoning): constants match
        only explicit constant productions or ``(Constant Int)`` placeholders.
        """
        root = from_nonterminal or self.start
        cache: Dict[Tuple[Term, str], bool] = {}
        in_progress: set = set()

        def derives(t: Term, nt: str) -> bool:
            key = (t, nt)
            hit = cache.get(key)
            if hit is not None:
                return hit
            if key in in_progress:
                return False
            in_progress.add(key)
            result = any(matches(t, rhs) for rhs in self.productions.get(nt, ()))
            in_progress.discard(key)
            cache[key] = result
            return result

        def matches(t: Term, pattern: Term) -> bool:
            if is_nonterminal_ref(pattern):
                return derives(t, ref_name(pattern))
            if is_any_const_ref(pattern):
                return t.kind is Kind.CONST and t.sort is INT
            if pattern.kind is Kind.VAR or pattern.kind is Kind.CONST:
                return t is pattern
            if t.kind is not pattern.kind or t.payload != pattern.payload:
                return False
            if len(t.args) != len(pattern.args):
                # Builders flatten nested n-ary AND/OR/+; re-nest to match
                # the binary production shape.
                if (
                    t.kind in (Kind.ADD, Kind.AND, Kind.OR)
                    and len(pattern.args) == 2
                    and len(t.args) > 2
                ):
                    rest = Term.make(t.kind, t.args[1:], t.payload, t.sort)
                    return matches(t.args[0], pattern.args[0]) and matches(
                        rest, pattern.args[1]
                    )
                return False
            return all(matches(a, p) for a, p in zip(t.args, pattern.args))

        return derives(expr, root)

    def production_signature(self) -> str:
        """A short description, used in logs and test assertions."""
        lines = []
        for name, rules in self.productions.items():
            rhs = " | ".join(repr(r) for r in rules)
            lines.append(f"{name} -> {rhs}")
        return "\n".join(lines)


def minimal_member(grammar: Grammar, from_nonterminal: Optional[str] = None) -> Optional[Term]:
    """A smallest-ish expression derivable from the given nonterminal.

    Prefers terminal productions; otherwise instantiates the first production
    whose recursive positions can themselves be derived (with a cycle guard).
    Returns None for nonterminals that derive nothing.
    """
    from repro.lang.traversal import rewrite_bottom_up

    def derive(nt: str, visiting: frozenset) -> Optional[Term]:
        if nt in visiting:
            return None
        rules = sorted(
            grammar.productions.get(nt, ()),
            key=lambda rhs: sum(1 for _ in _refs_of(rhs)),
        )
        for rhs in rules:
            built = instantiate(rhs, visiting | {nt})
            if built is not None:
                return built
        return None

    def instantiate(rhs: Term, visiting: frozenset) -> Optional[Term]:
        if is_nonterminal_ref(rhs):
            return derive(ref_name(rhs), visiting)
        if is_any_const_ref(rhs):
            return int_const(0)
        if not rhs.args:
            return rhs
        children = []
        for arg in rhs.args:
            child = instantiate(arg, visiting)
            if child is None:
                return None
            children.append(child)
        return Term.make(rhs.kind, tuple(children), rhs.payload, rhs.sort)

    return derive(from_nonterminal or grammar.start, frozenset())


def _refs_of(rhs: Term):
    if is_nonterminal_ref(rhs):
        yield rhs
        return
    for arg in rhs.args:
        yield from _refs_of(arg)


def expand_interpreted(term: Term, functions: Dict[str, InterpretedFunction]) -> Term:
    """Inline every application of the given interpreted functions, to
    fixpoint (bodies may call other interpreted functions)."""
    from repro.lang.traversal import substitute_apps

    result = term
    for _ in range(64):
        changed = False
        for name, func in functions.items():
            expanded = substitute_apps(result, name, func.params, func.body)
            if expanded is not result:
                result = expanded
                changed = True
        if not changed:
            return result
    raise ValueError("interpreted function expansion did not converge")


def clia_grammar(
    params: Sequence[Term],
    start_sort: Sort = INT,
    constants: Iterable[int] = (0, 1),
    allow_any_const: bool = True,
) -> Grammar:
    """The full CLIA grammar ``G_CLIA`` (Example 2.8) over ``params``.

    ``S`` derives every CLIA integer term, ``B`` every CLIA condition.  When
    ``start_sort`` is Bool the start symbol is ``B`` (used by the INV track).
    """
    s = nonterminal("S", INT)
    b = nonterminal("B", BOOL)
    int_params = [p for p in params if p.sort is INT]
    bool_params = [p for p in params if p.sort is BOOL]
    s_rules: List[Term] = [int_const(c) for c in constants]
    if allow_any_const:
        s_rules.append(any_const())
    s_rules.extend(int_params)
    s_rules.extend([add(s, s), sub(s, s), ite(b, s, s)])
    b_rules: List[Term] = list(bool_params)
    b_rules.extend(
        [ge(s, s), le(s, s), lt(s, s), eq(s, s), not_(b), and_(b, b), or_(b, b)]
    )
    return Grammar(
        nonterminals={"S": INT, "B": BOOL},
        start="S" if start_sort is INT else "B",
        productions={"S": s_rules, "B": b_rules},
        interpreted={},
        params=tuple(params),
    )


def qm_function() -> InterpretedFunction:
    """``qm(x1, x2) = ite(x1 < 0, x2, x1)`` (Example 2.5)."""
    x1, x2 = var("x1", INT), var("x2", INT)
    return InterpretedFunction("qm", (x1, x2), ite(lt(x1, 0), x2, x1))


def qm_grammar(params: Sequence[Term]) -> Grammar:
    """``G_qm`` (Example 2.7): S -> 0 | 1 | x.. | S + S | S - S | qm(S, S)."""
    s = nonterminal("S", INT)
    qm = qm_function()
    rules: List[Term] = [int_const(0), int_const(1)]
    rules.extend(p for p in params if p.sort is INT)
    rules.extend(
        [add(s, s), sub(s, s), apply_fn("qm", (s, s), INT)]
    )
    return Grammar(
        nonterminals={"S": INT},
        start="S",
        productions={"S": rules},
        interpreted={"qm": qm},
        params=tuple(params),
    )
