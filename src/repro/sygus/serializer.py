"""Serialising problems back to SyGuS-IF text.

The inverse of :mod:`repro.sygus.parser`: benchmarks built programmatically
(e.g. the generated suite) can be exported as standard ``.sl`` files and fed
to any SyGuS solver — or round-tripped through our own parser, which the
test suite uses as a strong well-formedness check.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.lang.ast import Kind, Term
from repro.lang.printer import to_sexpr
from repro.lang.traversal import contains_app, rewrite_bottom_up
from repro.lang.builders import var
from repro.sygus.grammar import (
    Grammar,
    InterpretedFunction,
    is_any_const_ref,
    is_nonterminal_ref,
    ref_name,
)
from repro.sygus.problem import InvariantProblem, SygusProblem


def _strip_placeholders(term: Term) -> Term:
    """Replace ``<N>`` placeholder variables with plain names for printing."""

    def rw(t: Term) -> Term:
        if is_nonterminal_ref(t):
            return var(ref_name(t), t.sort)
        return t

    return rewrite_bottom_up(term, rw)


def _production_sexpr(rhs: Term) -> str:
    if is_any_const_ref(rhs):
        return "(Constant Int)"
    return to_sexpr(_strip_placeholders(rhs))


def grammar_block(grammar: Grammar) -> str:
    """The v1-style grammar block of a ``synth-fun``."""
    groups: List[str] = []
    ordered = [grammar.start] + [
        nt for nt in grammar.nonterminals if nt != grammar.start
    ]
    for nt in ordered:
        sort = grammar.nonterminals[nt]
        rules = " ".join(
            _production_sexpr(rhs) for rhs in grammar.productions.get(nt, ())
        )
        groups.append(f"({nt} {sort.name} ({rules}))")
    return "(" + " ".join(groups) + ")"


def _define_fun(func: InterpretedFunction) -> str:
    params = " ".join(f"({p.payload} {p.sort.name})" for p in func.params)
    return (
        f"(define-fun {func.name} ({params}) {func.return_sort.name} "
        f"{to_sexpr(func.body)})"
    )


def _ordered_interpreted(grammar: Grammar) -> List[InterpretedFunction]:
    """Interpreted functions in dependency order (callees first)."""
    remaining = dict(grammar.interpreted)
    ordered: List[InterpretedFunction] = []
    emitted: Set[str] = set()
    for _ in range(len(remaining) + 1):
        progressed = False
        for name in list(remaining):
            func = remaining[name]
            deps = {
                other for other in grammar.interpreted if other != name
                and contains_app(func.body, other)
            }
            if deps <= emitted:
                ordered.append(func)
                emitted.add(name)
                del remaining[name]
                progressed = True
        if not progressed:
            break
    ordered.extend(remaining.values())  # cycles: emit anyway
    return ordered


def _conjuncts(spec: Term) -> List[Term]:
    if spec.kind is Kind.AND:
        return list(spec.args)
    return [spec]


def problem_to_sygus(problem: SygusProblem) -> str:
    """Render a problem as SyGuS-IF text.

    Invariant-track problems are rendered with ``synth-inv``/
    ``inv-constraint``; everything else with ``synth-fun`` (including the
    grammar when it is not the default) plus plain ``constraint`` commands.
    """
    if problem.invariant is not None:
        return _invariant_to_sygus(problem)
    lines = ["(set-logic LIA)"]
    fun = problem.synth_fun
    for func in _ordered_interpreted(fun.grammar):
        lines.append(_define_fun(func))
    params = " ".join(f"({p.payload} {p.sort.name})" for p in fun.params)
    lines.append(
        f"(synth-fun {fun.name} ({params}) {fun.return_sort.name}\n"
        f"  {grammar_block(fun.grammar)})"
    )
    for variable in problem.variables:
        lines.append(f"(declare-var {variable.payload} {variable.sort.name})")
    for conjunct in _conjuncts(problem.spec):
        lines.append(f"(constraint {to_sexpr(conjunct)})")
    lines.append("(check-synth)")
    return "\n".join(lines) + "\n"


def _invariant_to_sygus(problem: SygusProblem) -> str:
    invariant = problem.invariant
    assert invariant is not None
    fun = problem.synth_fun
    lines = ["(set-logic LIA)"]
    params = " ".join(f"({p.payload} {p.sort.name})" for p in fun.params)
    lines.append(f"(synth-inv {fun.name} ({params}))")
    current = " ".join(
        f"({v.payload} {v.sort.name})" for v in invariant.variables
    )
    primed = " ".join(
        f"({InvariantProblem.primed(v).payload} {v.sort.name})"
        for v in invariant.variables
    )
    lines.append(f"(define-fun pre_fun ({current}) Bool {to_sexpr(invariant.pre)})")
    lines.append(
        f"(define-fun trans_fun ({current} {primed}) Bool "
        f"{to_sexpr(invariant.trans)})"
    )
    lines.append(
        f"(define-fun post_fun ({current}) Bool {to_sexpr(invariant.post)})"
    )
    lines.append(f"(inv-constraint {fun.name} pre_fun trans_fun post_fun)")
    lines.append("(check-synth)")
    return "\n".join(lines) + "\n"


def multi_problem_to_sygus(problem) -> str:
    """Render a :class:`~repro.sygus.multi.MultiSygusProblem` as SyGuS-IF."""
    lines = ["(set-logic LIA)"]
    emitted: Set[str] = set()
    for fun in problem.synth_funs:
        for func in _ordered_interpreted(fun.grammar):
            if func.name not in emitted:
                emitted.add(func.name)
                lines.append(_define_fun(func))
    for fun in problem.synth_funs:
        params = " ".join(f"({p.payload} {p.sort.name})" for p in fun.params)
        lines.append(
            f"(synth-fun {fun.name} ({params}) {fun.return_sort.name}\n"
            f"  {grammar_block(fun.grammar)})"
        )
    for variable in problem.variables:
        lines.append(f"(declare-var {variable.payload} {variable.sort.name})")
    for conjunct in _conjuncts(problem.spec):
        lines.append(f"(constraint {to_sexpr(conjunct)})")
    lines.append("(check-synth)")
    return "\n".join(lines) + "\n"


def export_suite(directory: str) -> List[str]:
    """Write every suite benchmark as a ``.sl`` file; returns the paths."""
    import os

    from repro.bench.suite import full_suite

    os.makedirs(directory, exist_ok=True)
    paths = []
    for benchmark in full_suite():
        path = os.path.join(directory, f"{benchmark.name}.sl")
        with open(path, "w") as handle:
            handle.write(problem_to_sygus(benchmark.problem()))
        paths.append(path)
    return paths


def _main() -> int:  # pragma: no cover - thin CLI wrapper
    """``python -m repro.sygus.serializer <directory>`` exports the suite."""
    import sys

    directory = sys.argv[1] if len(sys.argv) > 1 else "sl-benchmarks"
    paths = export_suite(directory)
    print(f"wrote {len(paths)} SyGuS-IF files to {directory}/")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(_main())
