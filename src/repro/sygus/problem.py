"""SyGuS problem instances (Definition 2.11) and invariant problems (2.13)."""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.lang.ast import Kind, Term
from repro.lang.builders import and_, apply_fn, eq, implies, int_var, var
from repro.lang.evaluator import Value, evaluate
from repro.lang.printer import define_fun_sexpr
from repro.lang.sorts import BOOL, INT, Sort
from repro.lang.traversal import (
    app_occurrences,
    free_vars,
    substitute_apps,
)
from repro.sygus.grammar import Grammar, InterpretedFunction, clia_grammar


@dataclass(frozen=True)
class SynthFun:
    """The uninterpreted function to synthesize (Definition 2.9)."""

    name: str
    params: Tuple[Term, ...]
    return_sort: Sort
    grammar: Grammar

    @property
    def arity(self) -> int:
        return len(self.params)

    def apply(self, actuals: Sequence[Term]) -> Term:
        return apply_fn(self.name, actuals, self.return_sort)

    def apply_to_params(self) -> Term:
        return self.apply(self.params)


@dataclass(frozen=True)
class SygusProblem:
    """A SyGuS problem ``(T, f, Phi, G)`` with T fixed to CLIA.

    ``spec`` is the constraint conjunction with all ``define-fun`` helper
    macros already inlined, so the only remaining application symbol is the
    synth-fun itself (plus the grammar's interpreted functions, which appear
    only in candidate *solutions*, never in the spec).
    """

    synth_fun: SynthFun
    spec: Term
    variables: Tuple[Term, ...]
    track: str = "General"
    name: str = "unnamed"
    invariant: Optional["InvariantProblem"] = None

    # -- Inspection ------------------------------------------------------------

    @property
    def fun_name(self) -> str:
        return self.synth_fun.name

    def invocations(self) -> List[Term]:
        """Distinct applications of the synth-fun in the spec."""
        return app_occurrences(self.spec, self.fun_name)

    def is_single_invocation(self) -> bool:
        """True when every occurrence of f has the same argument vector."""
        invocations = self.invocations()
        return len({inv.args for inv in invocations}) <= 1

    # -- Semantics ---------------------------------------------------------------

    def instantiate(self, body: Term) -> Term:
        """``Phi[λparams.body / f]`` — the spec with a candidate inlined."""
        return substitute_apps(
            self.spec, self.fun_name, self.synth_fun.params, body
        )

    def interpreted_defs(self) -> Dict[str, Tuple[Tuple[Term, ...], Term]]:
        """Grammar interpreted functions in evaluator format."""
        return {
            name: (func.params, func.body)
            for name, func in self.synth_fun.grammar.interpreted.items()
        }

    def inline_interpreted(self, body: Term) -> Term:
        """Expand the grammar's interpreted functions inside ``body``."""
        result = body
        for _ in range(64):
            changed = False
            for name, func in self.synth_fun.grammar.interpreted.items():
                expanded = substitute_apps(result, name, func.params, func.body)
                if expanded is not result:
                    result = expanded
                    changed = True
            if not changed:
                return result
        raise ValueError("interpreted function expansion did not converge")

    def _compiled_spec(self):
        """The spec compiled with the synth-fun open (cached per instance)."""
        cached = self.__dict__.get("_compiled_spec_cache")
        if cached is None:
            from repro.lang import compile as lang_compile

            names = tuple(v.payload for v in self.variables)
            spec_vars = {v.payload for v in free_vars(self.spec)}
            extra = tuple(sorted(spec_vars - set(names)))
            cached = lang_compile.compile_spec(
                self.spec,
                self.fun_name,
                names + extra,
                self.interpreted_defs(),
            )
            object.__setattr__(self, "_compiled_spec_cache", cached)
        return cached

    def _compiled_body(self, body: Term):
        """A candidate body compiled over the synth-fun's parameter order."""
        from repro.lang import compile as lang_compile

        return lang_compile.compile_term(
            body,
            tuple(p.payload for p in self.synth_fun.params),
            self.interpreted_defs(),
        )

    def spec_holds(self, body: Term, env: Mapping[str, Value]) -> bool:
        """Concrete check: does the candidate satisfy the spec on ``env``?"""
        result = self._compiled_spec().try_eval(self._compiled_body(body), env)
        if result is not None:
            return result
        # Walker fallback: incomplete environments (and terms the codegen
        # refuses) keep the AST walker's exact lazy semantics, including
        # which EvaluationError surfaces.
        funcs = dict(self.interpreted_defs())
        funcs[self.fun_name] = (self.synth_fun.params, body)
        return bool(evaluate(self.spec, env, funcs))

    def first_violation(
        self, body: Term, examples: Sequence[Mapping[str, Value]]
    ) -> Optional[Mapping[str, Value]]:
        """The first example on which ``body`` violates the spec, or None.

        This is the batch screening path of the CEGIS loops: one compiled
        spec and one compiled candidate evaluate against the whole example
        list in a tight loop, making a known-refuting counterexample far
        cheaper to find than one SMT validity check."""
        if not examples:
            return None
        spec = self._compiled_spec()
        body_fn = self._compiled_body(body)
        walker_funcs: Optional[Dict] = None
        for env in examples:
            result = spec.try_eval(body_fn, env)
            if result is None:
                if walker_funcs is None:
                    walker_funcs = dict(self.interpreted_defs())
                    walker_funcs[self.fun_name] = (
                        self.synth_fun.params,
                        body,
                    )
                result = bool(evaluate(self.spec, env, walker_funcs))
            if not result:
                return env
        return None

    def satisfies(
        self, body: Term, examples: Sequence[Mapping[str, Value]]
    ) -> bool:
        """Batch check: ``body`` satisfies the spec on *every* example."""
        return self.first_violation(body, examples) is None

    def verify(
        self, body: Term, deadline: Optional[float] = None
    ) -> Tuple[bool, Optional[Dict[str, Value]]]:
        """SMT validity check of the instantiated spec (condition 2.4).

        Returns ``(True, None)`` when ``body`` solves the problem, otherwise
        ``(False, counterexample)``.
        """
        from repro.smt import is_valid

        inlined = self.inline_interpreted(body)
        formula = self.instantiate(inlined)
        valid, counterexample = is_valid(formula, deadline)
        if valid:
            return True, None
        assert counterexample is not None
        # Ensure every declared variable appears in the counterexample.
        for v in self.variables:
            counterexample.setdefault(
                v.payload, False if v.sort is BOOL else 0  # type: ignore[arg-type]
            )
        return False, counterexample

    # -- Transformations (used by deduction / divide-and-conquer) ----------------

    def with_spec(self, spec: Term, name_suffix: str = "") -> "SygusProblem":
        return replace(self, spec=spec, name=self.name + name_suffix)

    def with_synth_fun(self, synth_fun: SynthFun, name_suffix: str = "") -> "SygusProblem":
        return replace(self, synth_fun=synth_fun, name=self.name + name_suffix)

    def with_grammar(self, grammar: Grammar, name_suffix: str = "") -> "SygusProblem":
        return replace(
            self,
            synth_fun=replace(self.synth_fun, grammar=grammar),
            name=self.name + name_suffix,
        )


@dataclass(frozen=True)
class Solution:
    """A synthesized solution together with provenance and cost metrics."""

    problem: SygusProblem
    body: Term
    engine: str = "unknown"
    time_seconds: float = 0.0

    @property
    def size(self) -> int:
        return self.body.size

    @property
    def height(self) -> int:
        return self.body.height

    def define_fun(self) -> str:
        fun = self.problem.synth_fun
        return define_fun_sexpr(fun.name, fun.params, fun.return_sort, self.body)

    def __repr__(self) -> str:
        return f"Solution({self.define_fun()})"


@dataclass(frozen=True)
class InvariantProblem:
    """An invariant synthesis problem (Definition 2.13).

    ``pre`` and ``post`` are formulas over ``variables``; ``trans`` is a
    formula over ``variables`` plus their primed copies relating one loop
    iteration (the SyGuS INV track's relational transition).
    """

    variables: Tuple[Term, ...]
    pre: Term
    trans: Term
    post: Term
    name: str = "inv"

    @staticmethod
    def primed(variable: Term) -> Term:
        return var(variable.payload + "!", variable.sort)  # type: ignore[operator]

    @staticmethod
    def from_updates(
        variables: Sequence[Term],
        pre: Term,
        updates: Sequence[Term],
        post: Term,
        name: str = "inv",
    ) -> "InvariantProblem":
        """Functional form: ``x := trans(x)`` as in Definition 2.13."""
        if len(updates) != len(variables):
            raise ValueError("one update term per variable required")
        trans = and_(
            *(
                eq(InvariantProblem.primed(v), u)
                for v, u in zip(variables, updates)
            )
        )
        return InvariantProblem(tuple(variables), pre, trans, post, name)

    def primed_variables(self) -> Tuple[Term, ...]:
        return tuple(self.primed(v) for v in self.variables)

    def to_sygus(self, grammar: Optional[Grammar] = None) -> SygusProblem:
        """Encode as a SyGuS problem over the predicate ``inv``.

        spec = (pre → inv(x)) ∧ (inv(x) ∧ trans(x, x') → inv(x'))
               ∧ (inv(x) → post(x))
        """
        if grammar is None:
            grammar = clia_grammar(self.variables, start_sort=BOOL)
        synth_fun = SynthFun("inv", tuple(self.variables), BOOL, grammar)
        inv_x = synth_fun.apply(self.variables)
        inv_x_primed = synth_fun.apply(self.primed_variables())
        spec = and_(
            implies(self.pre, inv_x),
            implies(and_(inv_x, self.trans), inv_x_primed),
            implies(inv_x, self.post),
        )
        all_vars = tuple(self.variables) + self.primed_variables()
        return SygusProblem(
            synth_fun, spec, all_vars, track="INV", name=self.name, invariant=self
        )
