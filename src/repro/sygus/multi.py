"""Multi-function SyGuS problems.

The paper (Section 2.1, Remark) notes the SyGuS definition "can be easily
extended to synthesize multiple functions"; this module is that extension: a
specification over several uninterpreted functions, with helpers to split it
into independent single-function problems when the constraints allow, and to
project out the joint verification query otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.lang.ast import Kind, Term
from repro.lang.builders import and_, bool_const
from repro.lang.traversal import contains_app, substitute_apps
from repro.sygus.problem import Solution, SygusProblem, SynthFun


@dataclass(frozen=True)
class MultiSygusProblem:
    """A SyGuS instance with several functions to synthesize jointly."""

    synth_funs: Tuple[SynthFun, ...]
    spec: Term
    variables: Tuple[Term, ...]
    track: str = "General"
    name: str = "unnamed"

    def __post_init__(self) -> None:
        names = [fun.name for fun in self.synth_funs]
        if len(names) != len(set(names)):
            raise ValueError("duplicate synth-fun names")

    @property
    def fun_names(self) -> Tuple[str, ...]:
        return tuple(fun.name for fun in self.synth_funs)

    def instantiate(self, bodies: Mapping[str, Term]) -> Term:
        """The spec with every function replaced by its candidate body."""
        result = self.spec
        for fun in self.synth_funs:
            body = bodies.get(fun.name)
            if body is None:
                raise KeyError(f"no body provided for {fun.name}")
            result = substitute_apps(result, fun.name, fun.params, body)
        return result

    def inline_interpreted(self, fun: SynthFun, body: Term) -> Term:
        result = body
        for _ in range(64):
            changed = False
            for name, func in fun.grammar.interpreted.items():
                expanded = substitute_apps(result, name, func.params, func.body)
                if expanded is not result:
                    result = expanded
                    changed = True
            if not changed:
                return result
        raise ValueError("interpreted expansion did not converge")

    def verify(
        self, bodies: Mapping[str, Term], deadline: Optional[float] = None
    ) -> Tuple[bool, Optional[Dict]]:
        """Joint validity check of all candidates against the spec."""
        from repro.smt import is_valid

        inlined = {
            fun.name: self.inline_interpreted(fun, bodies[fun.name])
            for fun in self.synth_funs
        }
        formula = self.instantiate(inlined)
        valid, counterexample = is_valid(formula, deadline)
        if valid:
            return True, None
        assert counterexample is not None
        for variable in self.variables:
            counterexample.setdefault(
                variable.payload, False if variable.sort.name == "Bool" else 0
            )
        return False, counterexample

    # -- Decomposition --------------------------------------------------------

    def _conjuncts(self) -> List[Term]:
        if self.spec.kind is Kind.AND:
            return list(self.spec.args)
        return [self.spec]

    def split_independent(self) -> Optional[List[SygusProblem]]:
        """Partition into single-function problems, when possible.

        Succeeds iff every top-level conjunct mentions at most one of the
        functions; conjuncts mentioning none are attached to the first
        problem (they are global side conditions).
        """
        groups: Dict[str, List[Term]] = {fun.name: [] for fun in self.synth_funs}
        neutral: List[Term] = []
        for conjunct in self._conjuncts():
            owners = [
                fun.name
                for fun in self.synth_funs
                if contains_app(conjunct, fun.name)
            ]
            if len(owners) > 1:
                return None
            if owners:
                groups[owners[0]].append(conjunct)
            else:
                neutral.append(conjunct)
        problems: List[SygusProblem] = []
        for index, fun in enumerate(self.synth_funs):
            parts = list(groups[fun.name])
            if index == 0:
                parts.extend(neutral)
            spec = and_(*parts) if parts else bool_const(True)
            problems.append(
                SygusProblem(
                    fun,
                    spec,
                    self.variables,
                    track=self.track,
                    name=f"{self.name}/{fun.name}",
                )
            )
        return problems


@dataclass(frozen=True)
class MultiSolution:
    """Solutions for every function of a multi-function problem."""

    problem: MultiSygusProblem
    bodies: Dict[str, Term]
    engine: str = "unknown"
    time_seconds: float = 0.0

    def define_funs(self) -> List[str]:
        from repro.lang.printer import define_fun_sexpr

        rendered = []
        for fun in self.problem.synth_funs:
            rendered.append(
                define_fun_sexpr(
                    fun.name, fun.params, fun.return_sort, self.bodies[fun.name]
                )
            )
        return rendered

    @property
    def total_size(self) -> int:
        return sum(body.size for body in self.bodies.values())
