"""Parser for the SyGuS-IF interchange format (the CLIA-relevant subset).

Supports both the v1 and v2 concrete syntaxes for the commands used by the
paper's benchmark tracks: ``set-logic``, ``declare-var``,
``declare-primed-var``, ``define-fun``, ``synth-fun`` (with or without a
grammar), ``synth-inv``, ``constraint``, ``inv-constraint`` and
``check-synth``.  ``let`` terms are rejected, matching the paper's exclusion
of let-macro benchmarks.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.lang.ast import Kind, Term
from repro.lang.builders import (
    add,
    and_,
    apply_fn,
    bool_const,
    eq,
    ge,
    gt,
    implies,
    int_const,
    ite,
    le,
    lt,
    mul,
    neg,
    not_,
    or_,
    sub,
    var,
)
from repro.lang.sexpr import SExpr, parse_all_sexprs
from repro.lang.sorts import BOOL, INT, Sort
from repro.sygus.grammar import (
    Grammar,
    InterpretedFunction,
    any_const,
    clia_grammar,
    nonterminal,
)
from repro.sygus.problem import InvariantProblem, SygusProblem, SynthFun


class SygusParseError(Exception):
    """Raised on unsupported or malformed SyGuS input."""


def _parse_sort(token: SExpr) -> Sort:
    if token == "Int":
        return INT
    if token == "Bool":
        return BOOL
    raise SygusParseError(f"unsupported sort {token!r}")


def _parse_params(sexpr: SExpr) -> Tuple[Term, ...]:
    if not isinstance(sexpr, list):
        raise SygusParseError(f"expected parameter list, got {sexpr!r}")
    params = []
    for item in sexpr:
        if not (isinstance(item, list) and len(item) == 2):
            raise SygusParseError(f"bad parameter {item!r}")
        params.append(var(item[0], _parse_sort(item[1])))
    return tuple(params)


class _Context:
    """Symbol tables accumulated while reading a file."""

    def __init__(self) -> None:
        self.variables: Dict[str, Term] = {}
        self.defined: Dict[str, InterpretedFunction] = {}
        self.synth_funs: List[SynthFun] = []
        self.constraints: List[Term] = []
        self.invariant: Optional[InvariantProblem] = None
        self.has_explicit_grammar = False
        self.is_inv_track = False

    @property
    def synth_fun(self) -> Optional[SynthFun]:
        return self.synth_funs[-1] if self.synth_funs else None

    def parse_term(
        self,
        sexpr: SExpr,
        scope: Dict[str, Term],
        inline_defined: bool = True,
    ) -> Term:
        if isinstance(sexpr, str):
            return self._parse_atom(sexpr, scope)
        if not sexpr:
            raise SygusParseError("empty term")
        head = sexpr[0]
        if not isinstance(head, str):
            raise SygusParseError(f"bad operator {head!r}")
        if head == "let":
            raise SygusParseError("let-terms are not supported (as in the paper)")
        args = [self.parse_term(a, scope, inline_defined) for a in sexpr[1:]]
        if not inline_defined and head in self.defined:
            # Inside grammar productions, defined functions stay as operator
            # applications (they are the grammar's interpreted functions).
            return apply_fn(head, args, self.defined[head].return_sort)
        return self._apply_operator(head, args)

    def _parse_atom(self, token: str, scope: Dict[str, Term]) -> Term:
        if token == "true":
            return bool_const(True)
        if token == "false":
            return bool_const(False)
        if token.lstrip("-").isdigit():
            return int_const(int(token))
        if token in scope:
            return scope[token]
        if token in self.variables:
            return self.variables[token]
        if token in self.defined and not self.defined[token].params:
            return self.defined[token].body
        raise SygusParseError(f"unknown symbol {token!r}")

    def _apply_operator(self, head: str, args: List[Term]) -> Term:
        if head == "+":
            return add(*args)
        if head == "-":
            if len(args) == 1:
                return neg(args[0])
            result = args[0]
            for arg in args[1:]:
                result = sub(result, arg)
            return result
        if head == "*":
            result = args[0]
            for arg in args[1:]:
                result = mul(result, arg)
            return result
        if head == "ite":
            return ite(*args)
        if head == "and":
            return and_(*args)
        if head == "or":
            return or_(*args)
        if head == "not":
            return not_(args[0])
        if head == "=>":
            result = args[-1]
            for arg in reversed(args[:-1]):
                result = implies(arg, result)
            return result
        if head == "=":
            return eq(args[0], args[1])
        if head == ">=":
            return ge(args[0], args[1])
        if head == ">":
            return gt(args[0], args[1])
        if head == "<=":
            return le(args[0], args[1])
        if head == "<":
            return lt(args[0], args[1])
        if head in self.defined:
            return self.defined[head].instantiate(args)
        for fun in self.synth_funs:
            if head == fun.name:
                return fun.apply(args)
        raise SygusParseError(f"unknown operator {head!r}")

    # -- Grammar parsing --------------------------------------------------------

    def parse_grammar(
        self, params: Tuple[Term, ...], groups: Sequence[SExpr]
    ) -> Grammar:
        """Parse v1/v2 grammar blocks attached to a synth-fun."""
        self.has_explicit_grammar = True
        # v2 ships two lists (declarations + rules); v1 ships one.
        if (
            len(groups) == 2
            and isinstance(groups[0], list)
            and groups[0]
            and isinstance(groups[0][0], list)
            and len(groups[0][0]) == 2
        ):
            rule_groups = groups[1]
        else:
            rule_groups = groups[0]
        if not isinstance(rule_groups, list):
            raise SygusParseError("bad grammar block")
        nonterminals: Dict[str, Sort] = {}
        raw_rules: List[Tuple[str, List[SExpr]]] = []
        for group in rule_groups:
            if not (isinstance(group, list) and len(group) == 3):
                raise SygusParseError(f"bad grammar group {group!r}")
            nt_name, sort_token, rhs_list = group
            nonterminals[nt_name] = _parse_sort(sort_token)
            if not isinstance(rhs_list, list):
                raise SygusParseError(f"bad production list {rhs_list!r}")
            raw_rules.append((nt_name, rhs_list))
        start = raw_rules[0][0]
        scope: Dict[str, Term] = {p.payload: p for p in params}
        for nt_name, sort in nonterminals.items():
            scope[nt_name] = nonterminal(nt_name, sort)
        productions: Dict[str, List[Term]] = {}
        for nt_name, rhs_list in raw_rules:
            rules: List[Term] = []
            for rhs in rhs_list:
                if (
                    isinstance(rhs, list)
                    and len(rhs) == 2
                    and rhs[0] == "Constant"
                ):
                    rules.append(any_const())
                    continue
                if isinstance(rhs, list) and len(rhs) == 2 and rhs[0] == "Variable":
                    sort = _parse_sort(rhs[1])
                    rules.extend(p for p in params if p.sort is sort)
                    continue
                rules.append(self.parse_term(rhs, scope, inline_defined=False))
            productions[nt_name] = rules
        return Grammar(
            nonterminals=nonterminals,
            start=start,
            productions=productions,
            interpreted={
                name: func
                for name, func in self.defined.items()
                if _grammar_mentions(productions, name)
            },
            params=params,
        )


def _grammar_mentions(productions: Dict[str, List[Term]], name: str) -> bool:
    from repro.lang.traversal import contains_app

    return any(
        contains_app(rhs, name) for rules in productions.values() for rhs in rules
    )


def parse_sygus_text(text: str, name: str = "unnamed") -> SygusProblem:
    """Parse SyGuS-IF source text into a :class:`SygusProblem`."""
    ctx = _Context()
    for command in parse_all_sexprs(text):
        _process_command(ctx, command)
    if ctx.synth_fun is None:
        raise SygusParseError("no synth-fun/synth-inv command found")
    spec = and_(*ctx.constraints) if ctx.constraints else bool_const(True)
    track = "INV" if ctx.is_inv_track else (
        "General" if ctx.has_explicit_grammar else "CLIA"
    )
    if len(ctx.synth_funs) > 1:
        from repro.sygus.multi import MultiSygusProblem

        return MultiSygusProblem(
            synth_funs=tuple(ctx.synth_funs),
            spec=spec,
            variables=tuple(ctx.variables.values()),
            track=track,
            name=name,
        )
    return SygusProblem(
        synth_fun=ctx.synth_fun,
        spec=spec,
        variables=tuple(ctx.variables.values()),
        track=track,
        name=name,
        invariant=ctx.invariant,
    )


def parse_sygus_file(path: str) -> SygusProblem:
    """Parse a ``.sl`` file."""
    with open(path) as handle:
        text = handle.read()
    import os

    return parse_sygus_text(text, name=os.path.basename(path))


def _process_command(ctx: _Context, command: SExpr) -> None:
    if not isinstance(command, list) or not command:
        raise SygusParseError(f"bad command {command!r}")
    head = command[0]
    if head in ("set-logic", "check-synth", "set-option", "set-info"):
        return
    if head == "declare-var":
        _, name, sort_token = command
        ctx.variables[name] = var(name, _parse_sort(sort_token))
        return
    if head == "declare-primed-var":
        _, name, sort_token = command
        sort = _parse_sort(sort_token)
        ctx.variables[name] = var(name, sort)
        ctx.variables[name + "!"] = var(name + "!", sort)
        return
    if head == "define-fun":
        _, name, params_sexpr, sort_token, body_sexpr = command
        params = _parse_params(params_sexpr)
        scope = {p.payload: p for p in params}
        body = ctx.parse_term(body_sexpr, scope)
        expected = _parse_sort(sort_token)
        if body.sort is not expected:
            raise SygusParseError(f"define-fun {name} body sort mismatch")
        ctx.defined[name] = InterpretedFunction(name, params, body)
        return
    if head == "synth-fun":
        name = command[1]
        params = _parse_params(command[2])
        return_sort = _parse_sort(command[3])
        if len(command) > 4:
            grammar = ctx.parse_grammar(params, command[4:])
        else:
            grammar = clia_grammar(params, start_sort=return_sort)
        ctx.synth_funs.append(SynthFun(name, params, return_sort, grammar))
        return
    if head == "synth-inv":
        name = command[1]
        params = _parse_params(command[2])
        grammar = clia_grammar(params, start_sort=BOOL)
        ctx.synth_funs.append(SynthFun(name, params, BOOL, grammar))
        ctx.is_inv_track = True
        return
    if head == "constraint":
        scope: Dict[str, Term] = {}
        ctx.constraints.append(ctx.parse_term(command[1], scope))
        return
    if head == "inv-constraint":
        _expand_inv_constraint(ctx, command)
        return
    raise SygusParseError(f"unsupported command {head!r}")


def _expand_inv_constraint(ctx: _Context, command: SExpr) -> None:
    """Expand ``(inv-constraint inv pre trans post)`` into the three implications."""
    _, inv_name, pre_name, trans_name, post_name = command
    if ctx.synth_fun is None or ctx.synth_fun.name != inv_name:
        raise SygusParseError(f"inv-constraint for unknown function {inv_name!r}")
    ctx.is_inv_track = True
    pre = ctx.defined[pre_name]
    trans = ctx.defined[trans_name]
    post = ctx.defined[post_name]
    inv = ctx.synth_fun
    n = inv.arity
    if len(trans.params) != 2 * n:
        raise SygusParseError("trans function must take current and primed state")
    current = list(trans.params[:n])
    primed = list(trans.params[n:])
    for v in current + primed:
        ctx.variables.setdefault(v.payload, v)
    spec_parts = [
        implies(pre.instantiate(current), inv.apply(current)),
        implies(
            and_(inv.apply(current), trans.instantiate(current + primed)),
            inv.apply(primed),
        ),
        implies(inv.apply(current), post.instantiate(current)),
    ]
    ctx.constraints.extend(spec_parts)
    ctx.invariant = InvariantProblem(
        variables=tuple(current),
        pre=pre.instantiate(current),
        trans=_rename_primed(trans.instantiate(current + primed), current, primed),
        post=post.instantiate(current),
        name=inv_name,
    )


def _rename_primed(term: Term, current: List[Term], primed: List[Term]) -> Term:
    """Rename the trans-fun's primed params to the canonical ``x!`` names."""
    from repro.lang.traversal import substitute

    mapping = {
        p: InvariantProblem.primed(c) for c, p in zip(current, primed)
    }
    return substitute(term, mapping)
