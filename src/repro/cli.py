"""Command-line interface: ``dryadsynth [options] file.sl``.

Reads a SyGuS-IF problem, runs a solver from the portfolio (the cooperative
synthesizer by default) and prints the solution as a ``define-fun``, the way
the original DryadSynth binary behaves in the SyGuS competition harness.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional

from repro.bench.runner import SOLVER_NAMES, make_solver
from repro.sygus.parser import parse_sygus_file


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dryadsynth",
        description=(
            "Cooperative SyGuS solver for the CLIA theory "
            "(reproduction of Huang et al., PLDI 2020)"
        ),
    )
    parser.add_argument("file", help="SyGuS-IF (.sl) problem file")
    parser.add_argument(
        "--solver",
        choices=SOLVER_NAMES,
        default="dryadsynth",
        help="which solver of the portfolio to run",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget (default: unlimited)",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print solving statistics to stderr",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="print the cooperative loop's event trace to stderr "
        "(dryadsynth solvers only)",
    )
    return parser


def main(argv: Optional[list] = None) -> int:
    args = build_arg_parser().parse_args(argv)
    try:
        problem = parse_sygus_file(args.file)
    except (OSError, Exception) as exc:  # noqa: BLE001 - CLI boundary
        print(f"error: {exc}", file=sys.stderr)
        return 2
    from repro.sygus.multi import MultiSygusProblem

    if isinstance(problem, MultiSygusProblem):
        return _run_multi(problem, args)
    solver = make_solver(args.solver, args.timeout)
    trace = None
    if args.trace and hasattr(solver, "trace"):
        from repro.synth.trace import SynthesisTrace

        trace = SynthesisTrace()
        solver.trace = trace
    start = time.monotonic()
    outcome = solver.synthesize(problem)
    elapsed = time.monotonic() - start
    if trace is not None:
        print(trace.render(), file=sys.stderr)
    if args.stats:
        print(
            f"; solver={args.solver} time={elapsed:.3f}s "
            f"timed_out={outcome.timed_out} stats={outcome.stats}",
            file=sys.stderr,
        )
    if outcome.solution is None:
        print("fail" if not outcome.timed_out else "timeout")
        return 1
    print(outcome.solution.define_fun())
    return 0


def _run_multi(problem, args) -> int:
    """Solve a multi-function problem (always via the multi synthesizer)."""
    from repro.synth.config import SynthConfig
    from repro.synth.multi import MultiFunctionSynthesizer

    synthesizer = MultiFunctionSynthesizer(SynthConfig(timeout=args.timeout))
    solution, stats = synthesizer.synthesize(problem)
    if args.stats:
        print(f"; stats={stats}", file=sys.stderr)
    if solution is None:
        print("fail")
        return 1
    for rendered in solution.define_funs():
        print(rendered)
    return 0


if __name__ == "__main__":
    sys.exit(main())
